"""Cloud-region outage events and their effect on IoT traffic.

Section 6.1 analyses the December 7 2021 outage of AWS ``us-east-1``: downstream
traffic from the affected region dropped by more than 14.5% below the previous
week's minimum, while the number of subscriber lines barely changed because devices
kept retrying against their assigned region.  The EU regions, serving more than
three times the traffic of the US east region, showed only slight dips.

:class:`OutageSchedule` encodes such events; the workload generator consults it to
scale the traffic (and, slightly, the set of active devices) of flows served by
servers in the affected region during the outage window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, time
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.simulation.clock import AWS_OUTAGE_DATE, AWS_OUTAGE_HOURS


@dataclass(frozen=True)
class OutageEvent:
    """A capacity outage of a cloud provider region.

    Attributes
    ----------
    cloud_organization:
        The affected hosting organisation (e.g. ``Amazon Web Services``).
    region_codes:
        The affected cloud regions (e.g. ``us-east-1``).
    start / end:
        The outage window (half-open, local ISP time).
    traffic_retention:
        Fraction of normal downstream/upstream traffic still served during the
        outage (e.g. 0.5 means traffic is halved).
    device_retention:
        Fraction of devices that still appear active (devices keep retrying, so
        this stays close to 1.0).
    """

    name: str
    cloud_organization: str
    region_codes: Tuple[str, ...]
    start: datetime
    end: datetime
    traffic_retention: float = 0.5
    device_retention: float = 0.95

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("outage end must be after start")
        if not 0.0 <= self.traffic_retention <= 1.0:
            raise ValueError("traffic_retention must be within [0, 1]")
        if not 0.0 <= self.device_retention <= 1.0:
            raise ValueError("device_retention must be within [0, 1]")

    def active_at(self, when: datetime) -> bool:
        """Return True when the outage is in effect at the given instant."""
        return self.start <= when < self.end

    def affects(self, cloud_organization: Optional[str], region_code: str) -> bool:
        """Return True when a server hosted by (org, region) is impacted."""
        if cloud_organization is None or cloud_organization != self.cloud_organization:
            return False
        return region_code in self.region_codes


class OutageSchedule:
    """A collection of outage events consulted by the workload generator."""

    def __init__(self, events: Iterable[OutageEvent] = ()) -> None:
        self._events: List[OutageEvent] = list(events)

    def add(self, event: OutageEvent) -> None:
        """Add an event to the schedule."""
        self._events.append(event)

    def events(self) -> List[OutageEvent]:
        """Return every scheduled event."""
        return list(self._events)

    def traffic_factor(
        self, cloud_organization: Optional[str], region_code: str, when: datetime
    ) -> float:
        """Return the traffic multiplier for a server at a given time (1.0 = normal)."""
        factor = 1.0
        for event in self._events:
            if event.active_at(when) and event.affects(cloud_organization, region_code):
                factor = min(factor, event.traffic_retention)
        return factor

    def device_factor(
        self, cloud_organization: Optional[str], region_code: str, when: datetime
    ) -> float:
        """Return the active-device multiplier for a server at a given time."""
        factor = 1.0
        for event in self._events:
            if event.active_at(when) and event.affects(cloud_organization, region_code):
                factor = min(factor, event.device_retention)
        return factor

    def __len__(self) -> int:
        return len(self._events)


def aws_us_east_1_outage(
    traffic_retention: float = 0.45,
    device_retention: float = 0.88,
) -> OutageEvent:
    """Return the December 7 2021 AWS ``us-east-1`` outage event used in Section 6.1."""
    start_hour, end_hour = AWS_OUTAGE_HOURS
    return OutageEvent(
        name="aws-us-east-1-2021-12-07",
        cloud_organization="Amazon Web Services",
        region_codes=("us-east-1",),
        start=datetime.combine(AWS_OUTAGE_DATE, time(hour=start_hour)),
        end=datetime.combine(AWS_OUTAGE_DATE, time(hour=end_hour)),
        traffic_retention=traffic_retention,
        device_retention=device_retention,
    )
