"""Outage substrate: cloud-region outage events injected into the flow workload."""

from repro.outage.injector import OutageEvent, OutageSchedule, aws_us_east_1_outage

__all__ = ["OutageEvent", "OutageSchedule", "aws_us_east_1_outage"]
