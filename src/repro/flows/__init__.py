"""ISP NetFlow substrate.

Models the paper's vantage point: a major European residential ISP monitoring
sampled NetFlow at its border routers.  The substrate consists of per-application
IoT device models, a subscriber-line population, a workload generator producing
hourly flow records for a study period, packet-sampled NetFlow export, provider
anonymization (T*/D*/O* labels), and scanner-host traffic injection.
"""

from repro.flows.devices import ACTIVITY_PROFILES, ActivityProfile, DeviceModel, build_device_model
from repro.flows.subscribers import DeviceInstance, SubscriberLine, SubscriberPopulation
from repro.flows.netflow import FlowRecord, NetFlowCollector
from repro.flows.anonymize import AnonymizationMap
from repro.flows.parallel import available_cpus, effective_gen_workers
from repro.flows.workload import WorkloadGenerator

__all__ = [
    "ACTIVITY_PROFILES",
    "ActivityProfile",
    "DeviceModel",
    "build_device_model",
    "DeviceInstance",
    "SubscriberLine",
    "SubscriberPopulation",
    "FlowRecord",
    "NetFlowCollector",
    "AnonymizationMap",
    "available_cpus",
    "effective_gen_workers",
    "WorkloadGenerator",
]
