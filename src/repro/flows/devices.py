"""IoT device and application models.

Section 5 of the paper observes that IoT applications differ vastly: some behave
like typical user-generated traffic (diurnal pattern, evening peak, downstream
heavy), others are constant machine-to-machine telemetry, upstream-heavy
surveillance, or business-hour bulk transfers.  The device models here encode those
behavioural classes; each provider's :class:`~repro.core.providers.TrafficProfile`
selects one of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.providers import ProviderSpec


@dataclass(frozen=True)
class ActivityProfile:
    """Hourly activity weights of an application class.

    ``hourly_weights`` holds 24 non-negative values; they are normalised so the
    expected number of *active device hours* per day equals ``active_hours_per_day``.
    """

    name: str
    hourly_weights: Tuple[float, ...]
    active_hours_per_day: float = 6.0

    def __post_init__(self) -> None:
        if len(self.hourly_weights) != 24:
            raise ValueError("an activity profile needs exactly 24 hourly weights")
        if min(self.hourly_weights) < 0:
            raise ValueError("hourly weights must be non-negative")
        if sum(self.hourly_weights) == 0:
            raise ValueError("hourly weights must not all be zero")

    def activity_probability(self, hour: int) -> float:
        """Probability that a device of this class is active during an hour."""
        total = sum(self.hourly_weights)
        probability = self.hourly_weights[hour % 24] / total * self.active_hours_per_day
        return min(1.0, probability)

    def weight_share(self, hour: int) -> float:
        """Share of the day's traffic generated in this hour, given the device is active."""
        total = sum(self.hourly_weights)
        return self.hourly_weights[hour % 24] / total


def _flat(value: float = 1.0) -> Tuple[float, ...]:
    return tuple(value for _ in range(24))


def _peaked(peak_hours: Sequence[int], base: float = 0.3, peak: float = 1.0) -> Tuple[float, ...]:
    return tuple(peak if hour in peak_hours else base for hour in range(24))


#: Application classes used by the provider traffic profiles.
ACTIVITY_PROFILES: Dict[str, ActivityProfile] = {
    # Entertainment-adjacent devices: clear diurnal pattern, prime-time evening peak.
    "prime_time": ActivityProfile(
        "prime_time", _peaked(range(18, 23), base=0.25, peak=1.0), active_hours_per_day=7.0
    ),
    # Machine-to-machine telemetry: flat around the clock.
    "constant_telemetry": ActivityProfile("constant_telemetry", _flat(), active_hours_per_day=20.0),
    # Devices used throughout the waking day (8 am -- 8 pm), flat within it.
    "daytime": ActivityProfile(
        "daytime", _peaked(range(8, 20), base=0.15, peak=1.0), active_hours_per_day=10.0
    ),
    # Industrial / office deployments: business hours only.
    "business_hours": ActivityProfile(
        "business_hours", _peaked(range(8, 18), base=0.1, peak=1.0), active_hours_per_day=8.0
    ),
    # Cameras and monitors uploading continuously with a slight daytime bump.
    "surveillance_upload": ActivityProfile(
        "surveillance_upload", _peaked(range(7, 22), base=0.7, peak=1.0), active_hours_per_day=18.0
    ),
    # Bulk message ingestion over AMQP: constant, heavy transfers.
    "amqp_bulk": ActivityProfile("amqp_bulk", _flat(), active_hours_per_day=16.0),
}


@dataclass(frozen=True)
class DeviceModel:
    """Traffic model for the devices of one provider.

    Attributes
    ----------
    provider_key:
        The backend provider the devices talk to.
    profile:
        The diurnal activity profile.
    mean_daily_down_bytes / mean_daily_up_bytes:
        Mean daily traffic per active device.
    port_weights:
        Relative share of traffic per (transport, port) pair; determines the
        provider's port mix (Figure 11).
    global_server_selection:
        When True, devices pick servers from the provider's whole fleet instead of
        preferring the nearest region (drives near-complete backend visibility for
        providers like the paper's T2).
    """

    provider_key: str
    profile: ActivityProfile
    mean_daily_down_bytes: float
    mean_daily_up_bytes: float
    port_weights: Tuple[Tuple[Tuple[str, int], float], ...]
    eu_share: float
    global_server_selection: bool = False

    def ports(self) -> List[Tuple[str, int]]:
        """Return the (transport, port) pairs the devices use."""
        return [pair for pair, _weight in self.port_weights]

    def pick_port(self, roll: float) -> Tuple[str, int]:
        """Pick a port according to the weights, given a uniform [0,1) roll."""
        total = sum(weight for _, weight in self.port_weights)
        threshold = roll * total
        cumulative = 0.0
        for pair, weight in self.port_weights:
            cumulative += weight
            if threshold < cumulative:
                return pair
        return self.port_weights[-1][0]


#: Providers whose devices are spread across the whole server fleet.
_GLOBAL_SELECTION_PROVIDERS = ("microsoft",)


def _port_weights_for(spec: ProviderSpec) -> Tuple[Tuple[Tuple[str, int], float], ...]:
    """Derive per-port traffic weights from a provider's documented protocols.

    Heuristics mirroring Figure 11: MQTT over TLS carries the bulk of telemetry,
    Web ports carry most content-style traffic, AMQP dominates for bulk-ingestion
    providers, and non-standard ports receive a small share.
    """
    weights: Dict[Tuple[str, int], float] = {}
    application = spec.traffic.application
    for offering in spec.protocols:
        pair = (offering.transport, offering.port)
        protocol = offering.protocol.upper()
        if protocol in ("MQTTS",):
            weight = 0.45
        elif protocol == "MQTT" and offering.port == 443:
            weight = 0.30
        elif protocol == "MQTT":
            weight = 0.20
        elif protocol in ("HTTPS", "AGNOSTIC"):
            weight = 0.35
        elif protocol == "HTTP":
            weight = 0.05
        elif protocol in ("AMQPS", "AMQP"):
            weight = 0.70 if application == "amqp_bulk" else 0.10
        elif protocol in ("COAP", "COAPS"):
            weight = 0.08
        elif protocol == "ACTIVEMQ":
            weight = 0.40
        else:
            weight = 0.05
        weights[pair] = max(weights.get(pair, 0.0), weight)
    ordered = tuple(sorted(weights.items(), key=lambda item: (-item[1], item[0])))
    return ordered


def build_device_model(spec: ProviderSpec) -> DeviceModel:
    """Build the device model for one provider from its traffic profile."""
    profile = ACTIVITY_PROFILES[spec.traffic.application]
    return DeviceModel(
        provider_key=spec.key,
        profile=profile,
        mean_daily_down_bytes=spec.traffic.mean_daily_down_kb * 1024.0,
        mean_daily_up_bytes=spec.traffic.mean_daily_up_kb * 1024.0,
        port_weights=_port_weights_for(spec),
        eu_share=spec.traffic.eu_share,
        global_server_selection=spec.key in _GLOBAL_SELECTION_PROVIDERS,
    )
