"""Flow records and packet-sampled NetFlow export.

The ISP monitors traffic with NetFlow at all border routers using a consistent
packet-sampling rate; only header data (no payload) is captured, and subscriber
addresses are anonymized by BGP prefix before the data is stored (Section 3.7,
5.1).  Analyses therefore work on *sampled* byte and packet counts and scale them
back by the sampling rate when estimating exchanged volumes (Section 5.6).

Export comes in two bit-identical flavours:

* :meth:`NetFlowCollector.export` walks a record list and samples each flow's
  packet counts one at a time (the per-record reference), and
* :meth:`NetFlowCollector.export_table` applies the same sampling column-wise
  on a :class:`~repro.flows.flowtable.FlowTable`, batching the binomial draws
  per direction in one pass over each packet-count column.

Each direction draws from its own stream (``netflow-sampling:down`` /
``netflow-sampling:up``), so the batched column passes consume every stream in
exactly the per-record order and the two paths agree under a fixed seed.  In
both paths flows whose sampled packet count is zero in both directions are not
exported — including at ``sampling_ratio == 1``, where a flow with no packets
was never visible to the collector in the first place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from datetime import datetime
from itertools import compress, repeat
from typing import Iterable, List, Sequence, TYPE_CHECKING

from repro.simulation.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flowtable stores FlowRecords)
    from repro.flows.flowtable import FlowTable

#: Approximate bytes per packet used to derive packet counts from byte volumes.
DEFAULT_PACKET_SIZE = 900


@dataclass(frozen=True)
class FlowRecord:
    """One (aggregated, hourly) flow between a subscriber line and a backend server.

    ``bytes_down``/``packets_down`` describe the server-to-subscriber direction
    (downstream); ``bytes_up``/``packets_up`` the reverse.  ``sampled`` marks
    records that have gone through NetFlow packet sampling; their counts must be
    multiplied by the sampling ratio for volume estimates.
    """

    timestamp: datetime
    subscriber_id: int
    subscriber_prefix: str
    ip_version: int
    provider_key: str
    server_ip: str
    server_continent: str
    server_region: str
    transport: str
    port: int
    bytes_down: float
    bytes_up: float
    packets_down: int
    packets_up: int
    sampled: bool = False

    @property
    def total_bytes(self) -> float:
        """Total bytes in both directions."""
        return self.bytes_down + self.bytes_up


def make_flow(
    timestamp: datetime,
    subscriber_id: int,
    subscriber_prefix: str,
    ip_version: int,
    provider_key: str,
    server_ip: str,
    server_continent: str,
    server_region: str,
    transport: str,
    port: int,
    bytes_down: float,
    bytes_up: float,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> FlowRecord:
    """Build a flow record, deriving packet counts from byte volumes."""
    packets_down = max(1, int(math.ceil(bytes_down / packet_size))) if bytes_down > 0 else 0
    packets_up = max(1, int(math.ceil(bytes_up / packet_size))) if bytes_up > 0 else 0
    return FlowRecord(
        timestamp=timestamp,
        subscriber_id=subscriber_id,
        subscriber_prefix=subscriber_prefix,
        ip_version=ip_version,
        provider_key=provider_key,
        server_ip=server_ip,
        server_continent=server_continent,
        server_region=server_region,
        transport=transport,
        port=port,
        bytes_down=float(bytes_down),
        bytes_up=float(bytes_up),
        packets_down=packets_down,
        packets_up=packets_up,
    )


class NetFlowCollector:
    """Packet-sampled NetFlow export.

    Parameters
    ----------
    sampling_ratio:
        One out of ``sampling_ratio`` packets is sampled (1 means no sampling).
        The same ratio applies at every border router, as at the ISP.
    """

    def __init__(self, sampling_ratio: int = 1) -> None:
        if sampling_ratio < 1:
            raise ValueError("sampling_ratio must be >= 1")
        self.sampling_ratio = sampling_ratio

    def export(self, flows: Iterable[FlowRecord], rng: RngRegistry) -> List[FlowRecord]:
        """Apply packet sampling to a collection of flows.

        Each packet of a flow is sampled independently with probability
        ``1/sampling_ratio``; flows whose sampled packet count is zero in both
        directions are not exported (they were invisible to the collector).
        The same visibility rule applies without sampling: a flow that carried
        no packets at all never reached a border router.
        """
        if self.sampling_ratio == 1:
            return [
                replace(flow, sampled=True)
                for flow in flows
                if flow.packets_down or flow.packets_up
            ]
        down_stream = rng.stream("netflow-sampling:down")
        up_stream = rng.stream("netflow-sampling:up")
        probability = 1.0 / self.sampling_ratio
        exported: List[FlowRecord] = []
        for flow in flows:
            sampled_down = _binomial(down_stream, flow.packets_down, probability)
            sampled_up = _binomial(up_stream, flow.packets_up, probability)
            if sampled_down == 0 and sampled_up == 0:
                continue
            scale_down = sampled_down / flow.packets_down if flow.packets_down else 0.0
            scale_up = sampled_up / flow.packets_up if flow.packets_up else 0.0
            exported.append(
                replace(
                    flow,
                    bytes_down=flow.bytes_down * scale_down,
                    bytes_up=flow.bytes_up * scale_up,
                    packets_down=sampled_down,
                    packets_up=sampled_up,
                    sampled=True,
                )
            )
        return exported

    def export_table(self, table: "FlowTable", rng: RngRegistry) -> "FlowTable":
        """Columnar twin of :meth:`export`: packet sampling applied column-wise.

        The binomial draws are batched per sampling stream (one pass over the
        downstream packet column, one over the upstream column); under a fixed
        seed the exported rows are bit-identical to the record path.
        """
        packets_down = table.numeric("packets_down")
        packets_up = table.numeric("packets_up")
        if self.sampling_ratio == 1:
            mask = bytearray(
                1 if down or up else 0 for down, up in zip(packets_down, packets_up)
            )
            exported = table.select_mask(mask)
            exported.assign_numeric("sampled", repeat(1, len(exported)))
            return exported
        probability = 1.0 / self.sampling_ratio
        sampled_down = _binomial_many(
            rng.stream("netflow-sampling:down"), packets_down, probability
        )
        sampled_up = _binomial_many(
            rng.stream("netflow-sampling:up"), packets_up, probability
        )
        mask = bytearray(1 if down or up else 0 for down, up in zip(sampled_down, sampled_up))
        exported = table.select_mask(mask)
        exported.assign_numeric(
            "bytes_down",
            [
                original * (sampled / count) if count else 0.0
                for original, sampled, count in zip(
                    compress(table.numeric("bytes_down"), mask),
                    compress(sampled_down, mask),
                    compress(packets_down, mask),
                )
            ],
        )
        exported.assign_numeric(
            "bytes_up",
            [
                original * (sampled / count) if count else 0.0
                for original, sampled, count in zip(
                    compress(table.numeric("bytes_up"), mask),
                    compress(sampled_up, mask),
                    compress(packets_up, mask),
                )
            ],
        )
        exported.assign_numeric("packets_down", compress(sampled_down, mask))
        exported.assign_numeric("packets_up", compress(sampled_up, mask))
        exported.assign_numeric("sampled", repeat(1, len(exported)))
        return exported

    def estimate_bytes(self, sampled_bytes: float) -> float:
        """Scale sampled byte counts back to an estimate of the true volume."""
        return sampled_bytes * self.sampling_ratio


def _binomial(stream, n: int, p: float) -> int:
    """Draw a binomial sample; exact for small n, normal approximation for large n."""
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    if n <= 64:
        return sum(1 for _ in range(n) if stream.random() < p)
    mean = n * p
    std = math.sqrt(n * p * (1.0 - p))
    value = int(round(stream.gauss(mean, std)))
    return max(0, min(n, value))


def _binomial_many(stream, counts: Sequence[int], p: float) -> List[int]:
    """Batched :func:`_binomial`: one draw per entry of a packet-count column.

    Consumes ``stream`` exactly as the equivalent sequence of per-flow
    :func:`_binomial` calls would, so record and columnar export stay
    bit-identical; the batching saves the per-call dispatch and re-binding on
    the export hot path.
    """
    if p <= 0.0:
        return [0] * len(counts)
    if p >= 1.0:
        return list(counts)
    rand = stream.random
    gauss = stream.gauss
    sqrt = math.sqrt
    results: List[int] = []
    append = results.append
    for n in counts:
        if n <= 0:
            append(0)
        elif n <= 64:
            hits = 0
            for _ in range(n):
                if rand() < p:
                    hits += 1
            append(hits)
        else:
            mean = n * p
            std = sqrt(n * p * (1.0 - p))
            value = int(round(gauss(mean, std)))
            append(max(0, min(n, value)))
    return results
