"""Flow records and packet-sampled NetFlow export.

The ISP monitors traffic with NetFlow at all border routers using a consistent
packet-sampling rate; only header data (no payload) is captured, and subscriber
addresses are anonymized by BGP prefix before the data is stored (Section 3.7,
5.1).  Analyses therefore work on *sampled* byte and packet counts and scale them
back by the sampling rate when estimating exchanged volumes (Section 5.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from datetime import datetime
from typing import Iterable, Iterator, List, Optional

from repro.simulation.rng import RngRegistry

#: Approximate bytes per packet used to derive packet counts from byte volumes.
DEFAULT_PACKET_SIZE = 900


@dataclass(frozen=True)
class FlowRecord:
    """One (aggregated, hourly) flow between a subscriber line and a backend server.

    ``bytes_down``/``packets_down`` describe the server-to-subscriber direction
    (downstream); ``bytes_up``/``packets_up`` the reverse.  ``sampled`` marks
    records that have gone through NetFlow packet sampling; their counts must be
    multiplied by the sampling ratio for volume estimates.
    """

    timestamp: datetime
    subscriber_id: int
    subscriber_prefix: str
    ip_version: int
    provider_key: str
    server_ip: str
    server_continent: str
    server_region: str
    transport: str
    port: int
    bytes_down: float
    bytes_up: float
    packets_down: int
    packets_up: int
    sampled: bool = False

    @property
    def total_bytes(self) -> float:
        """Total bytes in both directions."""
        return self.bytes_down + self.bytes_up


def make_flow(
    timestamp: datetime,
    subscriber_id: int,
    subscriber_prefix: str,
    ip_version: int,
    provider_key: str,
    server_ip: str,
    server_continent: str,
    server_region: str,
    transport: str,
    port: int,
    bytes_down: float,
    bytes_up: float,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> FlowRecord:
    """Build a flow record, deriving packet counts from byte volumes."""
    packets_down = max(1, int(math.ceil(bytes_down / packet_size))) if bytes_down > 0 else 0
    packets_up = max(1, int(math.ceil(bytes_up / packet_size))) if bytes_up > 0 else 0
    return FlowRecord(
        timestamp=timestamp,
        subscriber_id=subscriber_id,
        subscriber_prefix=subscriber_prefix,
        ip_version=ip_version,
        provider_key=provider_key,
        server_ip=server_ip,
        server_continent=server_continent,
        server_region=server_region,
        transport=transport,
        port=port,
        bytes_down=float(bytes_down),
        bytes_up=float(bytes_up),
        packets_down=packets_down,
        packets_up=packets_up,
    )


class NetFlowCollector:
    """Packet-sampled NetFlow export.

    Parameters
    ----------
    sampling_ratio:
        One out of ``sampling_ratio`` packets is sampled (1 means no sampling).
        The same ratio applies at every border router, as at the ISP.
    """

    def __init__(self, sampling_ratio: int = 1) -> None:
        if sampling_ratio < 1:
            raise ValueError("sampling_ratio must be >= 1")
        self.sampling_ratio = sampling_ratio

    def export(self, flows: Iterable[FlowRecord], rng: RngRegistry) -> List[FlowRecord]:
        """Apply packet sampling to a collection of flows.

        Each packet of a flow is sampled independently with probability
        ``1/sampling_ratio``; flows whose sampled packet count is zero in both
        directions are not exported (they were invisible to the collector).
        """
        if self.sampling_ratio == 1:
            return [replace(flow, sampled=True) for flow in flows]
        stream = rng.stream("netflow-sampling")
        probability = 1.0 / self.sampling_ratio
        exported: List[FlowRecord] = []
        for flow in flows:
            sampled_down = _binomial(stream, flow.packets_down, probability)
            sampled_up = _binomial(stream, flow.packets_up, probability)
            if sampled_down == 0 and sampled_up == 0:
                continue
            scale_down = sampled_down / flow.packets_down if flow.packets_down else 0.0
            scale_up = sampled_up / flow.packets_up if flow.packets_up else 0.0
            exported.append(
                replace(
                    flow,
                    bytes_down=flow.bytes_down * scale_down,
                    bytes_up=flow.bytes_up * scale_up,
                    packets_down=sampled_down,
                    packets_up=sampled_up,
                    sampled=True,
                )
            )
        return exported

    def estimate_bytes(self, sampled_bytes: float) -> float:
        """Scale sampled byte counts back to an estimate of the true volume."""
        return sampled_bytes * self.sampling_ratio


def _binomial(stream, n: int, p: float) -> int:
    """Draw a binomial sample; exact for small n, normal approximation for large n."""
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    if n <= 64:
        return sum(1 for _ in range(n) if stream.random() < p)
    mean = n * p
    std = math.sqrt(n * p * (1.0 - p))
    value = int(round(stream.gauss(mean, std)))
    return max(0, min(n, value))
