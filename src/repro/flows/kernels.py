"""Pluggable grouped-aggregation kernels for :class:`~repro.flows.flowtable.FlowTable`.

The Section 5 analyses (traffic shares, distinct-destination footprints,
outage deltas) all reduce to grouped aggregations over period flow tables.
This module turns those aggregations into a kernel layer with three
interchangeable implementations:

* **Reference kernels** (``reference_*``) -- the original dict-per-metric
  loops, kept verbatim as the semantic ground truth the other backends are
  differentially fuzzed against (``tests/test_kernel_parity.py``).
* **Fused pure-python kernels** -- a :class:`GroupIndex` maps every row to a
  dense group id once per ``(table, key columns)`` pair; aggregations then
  run a single traversal accumulating into flat lists indexed by group id,
  skipping both the per-call packed-key build and the per-row dict probes.
* **Numpy kernels** (:mod:`repro.flows.kernels_np`, import-guarded) -- the
  same contracts on ``bincount``/``unique``; selected automatically when
  numpy is importable.  Columns loaded zero-copy from an mmap'd store
  artifact (:class:`~repro.flows.flowtable.LazyColumn`) feed these kernels
  straight off the map via ``np.frombuffer``; the python kernels decode such
  a column into an ``array`` on first touch instead.

Backend selection: ``IOT_REPRO_KERNELS=python|numpy`` forces a backend,
:func:`set_backend` overrides it in-process (tests, benchmarks), and with
neither set the numpy backend is auto-detected.  All backends are
**bit-identical**: float group sums accumulate in row order on every path
(numpy ``bincount`` is a sequential loop), integer sums that could overflow
an int64 accumulator fall back to the python kernels (exact arbitrary
precision), and result dicts preserve the first-appearance key order of the
reference implementation.  The one documented exception: a group whose
*first* contribution is ``-0.0`` keeps the sign bit on the python paths but
not under numpy (``bincount`` starts from ``+0.0``).

The :class:`GroupIndex` cache lives on the table (``FlowTable.group_index``)
and is invalidated by a mutation counter bumped by every mutating primitive
(``extend``/``append_columns``/``extend_table``/``truncate``/
``assign_numeric``); pool growth alone (``encode_value``, sibling tables
sharing pools) does not change any row and deliberately does not invalidate.
"""

from __future__ import annotations

import os
from array import array
from itertools import compress
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.flows.flowtable import FlowTable, GroupKey

#: Environment variable forcing a kernel backend (``python`` or ``numpy``).
KERNELS_ENV_VAR = "IOT_REPRO_KERNELS"

BACKEND_PYTHON = "python"
BACKEND_NUMPY = "numpy"

#: Conservative magnitude bound for int64 accumulation: when
#: ``max(|value|) * rows`` could reach 2**62 the numpy integer kernels defer
#: to the python paths, whose arbitrary-precision ints cannot overflow.
INT64_SAFE_LIMIT = 2**62

_UNSET = object()
_np_kernels = _UNSET
_backend_override: Optional[str] = None


def _numpy_kernels():
    """The numpy kernel module, or ``None`` when numpy is not importable."""
    global _np_kernels
    if _np_kernels is _UNSET:
        try:
            from repro.flows import kernels_np
        except ImportError:
            _np_kernels = None
        else:
            _np_kernels = kernels_np
    return _np_kernels


def numpy_available() -> bool:
    """True when the numpy backend can be used in this interpreter."""
    return _numpy_kernels() is not None


def set_backend(backend: Optional[str]) -> None:
    """Force a kernel backend in-process (``None`` restores auto-detection).

    Takes precedence over ``IOT_REPRO_KERNELS``.  Requesting ``numpy`` in an
    interpreter without numpy raises immediately instead of silently running
    the python kernels, so benchmarks and tests cannot mis-report a backend.
    """
    if backend not in (None, BACKEND_PYTHON, BACKEND_NUMPY):
        raise ValueError(f"unknown kernel backend {backend!r}")
    if backend == BACKEND_NUMPY and not numpy_available():
        raise RuntimeError("kernel backend 'numpy' requested but numpy is not importable")
    global _backend_override
    _backend_override = backend


def active_backend() -> str:
    """The kernel backend aggregations will dispatch to right now."""
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get(KERNELS_ENV_VAR, "").strip().lower()
    if env:
        if env not in (BACKEND_PYTHON, BACKEND_NUMPY):
            raise ValueError(f"{KERNELS_ENV_VAR}={env!r}: expected 'python' or 'numpy'")
        if env == BACKEND_NUMPY and not numpy_available():
            raise RuntimeError(f"{KERNELS_ENV_VAR}=numpy but numpy is not importable")
        return env
    return BACKEND_NUMPY if numpy_available() else BACKEND_PYTHON


def _use_numpy() -> bool:
    return active_backend() == BACKEND_NUMPY


# ---------------------------------------------------------------------------------
# Group index
# ---------------------------------------------------------------------------------


class GroupIndex:
    """The grouping permutation of one ``(table, key columns)`` pair.

    ``gids[row]`` is a dense group id in first-appearance order;
    ``group_keys[gid]`` is the decoded group key (bare value for one key
    column, tuple for several) -- exactly the dict keys, in exactly the
    insertion order, the reference kernels produce.  The index is
    mask-independent (masks subset rows at aggregation time) and is computed
    once per table revision: ``version`` snapshots the owning table's
    mutation counter so any row mutation makes the cached index unusable.
    """

    __slots__ = ("by", "version", "gids", "group_keys", "_gids_np")

    def __init__(self, by: Tuple[str, ...], version: int, gids: array, group_keys: List["GroupKey"]) -> None:
        self.by = by
        self.version = version
        self.gids = gids
        self.group_keys = group_keys
        self._gids_np = None

    def __len__(self) -> int:
        return len(self.group_keys)

    def gids_numpy(self):
        """The row->group-id mapping as an int64 numpy view (lazily cached)."""
        if self._gids_np is None:
            import numpy

            self._gids_np = numpy.frombuffer(self.gids, dtype=numpy.int64)
        return self._gids_np


def build_group_index(table: "FlowTable", by: Tuple[str, ...]) -> GroupIndex:
    """Build the dense grouping of a table over the given key columns.

    The numpy builder is used when the active backend is numpy and every key
    column packs into int64 (all-categorical combinations, or a single
    integer column); both builders produce identical indexes, which the
    parity harness asserts.
    """
    version = table._version
    if _use_numpy():
        built = _numpy_kernels().build_group_index(table, by)
        if built is not NotImplemented:
            gids, packed_keys = built
            decode = table._group_decoder(by)
            return GroupIndex(by, version, gids, [decode(key) for key in packed_keys])
    keys, decode = table._group_codes(by)
    gid_of: Dict[object, int] = {}
    gids = array("q")
    append = gids.append
    for key in keys:
        gid = gid_of.get(key)
        if gid is None:
            gid = gid_of[key] = len(gid_of)
        append(gid)
    return GroupIndex(by, version, gids, [decode(key) for key in gid_of])


# ---------------------------------------------------------------------------------
# Dispatchers (called by FlowTable)
# ---------------------------------------------------------------------------------


def group_sums(
    table: "FlowTable",
    by: Sequence[str],
    values: Sequence[str],
    mask: Optional[Sequence[int]] = None,
) -> Dict["GroupKey", List[float]]:
    """Sum numeric columns per group key on the active backend."""
    index = table.group_index(by)
    columns = [table.numeric(name) for name in values]
    if _use_numpy():
        result = _numpy_kernels().group_sums(index, columns, mask)
        if result is not NotImplemented:
            return result
    return fused_group_sums(index, columns, mask)


def group_distinct_count(
    table: "FlowTable",
    by: Sequence[str],
    of: str,
    mask: Optional[Sequence[int]] = None,
) -> Dict["GroupKey", int]:
    """Count distinct values of one column per group key on the active backend."""
    index = table.group_index(by)
    members, _pool = table._key_column(of)
    if _use_numpy():
        result = _numpy_kernels().group_distinct_count(index, members, mask)
        if result is not NotImplemented:
            return result
    return fused_group_distinct_count(index, members, mask)


def group_distinct(
    table: "FlowTable",
    by: Sequence[str],
    of: str,
    mask: Optional[Sequence[int]] = None,
) -> Dict["GroupKey", Set[object]]:
    """Distinct values of one column per group key on the active backend."""
    index = table.group_index(by)
    members, pool = table._key_column(of)
    if _use_numpy():
        result = _numpy_kernels().group_distinct(index, members, pool, mask)
        if result is not NotImplemented:
            return result
    return fused_group_distinct(index, members, pool, mask)


def total(table: "FlowTable", value: str) -> float:
    """Sum one numeric column over all rows on the active backend."""
    column = table.numeric(value)
    if _use_numpy():
        result = _numpy_kernels().total(column)
        if result is not NotImplemented:
            return result
    return sum(column)


def distinct(table: "FlowTable", name: str) -> Set[object]:
    """Distinct values of one column across the whole table."""
    if table.is_categorical(name):
        pool = table.pool(name)
        codes = table.codes(name)
        if _use_numpy():
            result = _numpy_kernels().distinct_codes(codes)
            if result is not NotImplemented:
                return {pool[code] for code in result}
        return {pool[code] for code in set(codes)}
    column = table.numeric(name)
    if _use_numpy():
        result = _numpy_kernels().distinct_values(column)
        if result is not NotImplemented:
            return result
    return set(column)


# ---------------------------------------------------------------------------------
# Fused pure-python kernels
# ---------------------------------------------------------------------------------


def fused_group_sums(
    index: GroupIndex, columns: Sequence[Sequence], mask: Optional[Sequence[int]]
) -> Dict["GroupKey", List[float]]:
    """One traversal over dense group ids, accumulating into flat lists.

    Initializing accumulators with integer ``0`` reproduces the reference
    semantics bit for bit: ``0 + v`` adopts the first value unchanged
    (including a ``-0.0`` sign bit) and keeps integer sums exact at arbitrary
    precision.
    """
    group_keys = index.group_keys
    count = len(group_keys)
    if not count:
        return {}
    gids: Sequence[int] = index.gids
    if mask is None:
        if len(columns) == 1:
            sums = [0] * count
            for gid, value in zip(gids, columns[0]):
                sums[gid] += value
            return {key: [value] for key, value in zip(group_keys, sums)}
        if len(columns) == 2:
            first, second = columns
            sums_a = [0] * count
            sums_b = [0] * count
            for gid, value_a, value_b in zip(gids, first, second):
                sums_a[gid] += value_a
                sums_b[gid] += value_b
            return {
                key: [value_a, value_b]
                for key, value_a, value_b in zip(group_keys, sums_a, sums_b)
            }
        buckets = [[0] * len(columns) for _ in range(count)]
        for gid, row in zip(gids, zip(*columns)):
            bucket = buckets[gid]
            for position, value in enumerate(row):
                bucket[position] += value
        return dict(zip(group_keys, buckets))
    # Masked: only groups with surviving rows appear, in masked
    # first-appearance order (the reference dict-insertion order).
    slots: List[Optional[List[float]]] = [None] * count
    order: List[int] = []
    push = order.append
    rows = zip(compress(gids, mask), *(compress(column, mask) for column in columns))
    for gid, *row in rows:
        bucket = slots[gid]
        if bucket is None:
            slots[gid] = list(row)
            push(gid)
        else:
            for position, value in enumerate(row):
                bucket[position] += value
    return {group_keys[gid]: slots[gid] for gid in order}


def fused_group_distinct_count(
    index: GroupIndex, members: Sequence, mask: Optional[Sequence[int]]
) -> Dict["GroupKey", int]:
    """Distinct-count via per-group set buckets indexed by dense group id.

    The dense-id list lookup replaces the reference path's packed-key dict
    probe on every row, which is where the original loop spent its time.
    """
    group_keys = index.group_keys
    count = len(group_keys)
    if not count:
        return {}
    gids: Sequence[int] = index.gids
    if mask is not None:
        gids = compress(gids, mask)
        members = compress(members, mask)
    slots, order = _member_sets_from(gids, members, count)
    return {group_keys[gid]: len(slots[gid]) for gid in order}


def fused_group_distinct(
    index: GroupIndex,
    members: Sequence,
    pool: Optional[List[object]],
    mask: Optional[Sequence[int]],
) -> Dict["GroupKey", Set[object]]:
    """Per-group sets of decoded member values."""
    if not index.group_keys:
        return {}
    gids: Sequence[int] = index.gids
    if mask is not None:
        gids = compress(gids, mask)
        members = compress(members, mask)
    slots, order = _member_sets_from(gids, members, len(index.group_keys))
    group_keys = index.group_keys
    if pool is None:
        return {group_keys[gid]: slots[gid] for gid in order}
    return {
        group_keys[gid]: {pool[member] for member in slots[gid]} for gid in order
    }


def _member_sets_from(
    gids, members, count: int
) -> Tuple[List[Optional[Set]], List[int]]:
    slots: List[Optional[Set]] = [None] * count
    order: List[int] = []
    push = order.append
    for gid, member in zip(gids, members):
        bucket = slots[gid]
        if bucket is None:
            slots[gid] = {member}
            push(gid)
        else:
            bucket.add(member)
    return slots, order


# ---------------------------------------------------------------------------------
# Reference kernels (the original implementations, verbatim semantics)
# ---------------------------------------------------------------------------------


def reference_group_sums(
    table: "FlowTable",
    by: Sequence[str],
    values: Sequence[str],
    mask: Optional[Sequence[int]] = None,
) -> Dict["GroupKey", List[float]]:
    """The original dict-accumulator group-sum loop (parity ground truth)."""
    keys, decode = table._group_codes(by)
    value_arrays: List = [table.numeric(name) for name in values]
    if mask is not None:
        keys = compress(keys, mask)
        value_arrays = [compress(column, mask) for column in value_arrays]
    sums: Dict[object, List[float]] = {}
    if len(value_arrays) == 1:
        column = value_arrays[0]
        for key, value in zip(keys, column):
            bucket = sums.get(key)
            if bucket is None:
                sums[key] = [value]
            else:
                bucket[0] += value
    elif len(value_arrays) == 2:
        first, second = value_arrays
        for key, value_a, value_b in zip(keys, first, second):
            bucket = sums.get(key)
            if bucket is None:
                sums[key] = [value_a, value_b]
            else:
                bucket[0] += value_a
                bucket[1] += value_b
    else:
        for key, row in zip(keys, zip(*value_arrays)):
            bucket = sums.get(key)
            if bucket is None:
                sums[key] = list(row)
            else:
                for position, value in enumerate(row):
                    bucket[position] += value
    return {decode(key): bucket for key, bucket in sums.items()}


def _reference_code_sets(
    table: "FlowTable", by: Sequence[str], of: str, mask: Optional[Sequence[int]]
):
    keys, decode = table._group_codes(by)
    of_keys, of_pool = table._key_column(of)
    if mask is not None:
        keys = compress(keys, mask)
        of_keys = compress(of_keys, mask)
    groups: Dict[object, Set] = {}
    for key, member in zip(keys, of_keys):
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = {member}
        else:
            bucket.add(member)
    return groups, decode, of_pool


def reference_group_distinct(
    table: "FlowTable",
    by: Sequence[str],
    of: str,
    mask: Optional[Sequence[int]] = None,
) -> Dict["GroupKey", Set[object]]:
    """The original dict-of-sets distinct grouping (parity ground truth)."""
    groups, decode, of_pool = _reference_code_sets(table, by, of, mask)
    if of_pool is None:
        return {decode(key): bucket for key, bucket in groups.items()}
    return {
        decode(key): {of_pool[member] for member in bucket}
        for key, bucket in groups.items()
    }


def reference_group_distinct_count(
    table: "FlowTable",
    by: Sequence[str],
    of: str,
    mask: Optional[Sequence[int]] = None,
) -> Dict["GroupKey", int]:
    """The original distinct-count grouping (parity ground truth)."""
    groups, decode, _ = _reference_code_sets(table, by, of, mask)
    return {decode(key): len(bucket) for key, bucket in groups.items()}


def reference_total(table: "FlowTable", value: str) -> float:
    """Sequential python sum (parity ground truth)."""
    return sum(table.numeric(value))


def reference_distinct(table: "FlowTable", name: str) -> Set[object]:
    """The original whole-table distinct (parity ground truth)."""
    if table.is_categorical(name):
        pool = table.pool(name)
        return {pool[code] for code in set(table.codes(name))}
    return set(table.numeric(name))
