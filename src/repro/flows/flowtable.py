"""Columnar flow store for the Section 5 traffic analyses.

The traffic analyses scan millions of :class:`~repro.flows.netflow.FlowRecord`
objects; iterating lists of frozen dataclasses pays an attribute lookup per
field per row, and every grouped aggregation re-hashes tuple-of-string keys.
:class:`FlowTable` stores the same data as parallel columns:

* **Dictionary-encoded categoricals** (timestamp, provider, server address,
  continent, region, transport, subscriber prefix): each column is an
  ``array('i')`` of small integer codes plus a value pool, so group keys are
  ints and repeated values are stored once.
* **Primitive arrays** (:mod:`array`) for the numeric fields (byte counts,
  packet counts, port, subscriber id, ip version, sampled flag) -- no numpy
  dependency.

On top of the columns the table offers bulk filters (:meth:`where_day`,
:meth:`exclude_subscribers`, :meth:`where_provider`, :meth:`where_ip_version`,
:meth:`restrict_server_ips`) and grouped aggregations (:meth:`group_sums`,
:meth:`group_distinct`, :meth:`group_distinct_count`) keyed by any column
combination -- provider, hour, subscriber, port, continent pair.  The
Section 5 analyses in :mod:`repro.core.traffic` run on these primitives
instead of repeated linear passes over record lists.

The aggregations themselves are executed by the pluggable kernel layer in
:mod:`repro.flows.kernels` (fused pure-python loops, optional numpy backend
behind ``IOT_REPRO_KERNELS``).  The grouping permutation is computed once per
``(table, key columns)`` pair -- :meth:`group_index` -- and cached until any
mutating primitive (:meth:`extend`, :meth:`append_columns`,
:meth:`extend_table`, :meth:`truncate`, :meth:`assign_numeric`) bumps the
table's mutation counter, so analyses sharing a grouping share the index.

``FlowTable`` iterates and indexes like a sequence of ``FlowRecord`` (records
are materialized on demand), so it is a drop-in argument anywhere a flow
sequence is accepted; :meth:`from_records`/:meth:`to_records` convert
losslessly in both directions.  Filtered tables share the value pools of their
parent, which keeps slicing cheap.

Columns are usually plain :mod:`array` objects, but a table loaded through the
zero-copy store read path (:func:`repro.store.codec.load_table_mmap`) holds
:class:`LazyColumn` views over the mapped artifact instead: the raw bytes stay
on the map and are decoded into an ``array`` only on first sequence access,
while the numpy kernel backend reads them directly via ``np.frombuffer`` with
no copy at all.  Every mutating primitive runs the copy-on-write barrier
(:meth:`FlowTable._materialize_for_write`) before touching a column, so by the
time ``_version`` is bumped the table is array-backed again and the
GroupIndex/mutation contract is unchanged.
"""

from __future__ import annotations

from array import array
from datetime import date
from itertools import compress
from operator import attrgetter
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.flows.netflow import FlowRecord

#: Dictionary-encoded columns, in FlowRecord field order where applicable.
CATEGORICAL_COLUMNS = (
    "timestamp",
    "subscriber_prefix",
    "provider_key",
    "server_ip",
    "server_continent",
    "server_region",
    "transport",
)

#: Numeric columns and their :mod:`array` typecodes.
NUMERIC_COLUMNS = (
    ("subscriber_id", "q"),
    ("ip_version", "b"),
    ("port", "i"),
    ("bytes_down", "d"),
    ("bytes_up", "d"),
    ("packets_down", "q"),
    ("packets_up", "q"),
    ("sampled", "b"),
)

_NUMERIC_TYPECODES = dict(NUMERIC_COLUMNS)

#: One C-level fetch of every FlowRecord field, in conversion order.
_RECORD_FIELDS = attrgetter(
    "timestamp",
    "subscriber_prefix",
    "provider_key",
    "server_ip",
    "server_continent",
    "server_region",
    "transport",
    "subscriber_id",
    "ip_version",
    "port",
    "bytes_down",
    "bytes_up",
    "packets_down",
    "packets_up",
    "sampled",
)

GroupKey = Union[object, Tuple[object, ...]]

#: numpy dtype strings of the fixed-width typecodes the codec emits (the
#: platform-dependent ones -- 'l', 'L', ... -- never appear in artifacts).
_NP_DTYPE_OF_TYPECODE = {"b": "int8", "i": "int32", "q": "int64", "d": "float64"}


class LazyColumn:
    """A read-only column decoded on first touch from a mapped byte buffer.

    Holds the raw little-endian bytes of one serialized column -- typically a
    ``memoryview`` slice over an mmap'd store artifact -- and presents the
    sequence protocol of the ``array`` it stands in for.  The first sequence
    access (:meth:`materialize`, iteration, indexing) decodes the buffer into
    a real ``array`` once and caches it; :meth:`as_numpy` instead wraps the
    buffer in a zero-copy ``np.frombuffer`` view, so the numpy kernel backend
    never pays the copy at all.  :meth:`tobytes` re-emits the buffer verbatim,
    which is what keeps ``dump_table`` round-trips byte-identical.

    An optional ``validate`` callable (the codec's deferred code-range check)
    runs once against the first decoded representation and may raise
    :class:`~repro.store.codec.StoreFormatError`; corruption a structural
    parse cannot see is therefore surfaced on first touch, before any value
    escapes.  Instances are immutable: :class:`FlowTable` swaps them for
    mutable arrays via its copy-on-write barrier before any mutation.
    """

    __slots__ = ("typecode", "itemsize", "buffer", "_length", "_array", "_np", "_validate")

    def __init__(
        self,
        typecode: str,
        buffer: "memoryview",
        validate: Optional[Callable[[Sequence], None]] = None,
    ) -> None:
        self.typecode = typecode
        self.itemsize = array(typecode).itemsize
        self.buffer = buffer
        self._length = len(buffer) // self.itemsize
        self._array: Optional[array] = None
        self._np = None
        self._validate = validate

    def __len__(self) -> int:
        return self._length

    def materialize(self) -> array:
        """The decoded ``array`` (built and validated on first call)."""
        if self._array is None:
            column = array(self.typecode)
            column.frombytes(self.buffer)
            if self._validate is not None:
                self._validate(column)
                self._validate = None
            self._array = column
        return self._array

    def as_numpy(self):
        """Zero-copy numpy view of the buffer (``None`` for odd typecodes)."""
        if self._np is None:
            dtype = _NP_DTYPE_OF_TYPECODE.get(self.typecode)
            if dtype is None:
                return None
            import numpy

            view = numpy.frombuffer(self.buffer, dtype=dtype)
            if self._validate is not None:
                self._validate(view)
                self._validate = None
            self._np = view
        return self._np

    def tobytes(self) -> bytes:
        """The raw column bytes, exactly as serialized."""
        return bytes(self.buffer)

    def __iter__(self) -> Iterator:
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]


#: What a FlowTable column slot may hold.
ColumnStorage = Union[array, LazyColumn]


def _seq(column: ColumnStorage) -> Sequence:
    """The directly indexable storage of a column (decodes lazy columns)."""
    if type(column) is LazyColumn:
        return column.materialize()
    return column


class _Pool:
    """An append-only dictionary-encoded value pool shared between tables."""

    __slots__ = ("values", "code_of")

    def __init__(self) -> None:
        self.values: List[object] = []
        self.code_of: Dict[object, int] = {}

    def encode(self, value: object) -> int:
        code = self.code_of.get(value)
        if code is None:
            code = len(self.values)
            self.code_of[value] = code
            self.values.append(value)
        return code


class FlowTable:
    """Columnar, dictionary-encoded storage for flow records."""

    def __init__(self) -> None:
        self._pools: Dict[str, _Pool] = {name: _Pool() for name in CATEGORICAL_COLUMNS}
        self._codes: Dict[str, ColumnStorage] = {name: array("i") for name in CATEGORICAL_COLUMNS}
        self._numeric: Dict[str, ColumnStorage] = {
            name: array(typecode) for name, typecode in NUMERIC_COLUMNS
        }
        self._length = 0
        #: Mutation counter: bumped by every row-mutating primitive so cached
        #: :class:`~repro.flows.kernels.GroupIndex` objects can never be
        #: reused across a mutation (pool growth alone leaves rows intact and
        #: does not bump it).
        self._version = 0
        self._group_cache: Dict[Tuple[str, ...], "kernels.GroupIndex"] = {}

    def __getstate__(self) -> Dict[str, object]:
        # Group indexes are derived data; drop them so pickled tables (the
        # parallel-generation batch shipping path) stay compact and free of
        # backend-specific objects.  Lazy columns are decoded first: their
        # memoryviews over an mmap'd artifact cannot leave the process.
        state = dict(self.__dict__)
        state["_group_cache"] = {}
        state["_codes"] = {name: _seq(column) for name, column in self._codes.items()}
        state["_numeric"] = {name: _seq(column) for name, column in self._numeric.items()}
        return state

    def _materialize_for_write(self) -> None:
        """Copy-on-write barrier: decode every lazy column into a mutable array.

        Called by every mutating primitive before it touches a column, so a
        table loaded zero-copy from an mmap'd artifact silently detaches from
        the map the moment it stops being read-only -- the mapped bytes are
        never written through, and ``_version`` is only ever bumped on
        array-backed tables, exactly as on the eager path.
        """
        for name, column in self._codes.items():
            if type(column) is LazyColumn:
                self._codes[name] = column.materialize()
        for name, column in self._numeric.items():
            if type(column) is LazyColumn:
                self._numeric[name] = column.materialize()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[FlowRecord]) -> "FlowTable":
        """Build a table from flow records (one full pass)."""
        table = cls()
        table.extend(records)
        return table

    @classmethod
    def ensure(cls, flows: Union["FlowTable", Iterable[FlowRecord]]) -> "FlowTable":
        """Return ``flows`` unchanged when already a table, else convert it."""
        if isinstance(flows, cls):
            return flows
        return cls.from_records(flows)

    @classmethod
    def concat(cls, tables: Sequence["FlowTable"]) -> "FlowTable":
        """Merge tables into a new one with canonical dictionary codes.

        Equivalent to ``from_records(t0.to_records() + t1.to_records() + ...)``
        — same rows, same pools, same codes, hence byte-identical under
        :func:`~repro.store.codec.dump_table` — but without materializing any
        records: each source table is remapped code-wise via
        :meth:`extend_table`.  This is the merge primitive behind parallel
        per-hour workload generation, where worker batches arrive with
        batch-local pools and must land in one canonically coded table.
        """
        table = cls()
        for source in tables:
            table.extend_table(source)
        return table

    def append(self, record: FlowRecord) -> None:
        """Append one record (intended for freshly built tables)."""
        self.extend((record,))

    def encode_value(self, name: str, value: object) -> int:
        """Intern a value in a categorical column's pool and return its code.

        The columnar generation path encodes every distinct value once up
        front (per device, per server choice) and then appends plain integer
        codes, so the per-row work is free of dictionary probes.
        """
        return self._pools[name].encode(value)

    def append_columns(
        self,
        count: int,
        codes: Mapping[str, Iterable[int]],
        numeric: Mapping[str, Iterable],
    ) -> None:
        """Bulk-append ``count`` pre-encoded rows column-wise.

        ``codes`` maps every categorical column to an iterable of pool codes
        (obtained from :meth:`encode_value`); ``numeric`` maps every numeric
        column to an iterable of values.  Each column costs one C-level
        ``array.extend``; lengths are validated against ``count`` so a short
        or long iterable cannot silently skew the table.  The append is
        atomic: on any error the already-extended columns are truncated back,
        so a caught failure leaves the table unchanged.
        """
        self._materialize_for_write()
        target = self._length + count
        try:
            for name in CATEGORICAL_COLUMNS:
                column = self._codes[name]
                column.extend(codes[name])
                if len(column) != target:
                    raise ValueError(
                        f"column {name!r}: got {len(column) - self._length} rows, expected {count}"
                    )
            for name, _typecode in NUMERIC_COLUMNS:
                column = self._numeric[name]
                column.extend(numeric[name])
                if len(column) != target:
                    raise ValueError(
                        f"column {name!r}: got {len(column) - self._length} rows, expected {count}"
                    )
        except Exception:
            for name in CATEGORICAL_COLUMNS:
                del self._codes[name][self._length :]
            for name, _typecode in NUMERIC_COLUMNS:
                del self._numeric[name][self._length :]
            raise
        self._length = target
        if count:
            self._version += 1

    def adopt_columns(
        self,
        length: int,
        codes: Mapping[str, ColumnStorage],
        numeric: Mapping[str, ColumnStorage],
    ) -> None:
        """Adopt pre-built column objects wholesale (the lazy-load primitive).

        Unlike :meth:`append_columns`, the column objects themselves -- plain
        arrays or buffer-backed :class:`LazyColumn` views -- become the
        table's storage, so the zero-copy store read path can attach mapped
        columns without decoding them.  The table must be empty, every column
        must already have ``length`` rows, and the pools must already be
        interned (the codec does both before calling).
        """
        if self._length:
            raise ValueError("adopt_columns requires an empty table")
        for name in CATEGORICAL_COLUMNS:
            column = codes[name]
            if len(column) != length:
                raise ValueError(f"column {name!r}: {len(column)} codes for {length} rows")
            self._codes[name] = column
        for name, _typecode in NUMERIC_COLUMNS:
            column = numeric[name]
            if len(column) != length:
                raise ValueError(f"column {name!r}: {len(column)} values for {length} rows")
            self._numeric[name] = column
        self._length = length
        if length:
            self._version += 1

    def extend_table(self, other: "FlowTable") -> None:
        """Append another table's rows, remapping its dictionary codes.

        The result is exactly what ``self.extend(other.to_records())`` would
        produce: same rows, same pools, same codes.  Pools are per-column, so
        the record path's row-major interning order is reproduced by remapping
        column-at-a-time as long as each column's *novel* values are interned
        in the order their first-carrying row appears — which is exactly the
        iteration order of ``dict.fromkeys`` over the source code array.  Each
        distinct source code then pays one pool probe and every row two
        C-level dict lookups, regardless of pool size or sharing, so merging
        is far cheaper than re-encoding records.  Tables that already share
        this table's pools (slices, mask selections) skip the remap entirely.

        Like :meth:`append_columns`, the append is atomic on the columns: the
        remapped code arrays are fully built before any column is extended.
        (Pools are append-only, so entries interned by a failed call are
        harmless.)
        """
        count = other._length
        if other._pools is self._pools:
            remapped: Dict[str, Sequence[int]] = {
                name: other._codes[name] for name in CATEGORICAL_COLUMNS
            }
        else:
            remapped = {}
            for name in CATEGORICAL_COLUMNS:
                source = other._codes[name]
                pool = other._pools[name].values
                encode = self._pools[name].encode
                remap = {code: encode(pool[code]) for code in dict.fromkeys(source)}
                remapped[name] = array("i", map(remap.__getitem__, source))
        self.append_columns(
            count,
            codes=remapped,
            numeric={name: other._numeric[name] for name, _typecode in NUMERIC_COLUMNS},
        )

    def truncate(self, length: int) -> None:
        """Drop every row at index ``length`` or beyond (pools are untouched).

        Parallel generation workers reuse one pool-context table across hour
        batches: each batch is appended, compacted out via :meth:`concat`, and
        truncated away again so worker memory stays flat while the interned
        plan values keep their codes.
        """
        if length < 0 or length > self._length:
            raise ValueError(f"cannot truncate {self._length} rows to {length}")
        self._materialize_for_write()
        if length != self._length:
            self._version += 1
        for name in CATEGORICAL_COLUMNS:
            del self._codes[name][length:]
        for name, _typecode in NUMERIC_COLUMNS:
            del self._numeric[name][length:]
        self._length = length

    def assign_numeric(self, name: str, values: Iterable) -> None:
        """Replace one numeric column wholesale (length-checked).

        Used by the batched NetFlow export to overwrite sampled byte and
        packet counts on a freshly filtered table without materializing
        records.
        """
        column = array(_NUMERIC_TYPECODES[name], values)
        if len(column) != self._length:
            raise ValueError(
                f"column {name!r}: got {len(column)} values for {self._length} rows"
            )
        self._materialize_for_write()
        self._numeric[name] = column
        self._version += 1

    def extend(self, records: Iterable[FlowRecord]) -> None:
        """Append many records.

        This is the conversion hot path (one call per raw flow corpus), so the
        dictionary encoding is inlined with pre-bound column methods instead of
        going through per-field lookups.
        """
        self._materialize_for_write()
        encoders = []
        for name in CATEGORICAL_COLUMNS:
            pool = self._pools[name]
            encoders.append((self._codes[name].append, pool.code_of, pool.values))
        (
            (ts_append, ts_codes, ts_values),
            (prefix_append, prefix_codes, prefix_values),
            (provider_append, provider_codes, provider_values),
            (ip_append, ip_codes, ip_values),
            (continent_append, continent_codes, continent_values),
            (region_append, region_codes, region_values),
            (transport_append, transport_codes, transport_values),
        ) = encoders
        numeric = self._numeric
        subscriber_append = numeric["subscriber_id"].append
        version_append = numeric["ip_version"].append
        port_append = numeric["port"].append
        down_append = numeric["bytes_down"].append
        up_append = numeric["bytes_up"].append
        packets_down_append = numeric["packets_down"].append
        packets_up_append = numeric["packets_up"].append
        sampled_append = numeric["sampled"].append
        fields = _RECORD_FIELDS
        count = 0
        for record in records:
            (
                timestamp,
                prefix,
                provider,
                server_ip,
                continent,
                region,
                transport,
                subscriber,
                version,
                port,
                down,
                up,
                packets_down,
                packets_up,
                sampled,
            ) = fields(record)
            code = ts_codes.get(timestamp)
            if code is None:
                code = ts_codes[timestamp] = len(ts_values)
                ts_values.append(timestamp)
            ts_append(code)
            code = prefix_codes.get(prefix)
            if code is None:
                code = prefix_codes[prefix] = len(prefix_values)
                prefix_values.append(prefix)
            prefix_append(code)
            code = provider_codes.get(provider)
            if code is None:
                code = provider_codes[provider] = len(provider_values)
                provider_values.append(provider)
            provider_append(code)
            code = ip_codes.get(server_ip)
            if code is None:
                code = ip_codes[server_ip] = len(ip_values)
                ip_values.append(server_ip)
            ip_append(code)
            code = continent_codes.get(continent)
            if code is None:
                code = continent_codes[continent] = len(continent_values)
                continent_values.append(continent)
            continent_append(code)
            code = region_codes.get(region)
            if code is None:
                code = region_codes[region] = len(region_values)
                region_values.append(region)
            region_append(code)
            code = transport_codes.get(transport)
            if code is None:
                code = transport_codes[transport] = len(transport_values)
                transport_values.append(transport)
            transport_append(code)
            subscriber_append(subscriber)
            version_append(version)
            port_append(port)
            down_append(down)
            up_append(up)
            packets_down_append(packets_down)
            packets_up_append(packets_up)
            sampled_append(1 if sampled else 0)
            count += 1
        self._length += count
        if count:
            self._version += 1

    # -- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def record_at(self, index: int) -> FlowRecord:
        """Materialize the record at one row index."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        pools = self._pools
        codes = self._codes
        numeric = self._numeric
        return FlowRecord(
            timestamp=pools["timestamp"].values[codes["timestamp"][index]],
            subscriber_id=numeric["subscriber_id"][index],
            subscriber_prefix=pools["subscriber_prefix"].values[codes["subscriber_prefix"][index]],
            ip_version=numeric["ip_version"][index],
            provider_key=pools["provider_key"].values[codes["provider_key"][index]],
            server_ip=pools["server_ip"].values[codes["server_ip"][index]],
            server_continent=pools["server_continent"].values[codes["server_continent"][index]],
            server_region=pools["server_region"].values[codes["server_region"][index]],
            transport=pools["transport"].values[codes["transport"][index]],
            port=numeric["port"][index],
            bytes_down=numeric["bytes_down"][index],
            bytes_up=numeric["bytes_up"][index],
            packets_down=numeric["packets_down"][index],
            packets_up=numeric["packets_up"][index],
            sampled=bool(numeric["sampled"][index]),
        )

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[FlowRecord, "FlowTable"]:
        """Sequence indexing: an int (negative allowed) materializes one record,
        a slice returns a new :class:`FlowTable` sharing the value pools."""
        if isinstance(index, slice):
            return self.select(range(*index.indices(self._length)))
        return self.record_at(index)

    def __iter__(self) -> Iterator[FlowRecord]:
        for index in range(self._length):
            yield self.record_at(index)

    def to_records(self) -> List[FlowRecord]:
        """Materialize every row as a :class:`FlowRecord` (lossless)."""
        return [self.record_at(index) for index in range(self._length)]

    # -- column access -----------------------------------------------------------

    def is_categorical(self, name: str) -> bool:
        """True for dictionary-encoded columns."""
        return name in self._codes

    def codes(self, name: str) -> ColumnStorage:
        """The integer code column of a categorical column.

        Usually an ``array('i')``; on a table loaded zero-copy from the store
        it is a :class:`LazyColumn` view (same sequence protocol, and
        ``tobytes``/``typecode``/``itemsize`` for the codec).
        """
        return self._codes[name]

    def pool(self, name: str) -> List[object]:
        """The value pool of a categorical column (indexed by code)."""
        return self._pools[name].values

    def numeric(self, name: str) -> ColumnStorage:
        """The primitive column of a numeric column (array or lazy view)."""
        return self._numeric[name]

    def column(self, name: str) -> List[object]:
        """The fully decoded values of any column (one list per call)."""
        if name in self._codes:
            values = self._pools[name].values
            return [values[code] for code in self._codes[name]]
        if name == "sampled":
            return [bool(flag) for flag in self._numeric[name]]
        return list(self._numeric[name])

    def _key_column(self, name: str) -> Tuple[Sequence, Optional[List[object]]]:
        """Return (per-row key codes, decode pool or None) for a column."""
        if name in self._codes:
            return self._codes[name], self._pools[name].values
        return self._numeric[name], None

    # -- bulk filters ------------------------------------------------------------

    def select(self, indices: Sequence[int]) -> "FlowTable":
        """Return a new table with the given rows, sharing the value pools."""
        table = FlowTable()
        table._pools = self._pools
        for name in CATEGORICAL_COLUMNS:
            source = _seq(self._codes[name])
            table._codes[name] = array("i", map(source.__getitem__, indices))
        for name, typecode in NUMERIC_COLUMNS:
            source = _seq(self._numeric[name])
            table._numeric[name] = array(typecode, map(source.__getitem__, indices))
        table._length = len(indices)
        return table

    def select_mask(self, mask: Sequence[int]) -> "FlowTable":
        """Return a new table with the rows whose mask entry is truthy.

        The per-row copy runs entirely through :func:`itertools.compress`, so
        bulk filters cost one C-level pass per column.
        """
        table = FlowTable()
        table._pools = self._pools
        for name in CATEGORICAL_COLUMNS:
            table._codes[name] = array("i", compress(_seq(self._codes[name]), mask))
        for name, typecode in NUMERIC_COLUMNS:
            table._numeric[name] = array(typecode, compress(_seq(self._numeric[name]), mask))
        table._length = len(table._codes["timestamp"])
        return table

    def _code_mask(self, name: str, predicate: Callable[[object], bool]) -> bytearray:
        """Per-code boolean mask of a categorical column's pool."""
        values = self._pools[name].values
        mask = bytearray(len(values))
        for code, value in enumerate(values):
            if predicate(value):
                mask[code] = 1
        return mask

    def mask_code(self, name: str, predicate: Callable[[object], bool]) -> bytearray:
        """Row mask over a categorical column; the predicate runs once per
        *distinct* value, the per-row expansion is a C-level map."""
        code_mask = self._code_mask(name, predicate)
        return bytearray(map(code_mask.__getitem__, _seq(self._codes[name])))

    def mask_day(self, day: date) -> bytearray:
        """Row mask selecting one calendar day."""
        return self.mask_code("timestamp", lambda ts: ts.date() == day)

    def mask_server_ips(self, ips: Iterable[str]) -> bytearray:
        """Row mask selecting flows whose server address is in the given set."""
        allowed = set(ips)
        return self.mask_code("server_ip", lambda ip: ip in allowed)

    def mask_ip_version(self, ip_version: int) -> bytearray:
        """Row mask selecting one address family."""
        column = self._numeric["ip_version"]
        return bytearray(1 if version == ip_version else 0 for version in column)

    def where_code(self, name: str, predicate: Callable[[object], bool]) -> "FlowTable":
        """Rows whose categorical column value satisfies a predicate.

        The predicate runs once per *distinct* value, not once per row.
        Prefer passing a mask (:meth:`mask_code`) straight to the grouped
        aggregations when the filtered table is used only once -- that skips
        the 15-column row copy entirely.
        """
        return self.select_mask(self.mask_code(name, predicate))

    def where_day(self, day: date) -> "FlowTable":
        """Rows whose timestamp falls on the given calendar day."""
        return self.where_code("timestamp", lambda ts: ts.date() == day)

    def where_provider(self, provider_key: str) -> "FlowTable":
        """Rows of one provider."""
        return self.where_code("provider_key", lambda key: key == provider_key)

    def restrict_server_ips(self, ips: Iterable[str]) -> "FlowTable":
        """Rows whose server address is in the given set."""
        allowed = set(ips)
        return self.where_code("server_ip", lambda ip: ip in allowed)

    def where_ip_version(self, ip_version: int) -> "FlowTable":
        """Rows of one address family."""
        return self.select_mask(self.mask_ip_version(ip_version))

    def exclude_subscribers(self, subscriber_ids: Iterable[int]) -> "FlowTable":
        """Drop all rows of the given subscriber lines."""
        excluded = set(subscriber_ids)
        if not excluded:
            return self
        column = self._numeric["subscriber_id"]
        return self.select_mask(bytearray(0 if line in excluded else 1 for line in column))

    # -- grouped aggregation -----------------------------------------------------

    def _group_decoder(self, by: Sequence[str]) -> Callable[[object], GroupKey]:
        """Decoder from packed/tuple composite keys back to column values.

        Split out of :meth:`_group_codes` so the numpy index builder can pack
        keys column-wise without paying the python per-row key build.
        """
        if len(by) == 1:
            _keys, pool = self._key_column(by[0])
            if pool is None:
                return lambda key: key
            return lambda key: pool[key]
        if all(name in self._codes for name in by):
            pools = [self._pools[name].values for name in by]
            sizes = [len(pool) for pool in pools]
            if len(by) == 2:
                radix = sizes[1]
                first_pool, second_pool = pools

                def decode_pair(key: int) -> Tuple[object, object]:
                    return (first_pool[key // radix], second_pool[key % radix])

                return decode_pair

            def decode_packed(key: int) -> Tuple[object, ...]:
                parts: List[object] = []
                for size, pool in zip(reversed(sizes), reversed(pools)):
                    key, code = divmod(key, size)
                    parts.append(pool[code])
                return tuple(reversed(parts))

            return decode_packed
        pools = [self._key_column(name)[1] for name in by]

        def decode(key: Tuple[int, ...]) -> Tuple[object, ...]:
            return tuple(
                part if pool is None else pool[part] for part, pool in zip(key, pools)
            )

        return decode

    def _group_codes(self, by: Sequence[str]) -> Tuple[Iterable, Callable[[object], GroupKey]]:
        """Per-row composite key iterator plus a decoder back to values.

        All-categorical key combinations are packed into single integers
        (mixed-radix over the pool sizes): int keys hash far faster than
        tuples of strings/datetimes, which is where grouped aggregations
        spend their time.
        """
        decode = self._group_decoder(by)
        if len(by) == 1:
            keys, _pool = self._key_column(by[0])
            return keys, decode
        if all(name in self._codes for name in by):
            code_arrays = [self._codes[name] for name in by]
            sizes = [len(self._pools[name].values) for name in by]
            if len(by) == 2:
                first, second = code_arrays
                radix = sizes[1]
                return [a * radix + b for a, b in zip(first, second)], decode
            packed: List[int] = []
            for row in zip(*code_arrays):
                key = 0
                for code, size in zip(row, sizes):
                    key = key * size + code
                packed.append(key)
            return packed, decode
        rows = zip(*(self._key_column(name)[0] for name in by))
        return rows, decode

    def group_index(self, by: Sequence[str]) -> "kernels.GroupIndex":
        """The cached grouping permutation for a key-column combination.

        Built once per table revision and reused by every aggregation that
        shares the grouping; any mutation (:meth:`extend`,
        :meth:`append_columns`, :meth:`extend_table`, :meth:`truncate`,
        :meth:`assign_numeric`) bumps :attr:`_version`, so a stale index can
        never be returned.  Derived tables (:meth:`select`, slices) start
        with an empty cache of their own.
        """
        from repro.flows import kernels
        from repro.obs import metrics as obs_metrics

        by = tuple(by)
        cached = self._group_cache.get(by)
        if cached is not None and cached.version == self._version:
            if obs_metrics.enabled():
                obs_metrics.inc("flowtable.group_index_hits")
            return cached
        if obs_metrics.enabled():
            obs_metrics.inc("flowtable.group_index_builds")
        index = kernels.build_group_index(self, by)
        self._group_cache[by] = index
        return index

    def group_sums(
        self,
        by: Sequence[str],
        values: Sequence[str],
        mask: Optional[Sequence[int]] = None,
    ) -> Dict[GroupKey, List[float]]:
        """Sum one or more numeric columns per group key.

        ``by`` names any combination of columns; single-column keys decode to
        the bare value, multi-column keys to a tuple.  ``mask`` restricts the
        aggregation to the rows whose mask entry is truthy without copying
        any column.  Returns ``{key: [sum per value column]}``.

        Runs on the active :mod:`repro.flows.kernels` backend over the cached
        :meth:`group_index`; all backends are bit-identical to the reference
        kernels (see ``tests/test_kernel_parity.py``).
        """
        from repro.flows import kernels

        return kernels.group_sums(self, by, values, mask)

    def group_sum(
        self, by: Sequence[str], value: str, mask: Optional[Sequence[int]] = None
    ) -> Dict[GroupKey, float]:
        """Sum one numeric column per group key."""
        return {key: sums[0] for key, sums in self.group_sums(by, (value,), mask=mask).items()}

    def group_distinct(
        self, by: Sequence[str], of: str, mask: Optional[Sequence[int]] = None
    ) -> Dict[GroupKey, Set[object]]:
        """Distinct values of one column per group key (mask-restrictable)."""
        from repro.flows import kernels

        return kernels.group_distinct(self, by, of, mask)

    def group_distinct_count(
        self, by: Sequence[str], of: str, mask: Optional[Sequence[int]] = None
    ) -> Dict[GroupKey, int]:
        """Number of distinct values of one column per group key."""
        from repro.flows import kernels

        return kernels.group_distinct_count(self, by, of, mask)

    def distinct(self, name: str) -> Set[object]:
        """Distinct values of one column across the whole table."""
        from repro.flows import kernels

        return kernels.distinct(self, name)

    def total(self, value: str) -> float:
        """Sum of one numeric column over all rows."""
        from repro.flows import kernels

        return kernels.total(self, value)
