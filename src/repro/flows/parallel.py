"""Multiprocess per-hour workload generation.

Hours of a study period are independent by construction: every hour draws
exclusively from its own fresh ``workload:<hour-iso>`` stream (see
:mod:`repro.simulation.rng`), so generating them in any order — or in
different processes — consumes exactly the same random values per hour.  This
module exploits that to fan the hours of
:meth:`~repro.flows.workload.WorkloadGenerator.generate_period_table` out
across a worker pool while keeping the output *byte-identical* to the serial
path, which is what lets the artifact-store content address stay the same
regardless of ``gen_workers``.

Bit-identity rests on three invariants:

1. **Per-hour streams.**  Workers derive each hour's stream from the pickled
   :class:`~repro.simulation.rng.RngRegistry` exactly as the serial loop
   would; no registered (stateful) stream is touched by a worker.
2. **Canonical merge order.**  The parent first interns the per-period plan
   values (every prefix, provider, server address, transport) in the same
   order the serial path does, then merges the hour batches *in hour order*
   through the pool-remapping :meth:`~repro.flows.flowtable.FlowTable.extend_table`
   primitive.  During the merge the only novel categorical value per batch is
   the hour's timestamp, which the parent interns explicitly — even for an
   hour that produced zero flows, matching the serial path's unconditional
   ``encode_value("timestamp", ...)``.
3. **Serial scanner traffic.**  Scanner flows draw from the *registered*
   ``scanner-traffic`` stream, whose state carries across days; they are
   therefore generated in the parent, interleaved after each day's 24 hour
   batches exactly as the serial path interleaves them.

Workers hold one pool-context :class:`~repro.flows.flowtable.FlowTable` with
the plan values interned once per worker; each hour batch is appended to it,
compacted into a batch-local table via
:meth:`~repro.flows.flowtable.FlowTable.concat`, shipped to the parent, and
truncated away again, so worker memory stays flat and the pickled batch
carries only the values its rows use.

Scenario-level (:class:`~repro.sweeps.runner.SweepRunner`) and hour-level
parallelism compose: :func:`effective_gen_workers` clamps the per-scenario
worker count so the product of both levels never oversubscribes the visible
CPUs.
"""

from __future__ import annotations

import multiprocessing
import os
from datetime import datetime, time
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.flows.flowtable import FlowTable
from repro.flows.scanners import append_scanner_flows
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - typing-only
    from repro.flows.workload import WorkloadGenerator
    from repro.simulation.clock import StudyPeriod

#: Per-worker state installed by the pool initializer:
#: (generator, pool-context table, encoded device plans, outage keys).
_WORKER_STATE: Optional[Tuple["WorkloadGenerator", FlowTable, list, list]] = None


def available_cpus() -> int:
    """The number of CPUs this process may actually run on (>= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def parallelism_usable() -> bool:
    """Whether a worker pool can be created from this process.

    ``multiprocessing.Pool`` workers are daemonic and may not have children;
    code that is itself running inside such a worker must fall back to serial
    generation.  (Sweep scenario workers run under a non-daemonic
    ``ProcessPoolExecutor`` precisely so hour-level pools can nest inside
    them.)
    """
    return not multiprocessing.current_process().daemon


def effective_gen_workers(requested: Optional[int], scenario_workers: int = 1) -> int:
    """Clamp hour-level workers so both parallelism levels fit the machine.

    ``requested`` is the user's ``gen_workers`` knob (``None`` means serial).
    With ``scenario_workers`` scenario processes running concurrently, each
    may use at most ``cpus // scenario_workers`` hour workers, and never
    fewer than one — the clamp is unconditional (it applies to a lone
    scenario too), so ``scenario_workers x gen_workers`` can never exceed the
    visible CPUs.  Oversubscribing with nested pools would only slow both
    levels down; the clamp never changes any output, only wall-clock:
    generation is byte-identical at every worker count.
    """
    if requested is None:
        return 1
    workers = max(1, int(requested))
    scenario_workers = max(1, int(scenario_workers))
    return max(1, min(workers, available_cpus() // scenario_workers))


def _init_worker(generator: "WorkloadGenerator") -> None:
    """Pool initializer: intern the per-period plan values once per worker."""
    global _WORKER_STATE
    table = FlowTable()
    rows, outage_keys = generator._encoded_plans(table)
    _WORKER_STATE = (generator, table, list(rows), list(outage_keys))


def _hour_task(hour_iso: str) -> FlowTable:
    """Generate one hour's flows and return them as a compact batch table.

    The batch is appended to the worker's pool-context table (so the plan
    codes resolve), compacted into a table whose pools hold only the values
    the batch's rows actually reference, and truncated away again.
    """
    generator, table, rows, outage_keys = _WORKER_STATE
    when = datetime.fromisoformat(hour_iso)
    # Forked workers inherit the parent's trace descriptor; spawned ones
    # re-open the path from $IOT_REPRO_TRACE on first use (O_APPEND keeps
    # concurrent whole-line writes intact either way).
    with span("gen.hour", hour=hour_iso):
        generator._append_hour_columns(table, rows, outage_keys, when)
        batch = FlowTable.concat([table])
        table.truncate(0)
    return batch


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every pool in this codebase should use:
    fork when the platform offers it (cheap, inherits large read-only state
    such as the generator), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def period_hours(period: "StudyPeriod") -> List[datetime]:
    """Every hour of a study period, in generation order."""
    return [
        datetime.combine(day, time(hour=hour)) for day in period.days() for hour in range(24)
    ]


def generate_period_table_parallel(
    generator: "WorkloadGenerator",
    period: "StudyPeriod",
    include_scanners: bool,
    workers: int,
) -> FlowTable:
    """Fan the period's hours out across a pool; merge byte-identically.

    The parent interns the plan values first (serial pool order), streams the
    hour batches back in order via ``imap``, interns each hour's timestamp,
    remap-merges the batch, and appends each day's scanner flows from its own
    registered stream — reproducing the serial row and pool order exactly.
    """
    hours = period_hours(period)
    workers = max(1, min(workers, len(hours)))
    table = FlowTable()
    generator._encoded_plans(table)
    scanner_lines = generator.population.scanner_lines() if include_scanners else []
    catalog = generator.server_catalog(ip_version=4) if include_scanners else []
    context = pool_context()
    chunksize = max(1, len(hours) // (workers * 4))
    with context.Pool(
        processes=workers, initializer=_init_worker, initargs=(generator,)
    ) as pool:
        batches: Iterator[FlowTable] = pool.imap(
            _hour_task, [when.isoformat() for when in hours], chunksize=chunksize
        )
        position = 0
        for day in period.days():
            for _hour in range(24):
                when = hours[position]
                position += 1
                batch = next(batches)
                # Serial generation interns the timestamp even for an hour
                # with zero flows; do the same so the pools stay identical.
                table.encode_value("timestamp", when)
                table.extend_table(batch)
            if include_scanners:
                append_scanner_flows(table, scanner_lines, catalog, day, generator.rng)
    return table
