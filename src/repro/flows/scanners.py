"""Scanner traffic injection.

A small number of subscriber lines host Internet-wide scanners; their traffic
touches a large fraction of all backend server addresses and would bias the
visibility analysis, which is why the paper identifies and excludes them with a
threshold on the number of contacted backend IPs (Section 5.2, Figure 5).  This
module generates the scan flows for the lines marked as scanners in the population.
"""

from __future__ import annotations

from datetime import date, datetime, time
from typing import Iterable, List, Sequence

from repro.flows.netflow import FlowRecord, make_flow
from repro.flows.subscribers import SubscriberLine
from repro.simulation.rng import RngRegistry

#: Bytes exchanged per scan probe (a SYN plus a small banner exchange).
SCAN_PROBE_BYTES_UP = 180.0
SCAN_PROBE_BYTES_DOWN = 320.0

#: Ports a scanner sweeps (standard IoT and Web ports).
SCAN_PORTS = (("tcp", 443), ("tcp", 8883), ("tcp", 1883), ("tcp", 5671))


def generate_scanner_flows(
    scanner_lines: Sequence[SubscriberLine],
    server_catalog: Sequence[tuple],
    day: date,
    rng: RngRegistry,
    coverage_range: tuple = (0.6, 0.95),
) -> List[FlowRecord]:
    """Generate one day of scan traffic for the scanner lines.

    Parameters
    ----------
    scanner_lines:
        The subscriber lines hosting scanners.
    server_catalog:
        Sequence of ``(provider_key, server_ip, continent, region_code)`` tuples for
        every backend server an IPv4 scanner can reach.
    day:
        The day to generate traffic for.
    coverage_range:
        Each scanner covers a uniformly drawn fraction of the catalog within this
        range, so different scanners contact different numbers of backends.
    """
    stream = rng.stream("scanner-traffic")
    flows: List[FlowRecord] = []
    catalog = list(server_catalog)
    if not catalog:
        return flows
    low, high = coverage_range
    for line in scanner_lines:
        if not line.is_scanner:
            continue
        coverage = stream.uniform(low, high)
        n_targets = max(1, int(round(coverage * len(catalog))))
        targets = stream.sample(catalog, n_targets)
        for provider_key, server_ip, continent, region_code in targets:
            hour = stream.randrange(24)
            transport, port = SCAN_PORTS[stream.randrange(len(SCAN_PORTS))]
            flows.append(
                make_flow(
                    timestamp=datetime.combine(day, time(hour=hour)),
                    subscriber_id=line.line_id,
                    subscriber_prefix=line.isp_prefix,
                    ip_version=line.ip_version,
                    provider_key=provider_key,
                    server_ip=server_ip,
                    server_continent=continent,
                    server_region=region_code,
                    transport=transport,
                    port=port,
                    bytes_down=SCAN_PROBE_BYTES_DOWN,
                    bytes_up=SCAN_PROBE_BYTES_UP,
                )
            )
    return flows
