"""Scanner traffic injection.

A small number of subscriber lines host Internet-wide scanners; their traffic
touches a large fraction of all backend server addresses and would bias the
visibility analysis, which is why the paper identifies and excludes them with a
threshold on the number of contacted backend IPs (Section 5.2, Figure 5).  This
module generates the scan flows for the lines marked as scanners in the population.

Both generation paths — :func:`generate_scanner_flows` (records) and
:func:`append_scanner_flows` (straight into ``FlowTable`` columns) — share
:func:`_scan_plans`, which performs every draw of the ``scanner-traffic``
stream (coverage, target sample, probe hour and port per target) in one pass
per scanner line.  The columnar path then encodes each distinct target and
timestamp once and appends the whole day as one column batch; because the
draws are identical, the two paths emit bit-identical flows under a fixed seed.
"""

from __future__ import annotations

import math
from datetime import date, datetime, time
from itertools import repeat
from typing import Dict, List, Sequence, Tuple

from repro.flows.flowtable import FlowTable
from repro.flows.netflow import DEFAULT_PACKET_SIZE, FlowRecord, make_flow
from repro.flows.subscribers import SubscriberLine
from repro.simulation.rng import RngRegistry

#: Bytes exchanged per scan probe (a SYN plus a small banner exchange).
SCAN_PROBE_BYTES_UP = 180.0
SCAN_PROBE_BYTES_DOWN = 320.0

#: Ports a scanner sweeps (standard IoT and Web ports).
SCAN_PORTS = (("tcp", 443), ("tcp", 8883), ("tcp", 1883), ("tcp", 5671))

#: Packet counts of one probe, derived exactly as :func:`make_flow` would.
_SCAN_PACKETS_DOWN = max(1, int(math.ceil(SCAN_PROBE_BYTES_DOWN / DEFAULT_PACKET_SIZE)))
_SCAN_PACKETS_UP = max(1, int(math.ceil(SCAN_PROBE_BYTES_UP / DEFAULT_PACKET_SIZE)))

_ScanPlan = Tuple[SubscriberLine, List[tuple], List[int], List[int]]


def _scan_plans(
    scanner_lines: Sequence[SubscriberLine],
    catalog: Sequence[tuple],
    rng: RngRegistry,
    coverage_range: tuple,
) -> List[_ScanPlan]:
    """Draw each scanner's (targets, hours, port indexes) for one day.

    The registered streams carry state across days, so consecutive days scan
    different catalog subsets, as at the ISP.
    """
    stream = rng.stream("scanner-traffic")
    plans: List[_ScanPlan] = []
    catalog = list(catalog)
    if not catalog:
        return plans
    low, high = coverage_range
    n_ports = len(SCAN_PORTS)
    for line in scanner_lines:
        if not line.is_scanner:
            continue
        coverage = stream.uniform(low, high)
        n_targets = max(1, int(round(coverage * len(catalog))))
        targets = stream.sample(catalog, n_targets)
        hours: List[int] = []
        port_indexes: List[int] = []
        for _ in range(n_targets):
            hours.append(stream.randrange(24))
            port_indexes.append(stream.randrange(n_ports))
        plans.append((line, targets, hours, port_indexes))
    return plans


def generate_scanner_flows(
    scanner_lines: Sequence[SubscriberLine],
    server_catalog: Sequence[tuple],
    day: date,
    rng: RngRegistry,
    coverage_range: tuple = (0.6, 0.95),
) -> List[FlowRecord]:
    """Generate one day of scan traffic for the scanner lines.

    Parameters
    ----------
    scanner_lines:
        The subscriber lines hosting scanners.
    server_catalog:
        Sequence of ``(provider_key, server_ip, continent, region_code)`` tuples for
        every backend server an IPv4 scanner can reach.
    day:
        The day to generate traffic for.
    coverage_range:
        Each scanner covers a uniformly drawn fraction of the catalog within this
        range, so different scanners contact different numbers of backends.
    """
    flows: List[FlowRecord] = []
    for line, targets, hours, port_indexes in _scan_plans(
        scanner_lines, server_catalog, rng, coverage_range
    ):
        for (provider_key, server_ip, continent, region_code), hour, port_index in zip(
            targets, hours, port_indexes
        ):
            transport, port = SCAN_PORTS[port_index]
            flows.append(
                make_flow(
                    timestamp=datetime.combine(day, time(hour=hour)),
                    subscriber_id=line.line_id,
                    subscriber_prefix=line.isp_prefix,
                    ip_version=line.ip_version,
                    provider_key=provider_key,
                    server_ip=server_ip,
                    server_continent=continent,
                    server_region=region_code,
                    transport=transport,
                    port=port,
                    bytes_down=SCAN_PROBE_BYTES_DOWN,
                    bytes_up=SCAN_PROBE_BYTES_UP,
                )
            )
    return flows


def append_scanner_flows(
    table: FlowTable,
    scanner_lines: Sequence[SubscriberLine],
    server_catalog: Sequence[tuple],
    day: date,
    rng: RngRegistry,
    coverage_range: tuple = (0.6, 0.95),
) -> int:
    """Columnar twin of :func:`generate_scanner_flows`: append one day of scan
    traffic straight into ``table``'s columns.  Returns the number of flows
    appended; under a fixed seed the rows are bit-identical to the record path.
    """
    plans = _scan_plans(scanner_lines, server_catalog, rng, coverage_range)
    if not plans:
        return 0
    encode = table.encode_value
    timestamp_codes: Dict[int, int] = {}
    target_codes: Dict[tuple, Tuple[int, int, int, int]] = {}
    port_columns: List[Tuple[int, int]] = [
        (encode("transport", transport), port) for transport, port in SCAN_PORTS
    ]
    timestamp_column: List[int] = []
    prefix_codes: List[int] = []
    provider_codes: List[int] = []
    ip_codes: List[int] = []
    continent_codes: List[int] = []
    region_codes: List[int] = []
    transport_codes: List[int] = []
    subscriber_ids: List[int] = []
    ip_versions: List[int] = []
    ports: List[int] = []
    count = 0
    for line, targets, hours, port_indexes in plans:
        prefix_code = encode("subscriber_prefix", line.isp_prefix)
        line_id = line.line_id
        version = line.ip_version
        for target, hour, port_index in zip(targets, hours, port_indexes):
            timestamp_code = timestamp_codes.get(hour)
            if timestamp_code is None:
                timestamp_code = timestamp_codes[hour] = encode(
                    "timestamp", datetime.combine(day, time(hour=hour))
                )
            codes = target_codes.get(target)
            if codes is None:
                provider_key, server_ip, continent, region_code = target
                codes = target_codes[target] = (
                    encode("provider_key", provider_key),
                    encode("server_ip", server_ip),
                    encode("server_continent", continent),
                    encode("server_region", region_code),
                )
            transport_code, port = port_columns[port_index]
            timestamp_column.append(timestamp_code)
            prefix_codes.append(prefix_code)
            provider_codes.append(codes[0])
            ip_codes.append(codes[1])
            continent_codes.append(codes[2])
            region_codes.append(codes[3])
            transport_codes.append(transport_code)
            subscriber_ids.append(line_id)
            ip_versions.append(version)
            ports.append(port)
            count += 1
    table.append_columns(
        count,
        codes={
            "timestamp": timestamp_column,
            "subscriber_prefix": prefix_codes,
            "provider_key": provider_codes,
            "server_ip": ip_codes,
            "server_continent": continent_codes,
            "server_region": region_codes,
            "transport": transport_codes,
        },
        numeric={
            "subscriber_id": subscriber_ids,
            "ip_version": ip_versions,
            "port": ports,
            "bytes_down": repeat(SCAN_PROBE_BYTES_DOWN, count),
            "bytes_up": repeat(SCAN_PROBE_BYTES_UP, count),
            "packets_down": repeat(_SCAN_PACKETS_DOWN, count),
            "packets_up": repeat(_SCAN_PACKETS_UP, count),
            "sampled": repeat(0, count),
        },
    )
    return count
