"""Subscriber lines and their IoT devices.

The ISP vantage point serves more than fifteen million broadband subscriber lines;
the analyses identify more than 2.3 million IPv4 and roughly 200 thousand IPv6
lines with IoT activity per day.  The population here is a scaled-down version
with the same structure: a line is identified by its (anonymized) id, has an
address family, belongs to a BGP prefix of the ISP (used for anonymization), and
hosts zero or more IoT devices, each tied to one backend provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.providers import PROVIDERS, ProviderSpec
from repro.flows.devices import DeviceModel, build_device_model
from repro.simulation.rng import RngRegistry


@dataclass(frozen=True)
class DeviceInstance:
    """One IoT device installed behind a subscriber line."""

    device_id: str
    provider_key: str
    model: DeviceModel


@dataclass
class SubscriberLine:
    """A broadband subscriber line of the ISP."""

    line_id: int
    ip_version: int
    isp_prefix: str
    devices: Tuple[DeviceInstance, ...] = ()
    is_scanner: bool = False

    @property
    def has_iot(self) -> bool:
        """True when the line hosts at least one IoT device."""
        return bool(self.devices)

    def providers(self) -> List[str]:
        """Return the distinct provider keys of the line's devices."""
        return sorted({device.provider_key for device in self.devices})


@dataclass
class SubscriberPopulation:
    """The full subscriber-line population of the ISP."""

    lines: List[SubscriberLine] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.lines)

    def iot_lines(self) -> List[SubscriberLine]:
        """Return the lines hosting at least one IoT device."""
        return [line for line in self.lines if line.has_iot]

    def scanner_lines(self) -> List[SubscriberLine]:
        """Return the lines hosting a scanner."""
        return [line for line in self.lines if line.is_scanner]

    def lines_for_provider(self, provider_key: str) -> List[SubscriberLine]:
        """Return the lines with at least one device of the given provider."""
        return [
            line
            for line in self.lines
            if any(device.provider_key == provider_key for device in line.devices)
        ]

    def device_count(self) -> int:
        """Total number of devices across all lines."""
        return sum(len(line.devices) for line in self.lines)

    @classmethod
    def build(
        cls,
        n_lines: int,
        providers: Sequence[ProviderSpec],
        rng: RngRegistry,
        ipv6_line_fraction: float = 0.08,
        iot_household_fraction: float = 0.45,
        n_scanner_lines: int = 4,
        n_heavy_lines: int = 0,
        isp_prefix_count: int = 64,
    ) -> "SubscriberPopulation":
        """Build a population.

        Parameters
        ----------
        n_lines:
            Number of subscriber lines.
        providers:
            Provider catalog; each provider's ``traffic.subscriber_share`` gives the
            probability that an IoT household hosts one of its devices.
        ipv6_line_fraction:
            Fraction of lines using IPv6 connectivity.
        iot_household_fraction:
            Fraction of lines hosting at least one IoT device (the paper cites
            roughly half of North-American homes; we use it for the ISP too).
        n_scanner_lines:
            Number of lines hosting Internet-wide scanners (excluded in Section 5.2).
        n_heavy_lines:
            Number of additional "heavy" lines hosting devices from many providers,
            giving the scanner-threshold curve of Figure 5 its long tail.  Defaults
            to 1% of lines when 0.
        """
        if n_lines <= 0:
            raise ValueError("n_lines must be positive")
        stream = rng.stream("subscribers")
        models: Dict[str, DeviceModel] = {spec.key: build_device_model(spec) for spec in providers}
        if n_heavy_lines <= 0:
            n_heavy_lines = max(1, n_lines // 100)
        population = cls()
        for line_id in range(n_lines):
            ip_version = 6 if stream.random() < ipv6_line_fraction else 4
            prefix_index = stream.randrange(isp_prefix_count)
            isp_prefix = f"isp-prefix-{ip_version}-{prefix_index:03d}"
            devices: List[DeviceInstance] = []
            if stream.random() < iot_household_fraction:
                for spec in providers:
                    if stream.random() < spec.traffic.subscriber_share:
                        devices.append(
                            DeviceInstance(
                                device_id=f"line{line_id}-{spec.key}",
                                provider_key=spec.key,
                                model=models[spec.key],
                            )
                        )
            population.lines.append(
                SubscriberLine(
                    line_id=line_id,
                    ip_version=ip_version,
                    isp_prefix=isp_prefix,
                    devices=tuple(devices),
                )
            )
        _mark_heavy_lines(population, providers, models, n_heavy_lines, rng)
        _mark_scanner_lines(population, n_scanner_lines, rng)
        return population


def _mark_heavy_lines(
    population: SubscriberPopulation,
    providers: Sequence[ProviderSpec],
    models: Dict[str, DeviceModel],
    n_heavy_lines: int,
    rng: RngRegistry,
) -> None:
    """Upgrade a few lines to host devices from many providers (long-tail households)."""
    stream = rng.stream("heavy-lines")
    iot_lines = population.iot_lines()
    if not iot_lines:
        return
    n_heavy_lines = min(n_heavy_lines, len(iot_lines))
    chosen = stream.sample(iot_lines, n_heavy_lines)
    for line in chosen:
        extra: List[DeviceInstance] = list(line.devices)
        present = {device.provider_key for device in extra}
        for spec in providers:
            if spec.key in present:
                continue
            if stream.random() < 0.5:
                extra.append(
                    DeviceInstance(
                        device_id=f"line{line.line_id}-{spec.key}",
                        provider_key=spec.key,
                        model=models[spec.key],
                    )
                )
        line.devices = tuple(extra)


def _mark_scanner_lines(
    population: SubscriberPopulation, n_scanner_lines: int, rng: RngRegistry
) -> None:
    """Mark a few lines as hosting Internet-wide scanners."""
    stream = rng.stream("scanner-lines")
    n_scanner_lines = min(n_scanner_lines, len(population.lines))
    if n_scanner_lines <= 0:
        return
    chosen = stream.sample(population.lines, n_scanner_lines)
    for line in chosen:
        line.is_scanner = True
