"""Numpy grouped-aggregation kernels (optional backend).

Importing this module requires numpy; :mod:`repro.flows.kernels` guards the
import and falls back to the pure-python kernels when it fails.  Every kernel
here either returns a result **bit-identical** to the python reference or
returns ``NotImplemented`` so the dispatcher runs the python path instead:

* Float group sums use ``np.bincount``, whose accumulation is a sequential
  loop in row order -- the same addition order as the python kernels, hence
  the same IEEE-754 result (the lone exception, a leading ``-0.0``, is
  documented in :mod:`repro.flows.kernels`).
* Integer group sums accumulate into an int64 array via ``np.add.at``; when
  ``max(|value|) * rows`` could reach the :data:`~repro.flows.kernels`
  ``INT64_SAFE_LIMIT`` the kernel defers to python, whose arbitrary-precision
  ints cannot overflow.  The same guard covers packed distinct-count pairs
  and whole-column totals.
* Result dicts preserve the reference first-appearance key order: group ids
  are dense in first-appearance order by construction, and masked
  aggregations recover the masked first-appearance order from
  ``np.unique(..., return_index=True)``.
* Float *member* columns (``group_distinct`` over a float column) defer to
  python: ``np.unique`` collapses NaNs that python set semantics keep
  distinct.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flows.flowtable import LazyColumn

#: array-module typecode -> numpy dtype for zero-copy column views.
_DTYPES = {
    "b": np.int8,
    "i": np.int32,
    "q": np.int64,
    "d": np.float64,
}

_INT_TYPECODES = ("b", "i", "q")

#: Cell bound for the sort-free bitset distinct-count layout (64 MiB of
#: bool); wider (member range x group count) spans fall back to the
#: ``np.unique`` sort, which needs no memory proportional to the value range.
_BITSET_SPAN_LIMIT = 1 << 26

#: Mirrors :data:`repro.flows.kernels.INT64_SAFE_LIMIT` (redefined here to
#: keep this module importable on its own; the parity harness asserts the two
#: stay equal).
INT64_SAFE_LIMIT = 2**62


def _as_np(column: Sequence) -> Optional[np.ndarray]:
    """Zero-copy numpy view of a column (None when unsupported).

    Plain ``array`` columns and :class:`LazyColumn` views both wrap their raw
    bytes via ``np.frombuffer`` -- for a lazy column that means the kernels
    read straight from the mmap'd store artifact, no copy anywhere.
    """
    if isinstance(column, array):
        dtype = _DTYPES.get(column.typecode)
        if dtype is not None:
            return np.frombuffer(column, dtype=dtype)
    if isinstance(column, LazyColumn):
        return column.as_numpy()
    if isinstance(column, np.ndarray):
        return column
    return None


def _int_member_view(members: Sequence) -> Optional[np.ndarray]:
    """int64 view of an integer member column, or None for other columns."""
    if isinstance(members, (array, LazyColumn)) and members.typecode in _INT_TYPECODES:
        view = _as_np(members)
        if view is not None:
            return view.astype(np.int64, copy=False)
    return None


def _mask_selector(mask: Sequence[int], rows: int) -> Optional[np.ndarray]:
    """Boolean row selector for a mask, or None when python must handle it."""
    if isinstance(mask, (bytes, bytearray)):
        selector = np.frombuffer(mask, dtype=np.uint8)
    else:
        try:
            selector = np.asarray(mask)
        except Exception:
            return None
    if selector.shape != (rows,):
        # compress() semantics (short/long masks) differ from fancy indexing;
        # leave those rare shapes to the python kernels.
        return None
    return selector != 0


def _int_bound_ok(values: np.ndarray, rows: int) -> bool:
    """True when int64 accumulation over ``rows`` rows cannot overflow."""
    if not values.size or not rows:
        return True
    peak = max(abs(int(values.max())), abs(int(values.min())))
    return peak * rows < INT64_SAFE_LIMIT


def _first_appearance_order(gids: np.ndarray) -> np.ndarray:
    """Group ids in order of their first occurrence in ``gids``."""
    present, first = np.unique(gids, return_index=True)
    return present[np.argsort(first, kind="stable")]


# ---------------------------------------------------------------------------------
# Group index construction
# ---------------------------------------------------------------------------------


def build_group_index(table, by: Tuple[str, ...]):
    """Dense first-appearance group ids over int64-packable key columns.

    Returns ``(gids array('q'), packed keys in first-appearance order)`` or
    ``NotImplemented`` when the key columns cannot pack into int64 (mixed
    categorical/numeric combinations, float keys, or a mixed-radix span
    beyond 2**63) -- the python builder handles those.
    """
    if len(by) == 1:
        name = by[0]
        if table.is_categorical(name):
            keys = _as_np(table.codes(name)).astype(np.int64, copy=False)
        else:
            column = table.numeric(name)
            if column.typecode not in _INT_TYPECODES:
                return NotImplemented
            keys = _as_np(column).astype(np.int64, copy=False)
    elif all(table.is_categorical(name) for name in by):
        sizes = [len(table.pool(name)) for name in by]
        span = 1
        for size in sizes:
            span *= max(1, size)
        if span >= 2**63:
            return NotImplemented
        keys = _as_np(table.codes(by[0])).astype(np.int64, copy=False)
        for name, size in zip(by[1:], sizes[1:]):
            keys = keys * size + _as_np(table.codes(name)).astype(np.int64, copy=False)
    else:
        return NotImplemented
    if not keys.size:
        return array("q"), []
    uniq, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    gids = array("q")
    gids.frombytes(np.ascontiguousarray(rank[inverse], dtype=np.int64).tobytes())
    return gids, [int(key) for key in uniq[order]]


# ---------------------------------------------------------------------------------
# Aggregation kernels
# ---------------------------------------------------------------------------------


def group_sums(index, columns: Sequence, mask: Optional[Sequence[int]]):
    group_keys = index.group_keys
    count = len(group_keys)
    if not count:
        return {}
    gids = index.gids_numpy()
    np_columns: List[np.ndarray] = []
    for column in columns:
        view = _as_np(column)
        if view is None:
            return NotImplemented
        np_columns.append(view)
    selector = None
    if mask is not None:
        selector = _mask_selector(mask, len(gids))
        if selector is None:
            return NotImplemented
        gids = gids[selector]
    rows = len(gids)
    sums: List[Sequence] = []
    for column in np_columns:
        values = column[selector] if selector is not None else column
        if values.dtype == np.float64:
            sums.append(np.bincount(gids, weights=values, minlength=count).tolist())
        else:
            if not _int_bound_ok(values, rows):
                return NotImplemented
            accumulator = np.zeros(count, dtype=np.int64)
            np.add.at(accumulator, gids, values.astype(np.int64, copy=False))
            sums.append(accumulator.tolist())
    if selector is None:
        return {key: [column[gid] for column in sums] for gid, key in enumerate(group_keys)}
    order = _first_appearance_order(gids)
    return {
        group_keys[gid]: [column[gid] for column in sums]
        for gid in order.tolist()
    }


def _packed_pairs(index, members: Sequence, mask: Optional[Sequence[int]]):
    """(masked gids, packed member*count+gid pairs) or NotImplemented."""
    count = len(index.group_keys)
    member_view = _int_member_view(members)
    if member_view is None:
        return NotImplemented
    gids = index.gids_numpy()
    selector = None
    if mask is not None:
        selector = _mask_selector(mask, len(gids))
        if selector is None:
            return NotImplemented
        gids = gids[selector]
        member_view = member_view[selector]
    if member_view.size and not _int_bound_ok(member_view, count + 1):
        return NotImplemented
    return gids, member_view * count + gids


def group_distinct_count(index, members: Sequence, mask: Optional[Sequence[int]]):
    group_keys = index.group_keys
    count = len(group_keys)
    if not count:
        return {}
    packed = _packed_pairs(index, members, mask)
    if packed is NotImplemented:
        return NotImplemented
    gids, pairs = packed
    if not pairs.size:
        return {}
    # Sort-free when the (member range x group count) span is modest: mark
    # packed pairs in a bitset laid out as member rows x group columns, then
    # a column sum counts distinct members per group -- O(rows + span) versus
    # the O(rows log rows) sort inside np.unique, which dominates when most
    # pairs are distinct.  ``base`` aligns the bitset to a gid-0 boundary so
    # column j holds exactly group j (works for negative members too).
    base = (int(pairs.min()) // count) * count
    span_rows = (int(pairs.max()) - base) // count + 1
    if span_rows * count <= _BITSET_SPAN_LIMIT:
        seen = np.zeros(span_rows * count, dtype=bool)
        seen[pairs - base] = True
        counts = seen.reshape(span_rows, count).sum(axis=0, dtype=np.int64)
    else:
        uniq = np.unique(pairs)
        counts = np.bincount(uniq % count, minlength=count)
    if mask is None:
        # Unmasked, every group id occurs, so the reference first-appearance
        # order is the index order 0..count-1 -- skip the recovery sort.
        return {key: int(counts[gid]) for gid, key in enumerate(group_keys)}
    order = _first_appearance_order(gids)
    return {group_keys[gid]: int(counts[gid]) for gid in order.tolist()}


def group_distinct(
    index,
    members: Sequence,
    pool: Optional[List[object]],
    mask: Optional[Sequence[int]],
):
    group_keys = index.group_keys
    count = len(group_keys)
    if not count:
        return {}
    packed = _packed_pairs(index, members, mask)
    if packed is NotImplemented:
        return NotImplemented
    gids, pairs = packed
    uniq = np.unique(pairs)
    sets: Dict[object, Set[object]] = {}
    pair_gids = (uniq % count).tolist()
    pair_members = (uniq // count).tolist()
    if mask is None:
        for key in group_keys:
            sets[key] = set()
    else:
        for gid in _first_appearance_order(gids).tolist():
            sets[group_keys[gid]] = set()
    if pool is None:
        for gid, member in zip(pair_gids, pair_members):
            sets[group_keys[gid]].add(member)
    else:
        for gid, member in zip(pair_gids, pair_members):
            sets[group_keys[gid]].add(pool[member])
    return sets


def total(column: Sequence):
    values = _as_np(column)
    if values is None:
        return NotImplemented
    if not values.size:
        return 0
    if values.dtype == np.float64:
        # cumsum accumulates strictly sequentially, matching python sum().
        return float(np.cumsum(values)[-1])
    if not _int_bound_ok(values, len(values)):
        return NotImplemented
    return int(np.sum(values, dtype=np.int64))


def distinct_codes(codes: Sequence):
    view = _as_np(codes)
    if view is None:
        return NotImplemented
    return np.unique(view).tolist()


def distinct_values(column: Sequence):
    view = _int_member_view(column)
    if view is None:
        return NotImplemented  # float columns: NaN set semantics differ
    return set(np.unique(view).tolist())
