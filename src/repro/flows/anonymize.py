"""Provider anonymization for the ISP traffic analyses.

To comply with the data-sharing agreement, the paper anonymizes all IoT backend
provider names when discussing ISP traffic (Section 3.7): the top-4 providers by
estimated revenue become ``T1..T4``, the providers relying on public clouds become
``D1..D6``, and the remaining providers become ``O1..O6``.  Subscriber addresses
are additionally anonymized by BGP prefix before any analysis, which the flow
records already carry (``subscriber_prefix``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.providers import (
    GROUP_CLOUD,
    GROUP_OTHER,
    GROUP_TOP4,
    PROVIDERS,
    ProviderSpec,
)


@dataclass
class AnonymizationMap:
    """Bidirectional mapping between provider keys and anonymized labels."""

    label_by_key: Dict[str, str] = field(default_factory=dict)
    key_by_label: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, providers: Sequence[ProviderSpec] = PROVIDERS) -> "AnonymizationMap":
        """Build the mapping used throughout Section 5.

        Top-4 providers are labelled ``T1..T4`` in revenue order; public-cloud
        dependent providers ``D1..Dn`` and the remaining providers ``O1..On`` in
        alphabetical key order.  The concrete assignment within each group carries
        no meaning (as in the paper, which never reveals it).
        """
        mapping = cls()
        top4 = sorted((s for s in providers if s.group == GROUP_TOP4), key=lambda s: s.revenue_rank)
        cloud = sorted((s for s in providers if s.group == GROUP_CLOUD), key=lambda s: s.key)
        other = sorted((s for s in providers if s.group == GROUP_OTHER), key=lambda s: s.key)
        for index, spec in enumerate(top4, start=1):
            mapping._assign(spec.key, f"T{index}")
        for index, spec in enumerate(cloud, start=1):
            mapping._assign(spec.key, f"D{index}")
        for index, spec in enumerate(other, start=1):
            mapping._assign(spec.key, f"O{index}")
        return mapping

    def _assign(self, key: str, label: str) -> None:
        self.label_by_key[key] = label
        self.key_by_label[label] = key

    def label(self, provider_key: str) -> str:
        """Return the anonymized label for a provider key."""
        try:
            return self.label_by_key[provider_key]
        except KeyError as exc:
            raise KeyError(f"provider {provider_key!r} has no anonymized label") from exc

    def provider(self, label: str) -> str:
        """Return the provider key behind an anonymized label."""
        try:
            return self.key_by_label[label]
        except KeyError as exc:
            raise KeyError(f"unknown anonymized label {label!r}") from exc

    def labels(self) -> List[str]:
        """Return all labels, T group first, then D, then O, each in numeric order."""
        def sort_key(label: str):
            return ({"T": 0, "D": 1, "O": 2}[label[0]], int(label[1:]))

        return sorted(self.key_by_label, key=sort_key)

    def group_labels(self, group: str) -> List[str]:
        """Return the labels of one group (``top4``, ``cloud``, ``other``)."""
        prefix = {GROUP_TOP4: "T", GROUP_CLOUD: "D", GROUP_OTHER: "O"}[group]
        return [label for label in self.labels() if label.startswith(prefix)]

    def __len__(self) -> int:
        return len(self.label_by_key)
