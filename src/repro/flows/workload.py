"""Workload generation: hourly IoT flows between subscriber lines and backends.

For every hour of a study period, every IoT device behind a subscriber line is
active with a probability given by its application's diurnal profile; active
devices exchange traffic with one of their provider's backend servers.  Server
selection prefers servers on the device's continent (Europe) with a per-provider
probability, mirroring how providers map European clients to nearby regions — and,
for providers using global load balancing, spreads devices over the whole fleet.

Outages (Section 6.1) are injected here: flows served by servers in an affected
cloud region during the outage window are scaled down, and a small fraction of the
affected devices disappears from the data entirely.

Two generation paths produce bit-identical flows:

* the **record path** (:meth:`WorkloadGenerator.generate_period`) builds one
  :class:`~repro.flows.netflow.FlowRecord` per flow and is kept as the readable
  per-record reference implementation, and
* the **columnar path** (:meth:`WorkloadGenerator.generate_period_table`)
  appends hourly batches straight into dictionary-encoded
  :class:`~repro.flows.flowtable.FlowTable` columns.  All per-device
  invariants — candidate server subsets (which cost several SHA-256 hashes to
  resolve), per-model hourly activity probabilities, cumulative port weights,
  volume multipliers, dictionary codes for every categorical value — are
  batched once per period instead of recomputed per device-hour, so the
  hourly hot loop touches only the RNG and plain ints/floats.

Both paths consume the per-hour stream (``workload:<hour-iso>``) in exactly
the same order — one activity roll per device, then server pick, outage roll,
lognormal volume, and port roll for the devices that emit a flow — which is
what keeps the two paths (and the seed's historical output) bit-identical
under a fixed seed.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from datetime import date, datetime, time
from itertools import repeat
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.providers import PROVIDERS, ProviderSpec
from repro.flows.devices import DeviceModel
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import DEFAULT_PACKET_SIZE, FlowRecord, make_flow
from repro.flows.scanners import append_scanner_flows, generate_scanner_flows
from repro.flows.subscribers import DeviceInstance, SubscriberLine, SubscriberPopulation
from repro.netmodel.geo import CONTINENT_EUROPE, CONTINENT_NORTH_AMERICA
from repro.netmodel.topology import ProviderDeployment
from repro.obs.trace import span
from repro.outage.injector import OutageSchedule
from repro.simulation.clock import StudyPeriod
from repro.simulation.rng import RngRegistry, stable_hash


@dataclass(frozen=True)
class _ServerChoice:
    """A pre-resolved server option for device flows."""

    ip: str
    continent: str
    region_code: str
    cloud_host: Optional[str]


@dataclass(frozen=True)
class _DevicePlan:
    """Per-device invariants precomputed once per generator (RNG-free)."""

    line_id: int
    prefix: str
    provider_key: str
    probabilities: Tuple[float, ...]
    candidates: Tuple[_ServerChoice, ...]
    versions: Tuple[int, ...]
    per_hour_down: float
    per_hour_up: float
    multiplier: float
    port_cumulative: Tuple[float, ...]
    port_pairs: Tuple[Tuple[str, int], ...]


class WorkloadGenerator:
    """Generates hourly flow records for a subscriber population and deployments."""

    def __init__(
        self,
        population: SubscriberPopulation,
        deployments: Mapping[str, ProviderDeployment],
        rng: RngRegistry,
        outage_schedule: Optional[OutageSchedule] = None,
        providers: Sequence[ProviderSpec] = PROVIDERS,
        servers_per_device: int = 2,
        volume_sigma: float = 0.75,
    ) -> None:
        self.population = population
        self.deployments = dict(deployments)
        self.rng = rng
        self.outage_schedule = outage_schedule or OutageSchedule()
        self.providers = {spec.key: spec for spec in providers}
        self.servers_per_device = max(1, servers_per_device)
        self.volume_sigma = volume_sigma
        self._volume_correction = math.exp(-(volume_sigma**2) / 2.0)
        self._choices = self._index_servers()
        self._model_cache: Dict[
            DeviceModel, Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[Tuple[str, int], ...]]
        ] = {}
        self._plans: Optional[List[_DevicePlan]] = None

    # -- server indexing ---------------------------------------------------------

    def _index_servers(self) -> Dict[str, Dict[int, Dict[str, List[_ServerChoice]]]]:
        """Index provider servers by ip version and continent."""
        index: Dict[str, Dict[int, Dict[str, List[_ServerChoice]]]] = {}
        for provider_key, deployment in self.deployments.items():
            by_version: Dict[int, Dict[str, List[_ServerChoice]]] = {4: {}, 6: {}}
            for server in deployment.servers:
                choice = _ServerChoice(
                    ip=server.ip,
                    continent=server.location.continent,
                    region_code=server.location.region_code,
                    cloud_host=server.cloud_host,
                )
                by_version[server.ip_version].setdefault(choice.continent, []).append(choice)
            index[provider_key] = by_version
        return index

    def server_catalog(self, ip_version: int = 4) -> List[Tuple[str, str, str, str]]:
        """Return (provider, ip, continent, region) for every server of a family."""
        catalog: List[Tuple[str, str, str, str]] = []
        for provider_key, by_version in sorted(self._choices.items()):
            for continent in sorted(by_version.get(ip_version, {})):
                for choice in by_version[ip_version][continent]:
                    catalog.append((provider_key, choice.ip, continent, choice.region_code))
        return catalog

    def _candidate_servers(
        self, device: DeviceInstance, ip_version: int
    ) -> List[_ServerChoice]:
        """Return the per-device server subset (deterministic in the device id).

        Devices are *provisioned* against a region: with probability ``eu_share`` a
        device is assigned to the provider's European servers and otherwise to a
        remote region, and all its flows go there.  This stickiness is what makes a
        large share of subscriber lines communicate exclusively with servers on one
        continent (Section 5.7).  Providers with global load balancing instead
        spread devices over the whole fleet.
        """
        by_version = self._choices.get(device.provider_key, {})
        pools = by_version.get(ip_version) or by_version.get(4) or {}
        if not pools:
            return []
        model = device.model
        all_choices = [choice for choices in pools.values() for choice in choices]
        if model.global_server_selection:
            # Globally load-balanced providers spread European devices across their
            # whole European and North-American fleet, which is why almost all of
            # their backend addresses are visible from the ISP (the paper's T2).
            spread_pool = [
                c
                for c in all_choices
                if c.continent in (CONTINENT_EUROPE, CONTINENT_NORTH_AMERICA)
            ] or all_choices
            return self._hash_subset(device.device_id, spread_pool, self.servers_per_device * 4)
        eu_pool = pools.get(CONTINENT_EUROPE, [])
        remote_pool = [c for c in all_choices if c.continent != CONTINENT_EUROPE]
        assigned_to_eu = (
            bool(eu_pool)
            and (
                not remote_pool
                or stable_hash(device.device_id + ":region", 1000) < int(model.eu_share * 1000)
            )
        )
        if assigned_to_eu:
            pool = eu_pool
        else:
            # Remote-assigned European devices are provisioned against the provider's
            # main remote region (typically a large North-American region), not spread
            # over the whole remote fleet: only a handful of remote entry points are
            # therefore ever visible from the ISP (Section 5.2).
            na_pool = [c for c in remote_pool if c.continent == CONTINENT_NORTH_AMERICA]
            entry_pool = na_pool or remote_pool or eu_pool
            entry_count = max(self.servers_per_device, len(entry_pool) // 8)
            pool = self._hash_subset(
                device.provider_key + ":remote-entry", entry_pool, entry_count
            )
        if not pool:
            pool = all_choices
        return self._hash_subset(device.device_id, pool, self.servers_per_device)

    @staticmethod
    def _hash_subset(seed: str, pool: Sequence[_ServerChoice], size: int) -> List[_ServerChoice]:
        """Pick a deterministic subset of a pool based on a string seed."""
        if len(pool) <= size:
            return list(pool)
        start = stable_hash(seed, len(pool))
        step = 1 + stable_hash(seed + ":step", max(1, len(pool) - 1))
        return [pool[(start + i * step) % len(pool)] for i in range(size)]

    # -- flow generation (record path) ---------------------------------------------

    def generate_hour(self, when: datetime) -> List[FlowRecord]:
        """Generate the IoT flows of a single hour (scanner traffic excluded)."""
        stream = self.rng.fresh_stream(f"workload:{when.isoformat()}")
        flows: List[FlowRecord] = []
        hour = when.hour
        for line in self.population.lines:
            for device in line.devices:
                probability = device.model.profile.activity_probability(hour)
                if stream.random() >= probability:
                    continue
                flow = self._device_flow(line, device, when, stream)
                if flow is not None:
                    flows.append(flow)
        return flows

    def generate_day(self, day: date, include_scanners: bool = True) -> List[FlowRecord]:
        """Generate all flows (IoT plus scanner traffic) for one day."""
        flows: List[FlowRecord] = []
        for hour in range(24):
            flows.extend(self.generate_hour(datetime.combine(day, time(hour=hour))))
        if include_scanners:
            flows.extend(
                generate_scanner_flows(
                    self.population.scanner_lines(),
                    self.server_catalog(ip_version=4),
                    day,
                    self.rng,
                )
            )
        return flows

    def generate_period(self, period: StudyPeriod, include_scanners: bool = True) -> List[FlowRecord]:
        """Generate all flows of a study period."""
        flows: List[FlowRecord] = []
        for day in period.days():
            flows.extend(self.generate_day(day, include_scanners=include_scanners))
        return flows

    # -- flow generation (columnar path) -------------------------------------------

    def generate_period_table(
        self,
        period: StudyPeriod,
        include_scanners: bool = True,
        workers: Optional[int] = None,
    ) -> FlowTable:
        """Columnar twin of :meth:`generate_period`: same flows, same order.

        Flows are appended hourly-batch-wise straight into ``FlowTable``
        columns; no :class:`FlowRecord` objects are created.  Under a fixed
        seed the result is bit-identical to
        ``FlowTable.from_records(self.generate_period(period))``.

        With ``workers`` > 1 the hours are generated by a multiprocess pool
        (see :mod:`repro.flows.parallel`): every hour draws from its own fresh
        ``workload:<hour-iso>`` stream, so hours are independent and the
        parallel result is byte-identical to the serial one — only wall-clock
        changes.  The serial path is used when the pool cannot help (one
        worker, a single hour) or cannot exist (already inside a daemonic
        pool worker).
        """
        if workers is not None and workers > 1:
            from repro.flows.parallel import generate_period_table_parallel, parallelism_usable

            if parallelism_usable() and period.n_days * 24 > 1:
                with span("gen.period", start=period.start.isoformat(), workers=workers):
                    return generate_period_table_parallel(
                        self, period, include_scanners, workers
                    )
        with span("gen.period", start=period.start.isoformat(), workers=1):
            table = FlowTable()
            rows, outage_keys = self._encoded_plans(table)
            scanner_lines = self.population.scanner_lines() if include_scanners else []
            catalog = self.server_catalog(ip_version=4) if include_scanners else []
            for day in period.days():
                for hour in range(24):
                    when = datetime.combine(day, time(hour=hour))
                    with span("gen.hour", hour=when.isoformat()):
                        self._append_hour_columns(table, rows, outage_keys, when)
                if include_scanners:
                    with span("gen.scanners", day=day.isoformat()):
                        append_scanner_flows(table, scanner_lines, catalog, day, self.rng)
        return table

    def _model_tables(
        self, model: DeviceModel
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[Tuple[str, int], ...]]:
        """Per-model lookup tables: hourly probabilities, port cumulative weights.

        Keyed by the (frozen, hashable) model itself, so two devices of one
        provider carrying distinct models never share tables.
        """
        cached = self._model_cache.get(model)
        if cached is None:
            probabilities = tuple(
                model.profile.activity_probability(hour) for hour in range(24)
            )
            cumulative: List[float] = []
            total = 0.0
            for _pair, weight in model.port_weights:
                total += weight
                cumulative.append(total)
            pairs = tuple(pair for pair, _weight in model.port_weights)
            cached = (probabilities, tuple(cumulative), pairs)
            self._model_cache[model] = cached
        return cached

    def _device_plans(self) -> List[_DevicePlan]:
        """Flatten the population into per-device plans (population order)."""
        if self._plans is None:
            plans: List[_DevicePlan] = []
            for line in self.population.lines:
                for device in line.devices:
                    model = device.model
                    probabilities, port_cumulative, port_pairs = self._model_tables(model)
                    candidates = tuple(self._candidate_servers(device, line.ip_version))
                    versions = tuple(
                        6 if (line.ip_version == 6 and ":" in choice.ip) else 4
                        for choice in candidates
                    )
                    hours = model.profile.active_hours_per_day
                    plans.append(
                        _DevicePlan(
                            line_id=line.line_id,
                            prefix=line.isp_prefix,
                            provider_key=device.provider_key,
                            probabilities=probabilities,
                            candidates=candidates,
                            versions=versions,
                            per_hour_down=model.mean_daily_down_bytes / hours,
                            per_hour_up=model.mean_daily_up_bytes / hours,
                            multiplier=self._device_multiplier(device),
                            port_cumulative=port_cumulative,
                            port_pairs=port_pairs,
                        )
                    )
            self._plans = plans
        return self._plans

    def _encoded_plans(
        self, table: FlowTable
    ) -> Tuple[List[tuple], List[Tuple[Optional[str], str]]]:
        """Encode the device plans against one table's dictionary pools.

        Returns per-device tuples holding pre-encoded categorical codes plus an
        index into the distinct (cloud_host, region) outage-factor keys, so the
        hourly hot loop appends plain integers and floats only.
        """
        encode = table.encode_value
        outage_index: Dict[Tuple[Optional[str], str], int] = {}
        outage_keys: List[Tuple[Optional[str], str]] = []
        rows: List[tuple] = []
        for plan in self._device_plans():
            encoded_candidates = []
            for choice, version in zip(plan.candidates, plan.versions):
                key = (choice.cloud_host, choice.region_code)
                key_index = outage_index.get(key)
                if key_index is None:
                    key_index = outage_index[key] = len(outage_keys)
                    outage_keys.append(key)
                encoded_candidates.append(
                    (
                        encode("server_ip", choice.ip),
                        encode("server_continent", choice.continent),
                        encode("server_region", choice.region_code),
                        version,
                        key_index,
                    )
                )
            rows.append(
                (
                    plan.probabilities,
                    plan.line_id,
                    encode("subscriber_prefix", plan.prefix),
                    encode("provider_key", plan.provider_key),
                    tuple(encoded_candidates),
                    plan.per_hour_down,
                    plan.per_hour_up,
                    plan.multiplier,
                    plan.port_cumulative,
                    tuple(
                        (encode("transport", transport), port)
                        for transport, port in plan.port_pairs
                    ),
                )
            )
        return rows, outage_keys

    def _append_hour_columns(
        self,
        table: FlowTable,
        rows: Sequence[tuple],
        outage_keys: Sequence[Tuple[Optional[str], str]],
        when: datetime,
    ) -> None:
        """Generate one hour of IoT flows straight into the table columns.

        Consumes the hour's stream in exactly the record-path order — one
        activity roll per device, then server pick / outage roll / volume /
        port roll for the devices that emit a flow — so the table rows are
        bit-identical to :meth:`generate_hour` under a fixed seed.
        """
        stream = self.rng.fresh_stream(f"workload:{when.isoformat()}")
        rand = stream.random
        randrange = stream.randrange
        lognormvariate = stream.lognormvariate
        hour = when.hour
        # One schedule lookup per distinct (cloud_host, region) key per hour
        # instead of two per flow; outside outage windows the lookup is skipped
        # entirely (factors are 1.0 and no outage roll is drawn).
        schedule = self.outage_schedule
        has_outage = any(event.active_at(when) for event in schedule.events())
        if has_outage:
            traffic_factors = [
                schedule.traffic_factor(host, region, when) for host, region in outage_keys
            ]
            device_factors = [
                schedule.device_factor(host, region, when) for host, region in outage_keys
            ]
        else:
            traffic_factors = device_factors = None
        timestamp_code = table.encode_value("timestamp", when)
        prefix_codes: List[int] = []
        provider_codes: List[int] = []
        ip_codes: List[int] = []
        continent_codes: List[int] = []
        region_codes: List[int] = []
        transport_codes: List[int] = []
        subscriber_ids: List[int] = []
        ip_versions: List[int] = []
        ports: List[int] = []
        bytes_down_column: List[float] = []
        bytes_up_column: List[float] = []
        packets_down_column: List[int] = []
        packets_up_column: List[int] = []
        correction = self._volume_correction
        sigma = self.volume_sigma
        ceil = math.ceil
        count = 0
        for row in rows:
            if rand() >= row[0][hour]:
                continue
            candidates = row[4]
            if not candidates:
                continue
            candidate = candidates[randrange(len(candidates))]
            if device_factors is None:
                traffic_factor = 1.0
            else:
                device_factor = device_factors[candidate[4]]
                if device_factor < 1.0 and rand() > device_factor:
                    continue
                traffic_factor = traffic_factors[candidate[4]]
            volume_factor = lognormvariate(0.0, sigma) * correction
            volume_factor *= row[7]
            bytes_down = row[5] * volume_factor * traffic_factor
            bytes_up = row[6] * volume_factor * traffic_factor
            port_cumulative = row[8]
            index = bisect_right(port_cumulative, rand() * port_cumulative[-1])
            if index >= len(port_cumulative):
                index = len(port_cumulative) - 1
            transport_code, port = row[9][index]
            prefix_codes.append(row[2])
            provider_codes.append(row[3])
            ip_codes.append(candidate[0])
            continent_codes.append(candidate[1])
            region_codes.append(candidate[2])
            transport_codes.append(transport_code)
            subscriber_ids.append(row[1])
            ip_versions.append(candidate[3])
            ports.append(port)
            bytes_down_column.append(bytes_down)
            bytes_up_column.append(bytes_up)
            packets_down_column.append(
                max(1, int(ceil(bytes_down / DEFAULT_PACKET_SIZE))) if bytes_down > 0 else 0
            )
            packets_up_column.append(
                max(1, int(ceil(bytes_up / DEFAULT_PACKET_SIZE))) if bytes_up > 0 else 0
            )
            count += 1
        table.append_columns(
            count,
            codes={
                "timestamp": repeat(timestamp_code, count),
                "subscriber_prefix": prefix_codes,
                "provider_key": provider_codes,
                "server_ip": ip_codes,
                "server_continent": continent_codes,
                "server_region": region_codes,
                "transport": transport_codes,
            },
            numeric={
                "subscriber_id": subscriber_ids,
                "ip_version": ip_versions,
                "port": ports,
                "bytes_down": bytes_down_column,
                "bytes_up": bytes_up_column,
                "packets_down": packets_down_column,
                "packets_up": packets_up_column,
                "sampled": repeat(0, count),
            },
        )

    # -- helpers -------------------------------------------------------------------

    def _device_flow(
        self,
        line: SubscriberLine,
        device: DeviceInstance,
        when: datetime,
        stream: random.Random,
    ) -> Optional[FlowRecord]:
        model = device.model
        candidates = self._candidate_servers(device, line.ip_version)
        if not candidates:
            return None
        choice = self._select_server(device, candidates, stream)
        traffic_factor = self.outage_schedule.traffic_factor(
            choice.cloud_host, choice.region_code, when
        )
        device_factor = self.outage_schedule.device_factor(
            choice.cloud_host, choice.region_code, when
        )
        if device_factor < 1.0 and stream.random() > device_factor:
            return None
        volume_factor = stream.lognormvariate(0.0, self.volume_sigma) * self._volume_correction
        volume_factor *= self._device_multiplier(device)
        per_hour_down = model.mean_daily_down_bytes / model.profile.active_hours_per_day
        per_hour_up = model.mean_daily_up_bytes / model.profile.active_hours_per_day
        bytes_down = per_hour_down * volume_factor * traffic_factor
        bytes_up = per_hour_up * volume_factor * traffic_factor
        transport, port = model.pick_port(stream.random())
        version = 6 if (line.ip_version == 6 and ":" in choice.ip) else 4
        return make_flow(
            timestamp=when,
            subscriber_id=line.line_id,
            subscriber_prefix=line.isp_prefix,
            ip_version=version,
            provider_key=device.provider_key,
            server_ip=choice.ip,
            server_continent=choice.continent,
            server_region=choice.region_code,
            transport=transport,
            port=port,
            bytes_down=bytes_down,
            bytes_up=bytes_up,
        )

    @staticmethod
    def _select_server(
        device: DeviceInstance, candidates: Sequence[_ServerChoice], stream: random.Random
    ) -> _ServerChoice:
        """Pick one of the device's provisioned servers for this flow."""
        return candidates[stream.randrange(len(candidates))]

    @staticmethod
    def _device_multiplier(device: DeviceInstance) -> float:
        """Per-device volume multiplier giving bulk-ingestion providers a heavy tail."""
        if device.model.profile.name != "amqp_bulk":
            return 1.0
        bucket = stable_hash(device.device_id + ":volume", 100)
        if bucket < 20:
            return 4.0 + (bucket % 9)
        return 1.0
