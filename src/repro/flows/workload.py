"""Workload generation: hourly IoT flows between subscriber lines and backends.

For every hour of a study period, every IoT device behind a subscriber line is
active with a probability given by its application's diurnal profile; active
devices exchange traffic with one of their provider's backend servers.  Server
selection prefers servers on the device's continent (Europe) with a per-provider
probability, mirroring how providers map European clients to nearby regions — and,
for providers using global load balancing, spreads devices over the whole fleet.

Outages (Section 6.1) are injected here: flows served by servers in an affected
cloud region during the outage window are scaled down, and a small fraction of the
affected devices disappears from the data entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import date, datetime, time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.providers import PROVIDERS, ProviderSpec
from repro.flows.devices import DeviceModel
from repro.flows.netflow import FlowRecord, make_flow
from repro.flows.scanners import generate_scanner_flows
from repro.flows.subscribers import DeviceInstance, SubscriberLine, SubscriberPopulation
from repro.netmodel.geo import CONTINENT_ASIA, CONTINENT_EUROPE, CONTINENT_NORTH_AMERICA
from repro.netmodel.topology import BackendServer, ProviderDeployment
from repro.outage.injector import OutageSchedule
from repro.simulation.clock import StudyPeriod
from repro.simulation.rng import RngRegistry, stable_hash


@dataclass(frozen=True)
class _ServerChoice:
    """A pre-resolved server option for device flows."""

    ip: str
    continent: str
    region_code: str
    cloud_host: Optional[str]


class WorkloadGenerator:
    """Generates hourly flow records for a subscriber population and deployments."""

    def __init__(
        self,
        population: SubscriberPopulation,
        deployments: Mapping[str, ProviderDeployment],
        rng: RngRegistry,
        outage_schedule: Optional[OutageSchedule] = None,
        providers: Sequence[ProviderSpec] = PROVIDERS,
        servers_per_device: int = 2,
        volume_sigma: float = 0.75,
    ) -> None:
        self.population = population
        self.deployments = dict(deployments)
        self.rng = rng
        self.outage_schedule = outage_schedule or OutageSchedule()
        self.providers = {spec.key: spec for spec in providers}
        self.servers_per_device = max(1, servers_per_device)
        self.volume_sigma = volume_sigma
        self._volume_correction = math.exp(-(volume_sigma**2) / 2.0)
        self._choices = self._index_servers()

    # -- server indexing ---------------------------------------------------------

    def _index_servers(self) -> Dict[str, Dict[int, Dict[str, List[_ServerChoice]]]]:
        """Index provider servers by ip version and continent."""
        index: Dict[str, Dict[int, Dict[str, List[_ServerChoice]]]] = {}
        for provider_key, deployment in self.deployments.items():
            by_version: Dict[int, Dict[str, List[_ServerChoice]]] = {4: {}, 6: {}}
            for server in deployment.servers:
                choice = _ServerChoice(
                    ip=server.ip,
                    continent=server.location.continent,
                    region_code=server.location.region_code,
                    cloud_host=server.cloud_host,
                )
                by_version[server.ip_version].setdefault(choice.continent, []).append(choice)
            index[provider_key] = by_version
        return index

    def server_catalog(self, ip_version: int = 4) -> List[Tuple[str, str, str, str]]:
        """Return (provider, ip, continent, region) for every server of a family."""
        catalog: List[Tuple[str, str, str, str]] = []
        for provider_key, by_version in sorted(self._choices.items()):
            for continent in sorted(by_version.get(ip_version, {})):
                for choice in by_version[ip_version][continent]:
                    catalog.append((provider_key, choice.ip, continent, choice.region_code))
        return catalog

    def _candidate_servers(
        self, device: DeviceInstance, ip_version: int
    ) -> List[_ServerChoice]:
        """Return the per-device server subset (deterministic in the device id).

        Devices are *provisioned* against a region: with probability ``eu_share`` a
        device is assigned to the provider's European servers and otherwise to a
        remote region, and all its flows go there.  This stickiness is what makes a
        large share of subscriber lines communicate exclusively with servers on one
        continent (Section 5.7).  Providers with global load balancing instead
        spread devices over the whole fleet.
        """
        by_version = self._choices.get(device.provider_key, {})
        pools = by_version.get(ip_version) or by_version.get(4) or {}
        if not pools:
            return []
        model = device.model
        all_choices = [choice for choices in pools.values() for choice in choices]
        if model.global_server_selection:
            # Globally load-balanced providers spread European devices across their
            # whole European and North-American fleet, which is why almost all of
            # their backend addresses are visible from the ISP (the paper's T2).
            spread_pool = [
                c
                for c in all_choices
                if c.continent in (CONTINENT_EUROPE, CONTINENT_NORTH_AMERICA)
            ] or all_choices
            return self._hash_subset(device.device_id, spread_pool, self.servers_per_device * 4)
        eu_pool = pools.get(CONTINENT_EUROPE, [])
        remote_pool = [c for c in all_choices if c.continent != CONTINENT_EUROPE]
        assigned_to_eu = (
            bool(eu_pool)
            and (
                not remote_pool
                or stable_hash(device.device_id + ":region", 1000) < int(model.eu_share * 1000)
            )
        )
        if assigned_to_eu:
            pool = eu_pool
        else:
            # Remote-assigned European devices are provisioned against the provider's
            # main remote region (typically a large North-American region), not spread
            # over the whole remote fleet: only a handful of remote entry points are
            # therefore ever visible from the ISP (Section 5.2).
            na_pool = [c for c in remote_pool if c.continent == CONTINENT_NORTH_AMERICA]
            entry_pool = na_pool or remote_pool or eu_pool
            entry_count = max(self.servers_per_device, len(entry_pool) // 8)
            pool = self._hash_subset(
                device.provider_key + ":remote-entry", entry_pool, entry_count
            )
        if not pool:
            pool = all_choices
        return self._hash_subset(device.device_id, pool, self.servers_per_device)

    @staticmethod
    def _hash_subset(seed: str, pool: Sequence[_ServerChoice], size: int) -> List[_ServerChoice]:
        """Pick a deterministic subset of a pool based on a string seed."""
        if len(pool) <= size:
            return list(pool)
        start = stable_hash(seed, len(pool))
        step = 1 + stable_hash(seed + ":step", max(1, len(pool) - 1))
        return [pool[(start + i * step) % len(pool)] for i in range(size)]

    # -- flow generation ----------------------------------------------------------

    def generate_hour(self, when: datetime) -> List[FlowRecord]:
        """Generate the IoT flows of a single hour (scanner traffic excluded)."""
        stream = self.rng.fresh_stream(f"workload:{when.isoformat()}")
        flows: List[FlowRecord] = []
        hour = when.hour
        for line in self.population.lines:
            if not line.devices:
                continue
            for device in line.devices:
                model = device.model
                probability = model.profile.activity_probability(hour)
                if stream.random() >= probability:
                    continue
                flow = self._device_flow(line, device, when, stream)
                if flow is not None:
                    flows.append(flow)
        return flows

    def generate_day(self, day: date, include_scanners: bool = True) -> List[FlowRecord]:
        """Generate all flows (IoT plus scanner traffic) for one day."""
        flows: List[FlowRecord] = []
        for hour in range(24):
            flows.extend(self.generate_hour(datetime.combine(day, time(hour=hour))))
        if include_scanners:
            flows.extend(
                generate_scanner_flows(
                    self.population.scanner_lines(),
                    self.server_catalog(ip_version=4),
                    day,
                    self.rng,
                )
            )
        return flows

    def generate_period(self, period: StudyPeriod, include_scanners: bool = True) -> List[FlowRecord]:
        """Generate all flows of a study period."""
        flows: List[FlowRecord] = []
        for day in period.days():
            flows.extend(self.generate_day(day, include_scanners=include_scanners))
        return flows

    # -- helpers -------------------------------------------------------------------

    def _device_flow(
        self,
        line: SubscriberLine,
        device: DeviceInstance,
        when: datetime,
        stream,
    ) -> Optional[FlowRecord]:
        model = device.model
        candidates = self._candidate_servers(device, line.ip_version)
        if not candidates:
            return None
        choice = self._select_server(device, candidates, stream)
        traffic_factor = self.outage_schedule.traffic_factor(
            choice.cloud_host, choice.region_code, when
        )
        device_factor = self.outage_schedule.device_factor(
            choice.cloud_host, choice.region_code, when
        )
        if device_factor < 1.0 and stream.random() > device_factor:
            return None
        volume_factor = stream.lognormvariate(0.0, self.volume_sigma) * self._volume_correction
        volume_factor *= self._device_multiplier(device)
        per_hour_down = model.mean_daily_down_bytes / model.profile.active_hours_per_day
        per_hour_up = model.mean_daily_up_bytes / model.profile.active_hours_per_day
        bytes_down = per_hour_down * volume_factor * traffic_factor
        bytes_up = per_hour_up * volume_factor * traffic_factor
        transport, port = model.pick_port(stream.random())
        version = 6 if (line.ip_version == 6 and ":" in choice.ip) else 4
        return make_flow(
            timestamp=when,
            subscriber_id=line.line_id,
            subscriber_prefix=line.isp_prefix,
            ip_version=version,
            provider_key=device.provider_key,
            server_ip=choice.ip,
            server_continent=choice.continent,
            server_region=choice.region_code,
            transport=transport,
            port=port,
            bytes_down=bytes_down,
            bytes_up=bytes_up,
        )

    @staticmethod
    def _select_server(
        device: DeviceInstance, candidates: Sequence[_ServerChoice], stream
    ) -> _ServerChoice:
        """Pick one of the device's provisioned servers for this flow."""
        return candidates[stream.randrange(len(candidates))]

    @staticmethod
    def _device_multiplier(device: DeviceInstance) -> float:
        """Per-device volume multiplier giving bulk-ingestion providers a heavy tail."""
        if device.model.profile.name != "amqp_bulk":
            return 1.0
        bucket = stable_hash(device.device_id + ":volume", 100)
        if bucket < 20:
            return 4.0 + (bucket % 9)
        return 1.0
