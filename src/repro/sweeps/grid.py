"""Declarative scenario grids.

A :class:`ScenarioGrid` is a base :class:`~repro.simulation.config.ScenarioConfig`
plus *axes*: an ordered mapping of config field names to the values each field
sweeps over.  Expanding the grid takes the cartesian product of the axes (the
first axis varies slowest) and applies each combination with
``config.with_overrides``, so every grid point is itself a frozen, hashable,
fully validated configuration.

Axes can also be parsed from ``field=v1,v2,...`` strings (the CLI's ``--axis``
syntax); values are converted using the config field's own type annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from itertools import product
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, get_type_hints

from repro.simulation.config import ScenarioConfig

#: Field name -> resolved annotation of ScenarioConfig (annotations are strings
#: under ``from __future__ import annotations``, so resolve them once).
_CONFIG_FIELD_TYPES = get_type_hints(ScenarioConfig)
_CONFIG_FIELD_NAMES = tuple(field.name for field in fields(ScenarioConfig))

_TRUE_WORDS = {"1", "true", "yes", "on"}
_FALSE_WORDS = {"0", "false", "no", "off"}


def _convert_axis_value(field_name: str, raw: str) -> object:
    """Convert one ``--axis`` string value using the config field's type."""
    annotation = _CONFIG_FIELD_TYPES[field_name]
    text = raw.strip()
    if annotation is bool:
        lowered = text.lower()
        if lowered in _TRUE_WORDS:
            return True
        if lowered in _FALSE_WORDS:
            return False
        raise ValueError(f"axis {field_name!r}: {raw!r} is not a boolean")
    if annotation is int:
        return int(text)
    if annotation is float:
        return float(text)
    raise ValueError(
        f"axis {field_name!r} has non-scalar type {annotation!r}; "
        "set it on the base config instead"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One grid point: a stable id, the axis values that produced it, the config."""

    scenario_id: str
    axes: Tuple[Tuple[str, object], ...]
    config: ScenarioConfig

    @property
    def axes_dict(self) -> Dict[str, object]:
        return dict(self.axes)


class ScenarioGrid:
    """Axes over :class:`ScenarioConfig` fields expanded to frozen configs."""

    def __init__(self, base: ScenarioConfig, axes: Mapping[str, Sequence[object]]) -> None:
        self.base = base
        validated: List[Tuple[str, Tuple[object, ...]]] = []
        for name, values in axes.items():
            if name not in _CONFIG_FIELD_NAMES:
                raise ValueError(
                    f"unknown scenario axis {name!r}; valid fields: "
                    f"{', '.join(_CONFIG_FIELD_NAMES)}"
                )
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            if len(set(map(repr, values))) != len(values):
                raise ValueError(f"axis {name!r} has duplicate values")
            validated.append((name, values))
        if not validated:
            raise ValueError("a scenario grid needs at least one axis")
        self.axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = tuple(validated)

    @classmethod
    def from_strings(cls, base: ScenarioConfig, axis_specs: Sequence[str]) -> "ScenarioGrid":
        """Parse ``field=v1,v2,...`` axis strings (the CLI ``--axis`` syntax)."""
        axes: Dict[str, Tuple[object, ...]] = {}
        for spec in axis_specs:
            name, separator, values_text = spec.partition("=")
            name = name.strip()
            if not separator or not name:
                raise ValueError(f"malformed axis {spec!r}; expected field=v1,v2,...")
            if name in axes:
                raise ValueError(f"axis {name!r} given more than once")
            if name not in _CONFIG_FIELD_NAMES:
                raise ValueError(
                    f"unknown scenario axis {name!r}; valid fields: "
                    f"{', '.join(_CONFIG_FIELD_NAMES)}"
                )
            values = tuple(
                _convert_axis_value(name, raw)
                for raw in values_text.split(",")
                if raw.strip()
            )
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            axes[name] = values
        return cls(base, axes)

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _values in self.axes)

    def __len__(self) -> int:
        count = 1
        for _name, values in self.axes:
            count *= len(values)
        return count

    def specs(self) -> List[ScenarioSpec]:
        """Expand the grid, first axis varying slowest."""
        return list(self)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        names = self.axis_names
        for combination in product(*(values for _name, values in self.axes)):
            axis_values = tuple(zip(names, combination))
            overrides = dict(axis_values)
            config = self.base.with_overrides(**overrides)
            scenario_id = ",".join(f"{name}={value}" for name, value in axis_values)
            yield ScenarioSpec(scenario_id=scenario_id, axes=axis_values, config=config)
