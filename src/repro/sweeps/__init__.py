"""Scenario sweeps: declarative grids of configurations run in parallel.

The paper's analyses are single-scenario snapshots; this package turns them
into campaigns:

* :mod:`repro.sweeps.grid` — :class:`ScenarioGrid` expands axes over
  :class:`~repro.simulation.config.ScenarioConfig` fields into frozen
  configurations, each with a stable scenario id.
* :mod:`repro.sweeps.metrics` — small named metric functions
  (``context -> {name: scalar}``) evaluated per scenario.
* :mod:`repro.sweeps.runner` — :class:`SweepRunner` executes the grid across
  multiprocess workers (per-scenario generation is independent and fully
  seeded, so parallel results are bit-identical to serial ones), writes a
  JSONL results ledger, and pivots cross-scenario summary tables such as
  outage impact vs. ``sampling_ratio`` × ``scale``.
"""

from repro.sweeps.grid import ScenarioGrid, ScenarioSpec
from repro.sweeps.metrics import SWEEP_METRICS, available_metrics
from repro.sweeps.runner import ScenarioOutcome, SweepResult, SweepRunner

__all__ = [
    "ScenarioGrid",
    "ScenarioSpec",
    "SWEEP_METRICS",
    "available_metrics",
    "ScenarioOutcome",
    "SweepResult",
    "SweepRunner",
]
