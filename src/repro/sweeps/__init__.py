"""Scenario sweeps: declarative grids of configurations run in parallel.

The paper's analyses are single-scenario snapshots; this package turns them
into campaigns:

* :mod:`repro.sweeps.grid` — :class:`ScenarioGrid` expands axes over
  :class:`~repro.simulation.config.ScenarioConfig` fields into frozen
  configurations, each with a stable scenario id.
* :mod:`repro.sweeps.metrics` — small named metric functions
  (``context -> {name: scalar}``) evaluated per scenario.
* :mod:`repro.sweeps.runner` — :class:`SweepRunner` executes the grid across
  crash-isolated multiprocess workers (per-scenario generation is independent
  and fully seeded, so parallel results are bit-identical to serial ones),
  appends every scenario attempt to an incremental JSONL ledger the moment it
  settles, retries failures with exponential backoff under a per-scenario
  wall-clock timeout and a consecutive-failure circuit breaker, resumes
  interrupted campaigns from their ledger (``run(grid, resume=...)``), and
  pivots cross-scenario summary tables such as outage impact vs.
  ``sampling_ratio`` × ``scale``.
"""

from repro.sweeps.grid import ScenarioGrid, ScenarioSpec
from repro.sweeps.metrics import SWEEP_METRICS, available_metrics
from repro.sweeps.runner import (
    LEDGER_SCHEMA,
    NONDETERMINISTIC_LEDGER_FIELDS,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_TIMEOUT,
    LedgerError,
    ScenarioOutcome,
    SweepResult,
    SweepRunner,
)

__all__ = [
    "ScenarioGrid",
    "ScenarioSpec",
    "SWEEP_METRICS",
    "available_metrics",
    "LEDGER_SCHEMA",
    "NONDETERMINISTIC_LEDGER_FIELDS",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_RETRIED",
    "LedgerError",
    "ScenarioOutcome",
    "SweepResult",
    "SweepRunner",
]
