"""Multiprocess sweep execution with a JSONL results ledger.

``SweepRunner`` walks a :class:`~repro.sweeps.grid.ScenarioGrid` and evaluates
the selected metrics on every grid point.  Scenarios are completely
independent — each worker builds its own world from the frozen config, and
every random draw comes from named seeded streams — so executing them in a
process pool produces bit-identical per-scenario results to a serial run;
only wall-clock changes.  Workers bypass the in-process context LRU
(``use_cache=False``) and rely on the shared on-disk
:class:`~repro.store.artifacts.ArtifactStore` instead, which both deduplicates
work across repeated sweeps and keeps worker memory flat.

Scenario-level and hour-level parallelism compose: ``gen_workers`` turns on
multiprocess per-hour flow generation *inside* each scenario (see
:mod:`repro.flows.parallel`), clamped via
:func:`~repro.flows.parallel.effective_gen_workers` so the product of the two
levels never oversubscribes the visible CPUs.  The scenario pool is a
non-daemonic :class:`~concurrent.futures.ProcessPoolExecutor` precisely so the
nested generation pools are allowed to exist; generation output is
byte-identical at every worker count, so the composition changes wall-clock
only.

The ledger is one JSON object per line (scenario id, axis values, config
digest, metrics, timing, error) so campaigns can be appended to, grepped, and
diffed; :meth:`SweepResult.pivot` aggregates ledger rows into cross-scenario
summary tables (e.g. outage impact vs. ``sampling_ratio`` × ``scale``).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.report import render_table
from repro.flows.parallel import effective_gen_workers, pool_context
from repro.simulation.config import ScenarioConfig
from repro.sweeps.grid import ScenarioGrid, ScenarioSpec
from repro.sweeps.metrics import resolve_metrics

#: Ledger schema version, recorded in every row.
LEDGER_SCHEMA = 1

#: One scenario of work shipped to a pool worker (must stay picklable).
_Payload = Tuple[
    str, Tuple[Tuple[str, object], ...], ScenarioConfig, Tuple[str, ...], Optional[str], int
]


@dataclass
class ScenarioOutcome:
    """The result of one scenario: metrics on success, an error string on failure."""

    scenario_id: str
    axes: Dict[str, object]
    config_digest: str
    metrics: Dict[str, object]
    elapsed_seconds: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute_scenario(payload: _Payload) -> ScenarioOutcome:
    """Run one scenario (module-level so multiprocessing can pickle it)."""
    from repro.experiments.context import build_context
    from repro.store.artifacts import ArtifactStore, config_digest

    scenario_id, axes, config, metric_names, store_root, gen_workers = payload
    store = ArtifactStore(store_root) if store_root is not None else None
    start = time.perf_counter()
    metrics: Dict[str, object] = {}
    error: Optional[str] = None
    try:
        metric_fns = resolve_metrics(metric_names)
        context = build_context(config, use_cache=False, store=store, gen_workers=gen_workers)
        for fn in metric_fns.values():
            metrics.update(fn(context))
    except Exception as exc:  # ledger rows must exist even for failed scenarios
        metrics = {}
        error = f"{type(exc).__name__}: {exc}"
    return ScenarioOutcome(
        scenario_id=scenario_id,
        axes=dict(axes),
        config_digest=config_digest(config),
        metrics=metrics,
        elapsed_seconds=time.perf_counter() - start,
        error=error,
    )


class SweepResult:
    """Ordered scenario outcomes plus aggregation and ledger I/O."""

    def __init__(self, outcomes: Sequence[ScenarioOutcome], axis_names: Sequence[str]) -> None:
        self.outcomes = list(outcomes)
        self.axis_names = tuple(axis_names)

    def __len__(self) -> int:
        return len(self.outcomes)

    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for outcome in self.outcomes:
            for key in outcome.metrics:
                if key not in names:
                    names.append(key)
        return names

    # -- ledger ------------------------------------------------------------------

    def ledger_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "schema": LEDGER_SCHEMA,
                "scenario_id": outcome.scenario_id,
                "axes": outcome.axes,
                "config_digest": outcome.config_digest,
                "metrics": outcome.metrics,
                "elapsed_seconds": outcome.elapsed_seconds,
                "error": outcome.error,
            }
            for outcome in self.outcomes
        ]

    def write_ledger(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per scenario (JSONL)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as stream:
            for row in self.ledger_rows():
                stream.write(json.dumps(row, sort_keys=True) + "\n")
        return path

    @classmethod
    def read_ledger(cls, path: Union[str, Path]) -> "SweepResult":
        """Rebuild a result from a JSONL ledger."""
        outcomes: List[ScenarioOutcome] = []
        axis_names: List[str] = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            row = json.loads(line)
            outcomes.append(
                ScenarioOutcome(
                    scenario_id=row["scenario_id"],
                    axes=dict(row["axes"]),
                    config_digest=row["config_digest"],
                    metrics=dict(row["metrics"]),
                    elapsed_seconds=float(row["elapsed_seconds"]),
                    error=row.get("error"),
                )
            )
            for name in outcomes[-1].axes:
                if name not in axis_names:
                    axis_names.append(name)
        return cls(outcomes, axis_names)

    # -- aggregation -------------------------------------------------------------

    def pivot(
        self,
        metric: str,
        row_axis: str,
        col_axis: Optional[str] = None,
    ) -> List[List[object]]:
        """Cross-scenario summary: ``metric`` per ``row_axis`` (× ``col_axis``).

        Returns header + rows ready for :func:`~repro.core.report.render_table`.
        Cells average over every scenario sharing the (row, col) combination,
        so extra axes collapse to their mean.
        """
        for axis in (row_axis, col_axis):
            if axis is not None and axis not in self.axis_names:
                raise ValueError(f"unknown axis {axis!r}; sweep axes: {', '.join(self.axis_names)}")
        row_values: List[object] = []
        col_values: List[object] = []
        cells: Dict[Tuple[object, object], List[float]] = {}
        for outcome in self.outcomes:
            if not outcome.ok or metric not in outcome.metrics:
                continue
            row_key = outcome.axes[row_axis]
            col_key = outcome.axes[col_axis] if col_axis is not None else metric
            if row_key not in row_values:
                row_values.append(row_key)
            if col_key not in col_values:
                col_values.append(col_key)
            cells.setdefault((row_key, col_key), []).append(float(outcome.metrics[metric]))
        header = [row_axis] + [
            f"{col_axis}={value}" if col_axis is not None else str(value)
            for value in col_values
        ]
        rows: List[List[object]] = [header]
        for row_key in row_values:
            row: List[object] = [row_key]
            for col_key in col_values:
                samples = cells.get((row_key, col_key))
                row.append(round(sum(samples) / len(samples), 6) if samples else "-")
            rows.append(row)
        return rows

    def render_pivot(self, metric: str, row_axis: str, col_axis: Optional[str] = None) -> str:
        """Render a pivot as a text table."""
        table = self.pivot(metric, row_axis, col_axis)
        title = f"{metric} vs. {row_axis}" + (f" x {col_axis}" if col_axis else "")
        return render_table(table[0], table[1:], title=title)

    def render_results(self) -> str:
        """Render the per-scenario results table."""
        metric_names = self.metric_names()
        headers = ["scenario", *metric_names, "seconds", "status"]
        rows: List[List[object]] = []
        for outcome in self.outcomes:
            row: List[object] = [outcome.scenario_id]
            for name in metric_names:
                value = outcome.metrics.get(name, "-")
                row.append(round(value, 6) if isinstance(value, float) else value)
            row.append(round(outcome.elapsed_seconds, 2))
            row.append("ok" if outcome.ok else outcome.error)
            rows.append(row)
        return render_table(headers, rows, title=f"Sweep results ({len(self.outcomes)} scenarios)")


class SweepRunner:
    """Execute a scenario grid across multiprocess workers."""

    def __init__(
        self,
        metrics: Sequence[str] = ("traffic",),
        workers: int = 1,
        store: Union[str, Path, None] = None,
        ledger_path: Union[str, Path, None] = None,
        gen_workers: int = 1,
    ) -> None:
        resolve_metrics(metrics)  # fail fast on unknown names
        self.metrics = tuple(metrics)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if gen_workers < 1:
            raise ValueError("gen_workers must be >= 1")
        self.workers = workers
        self.gen_workers = gen_workers
        self.store_root = str(store) if store is not None else None
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None

    def _payloads(self, specs: Sequence[ScenarioSpec], gen_workers: int) -> List[_Payload]:
        return [
            (spec.scenario_id, spec.axes, spec.config, self.metrics, self.store_root, gen_workers)
            for spec in specs
        ]

    def run(self, grid: ScenarioGrid) -> SweepResult:
        """Run every grid point; outcomes keep grid order regardless of workers."""
        specs = grid.specs()
        workers = min(self.workers, max(1, len(specs)))
        # Clamp hour-level parallelism against the scenario workers actually
        # used, so `workers x gen_workers` never exceeds the visible CPUs.
        gen_workers = effective_gen_workers(self.gen_workers, workers)
        payloads = self._payloads(specs, gen_workers)
        if workers <= 1:
            outcomes = [_execute_scenario(payload) for payload in payloads]
        else:
            # Executor workers are non-daemonic (unlike multiprocessing.Pool's),
            # so per-scenario generation pools may nest inside them.
            with ProcessPoolExecutor(max_workers=workers, mp_context=pool_context()) as pool:
                outcomes = list(pool.map(_execute_scenario, payloads))
        result = SweepResult(outcomes, grid.axis_names)
        if self.ledger_path is not None:
            result.write_ledger(self.ledger_path)
        return result
