"""Fault-tolerant multiprocess sweep execution with an incremental JSONL ledger.

``SweepRunner`` walks a :class:`~repro.sweeps.grid.ScenarioGrid` and evaluates
the selected metrics on every grid point.  Scenarios are completely
independent — each worker builds its own world from the frozen config, and
every random draw comes from named seeded streams — so executing them in a
process pool produces bit-identical per-scenario results to a serial run;
only wall-clock changes.  Workers bypass the in-process context LRU
(``use_cache=False``) and rely on the shared on-disk
:class:`~repro.store.artifacts.ArtifactStore` instead, which both deduplicates
work across repeated sweeps and keeps worker memory flat.

The execution core is built to survive thousand-scenario campaigns:

* **Incremental ledger.**  Every scenario attempt is appended to the JSONL
  ledger (flushed and fsynced) *the moment it settles*, so a killed driver
  loses at most the in-flight scenarios, never completed rows.  Ledger rows
  carry schema version 2: status (``ok|failed|timeout|retried``), attempt
  number, worker id, and start/end timestamps on top of the schema-1 fields.
  :meth:`SweepResult.read_ledger` tolerates a torn final line (a crash
  mid-append) and raises :class:`LedgerError` on unknown schema versions.
* **Crash-isolated scheduling.**  Scenarios are submitted individually (at
  most one per worker slot) and drained as they complete.  A worker death
  (OOM-kill, segfault) breaks the ``ProcessPoolExecutor``; the runner
  respawns it, charges a failed attempt to the scenarios that were in flight,
  and keeps going — a crash never discards completed outcomes.
* **Retry / timeout / circuit breaker.**  Failed or timed-out scenarios are
  retried up to ``retries`` times with exponential backoff; a wall-clock
  ``timeout`` is enforced *inside* the worker via ``SIGALRM`` so a hung
  scenario cannot wedge the campaign; and after ``max_consecutive_failures``
  distinct scenarios fail in a row (the signature of a config bug, not a
  flaky host) the breaker opens: queued scenarios are recorded as skipped
  while in-flight work drains normally.
* **Resume.**  ``run(grid, resume=ledger)`` skips every scenario whose
  ``(scenario_id, config_digest)`` already has an ``ok`` row and re-runs the
  rest, appending to the same ledger.  Because scenario results are a pure
  function of the frozen config, the merged ledger's per-scenario metrics are
  bit-identical to an uninterrupted run — only the nondeterministic bookkeeping
  fields (:data:`NONDETERMINISTIC_LEDGER_FIELDS`: ``elapsed_seconds``,
  timestamps, worker id, attempt, status) differ, and
  :meth:`ScenarioOutcome.identity` excludes exactly those.

Scenario-level and hour-level parallelism compose: ``gen_workers`` turns on
multiprocess per-hour flow generation *inside* each scenario (see
:mod:`repro.flows.parallel`), clamped via
:func:`~repro.flows.parallel.effective_gen_workers` so the product of the two
levels never oversubscribes the visible CPUs.  The scenario pool is a
non-daemonic :class:`~concurrent.futures.ProcessPoolExecutor` precisely so the
nested generation pools are allowed to exist; generation output is
byte-identical at every worker count, so the composition changes wall-clock
only.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import logging

from repro.core.report import render_table
from repro.flows.parallel import effective_gen_workers, pool_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger, log_event
from repro.simulation.config import ScenarioConfig
from repro.sweeps.grid import ScenarioGrid, ScenarioSpec
from repro.sweeps.metrics import resolve_metrics

logger = get_logger("sweeps")

#: Ledger schema version, recorded in every row.
LEDGER_SCHEMA = 2

#: Schema versions this reader understands (v1 rows lack the fault-tolerance
#: fields and parse with defaults).
SUPPORTED_LEDGER_SCHEMAS = (1, 2)

#: Scenario attempt statuses recorded in ledger rows.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_RETRIED = "retried"

#: Ledger fields that legitimately differ between a clean run and a resumed
#: one (timing, placement, attempt bookkeeping).  Everything *not* listed here
#: is covered by the determinism contract and must be bit-identical; the
#: fault-injection harness compares runs via :meth:`ScenarioOutcome.identity`,
#: which excludes exactly these fields.
NONDETERMINISTIC_LEDGER_FIELDS = (
    "elapsed_seconds",
    "started_at",
    "ended_at",
    "worker_id",
    "attempt",
    "status",
)

#: Test-only fault-injection hook, called as ``hook(scenario_id, attempt)`` at
#: the top of every scenario attempt, inside the worker process (pool workers
#: inherit it through fork).  A hook may raise (recorded as a failure), sleep
#: (to exercise timeouts), or ``os._exit`` (to simulate an OOM-killed worker).
FAULT_HOOK: Optional[Callable[[str, int], None]] = None


class LedgerError(ValueError):
    """A sweep ledger could not be parsed (corrupt row or unknown schema)."""


class _ScenarioTimeout(Exception):
    """Raised inside a worker when a scenario exceeds its wall-clock budget."""


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Abort the enclosed block with :class:`_ScenarioTimeout` after ``seconds``.

    Uses ``SIGALRM``, so it only arms on the main thread of a process with
    alarm support (true for pool workers under the fork context and for the
    serial driver); elsewhere the limit is a no-op.
    """
    if (
        not seconds
        or seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise _ScenarioTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class _Task:
    """One scenario attempt shipped to a pool worker (must stay picklable)."""

    scenario_id: str
    axes: Tuple[Tuple[str, object], ...]
    config: ScenarioConfig
    metrics: Tuple[str, ...]
    store_root: Optional[str]
    gen_workers: int
    timeout: Optional[float]
    attempt: int
    #: Trace file the worker should append spans to (None = tracing off).
    #: Forked workers inherit the driver's descriptor anyway; this field makes
    #: the sink explicit so spawned workers reach the same file.
    trace_path: Optional[str] = None
    #: Whether the worker should collect a metrics snapshot for this attempt.
    collect_obs: bool = False


@dataclass
class ScenarioOutcome:
    """The result of one scenario attempt: metrics on success, an error on failure."""

    scenario_id: str
    axes: Dict[str, object]
    config_digest: str
    metrics: Dict[str, object]
    elapsed_seconds: float
    error: Optional[str] = None
    status: str = ""
    attempt: int = 1
    worker_id: str = ""
    started_at: float = 0.0
    ended_at: float = 0.0
    #: Observability snapshot of the worker's metrics registry for this
    #: attempt (see :mod:`repro.obs.metrics`).  Deliberately NOT part of the
    #: ledger row or of :meth:`identity` — observability data is advisory and
    #: must never disturb ledger byte-stability or the determinism contract.
    obs: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if not self.status:
            self.status = STATUS_OK if self.error is None else STATUS_FAILED

    @property
    def ok(self) -> bool:
        return self.error is None

    def identity(self) -> Dict[str, object]:
        """The deterministic projection of this outcome.

        Everything a resumed or retried run must reproduce bit-identically;
        the fields named in :data:`NONDETERMINISTIC_LEDGER_FIELDS` (timing,
        worker placement, attempt bookkeeping) are deliberately excluded.
        """
        return {
            "scenario_id": self.scenario_id,
            "axes": dict(self.axes),
            "config_digest": self.config_digest,
            "metrics": dict(self.metrics),
            "error": self.error,
        }


def _ledger_row(outcome: ScenarioOutcome) -> Dict[str, object]:
    """The schema-2 JSONL representation of one scenario attempt."""
    return {
        "schema": LEDGER_SCHEMA,
        "scenario_id": outcome.scenario_id,
        "axes": outcome.axes,
        "config_digest": outcome.config_digest,
        "metrics": outcome.metrics,
        "elapsed_seconds": outcome.elapsed_seconds,
        "error": outcome.error,
        "status": outcome.status,
        "attempt": outcome.attempt,
        "worker_id": outcome.worker_id,
        "started_at": outcome.started_at,
        "ended_at": outcome.ended_at,
    }


def _outcome_from_row(row: Dict[str, object]) -> ScenarioOutcome:
    """Rebuild an outcome from a parsed ledger row (schema 1 or 2)."""
    error = row.get("error")
    default_status = STATUS_OK if error is None else STATUS_FAILED
    return ScenarioOutcome(
        scenario_id=row["scenario_id"],
        axes=dict(row["axes"]),
        config_digest=row["config_digest"],
        metrics=dict(row["metrics"]),
        elapsed_seconds=float(row["elapsed_seconds"]),
        error=error,
        status=str(row.get("status") or default_status),
        attempt=int(row.get("attempt", 1)),
        worker_id=str(row.get("worker_id", "")),
        started_at=float(row.get("started_at", 0.0)),
        ended_at=float(row.get("ended_at", 0.0)),
    )


def _execute_scenario(task: _Task) -> ScenarioOutcome:
    """Run one scenario attempt (module-level so multiprocessing can pickle it)."""
    from repro.experiments.context import build_context
    from repro.store.artifacts import ArtifactStore, config_digest

    if task.trace_path is not None and not obs_trace.enabled():
        # Spawned workers (no inherited descriptor, no env var) open the sink
        # explicitly; forked workers and the serial driver already have it.
        obs_trace.enable(task.trace_path)
    previous_registry: Optional[obs_metrics.MetricsRegistry] = None
    if task.collect_obs:
        # A fresh registry per attempt means the shipped snapshot holds
        # exactly this scenario's metrics, merged additively by the driver.
        previous_registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        obs_metrics.enable()
    store = ArtifactStore(task.store_root) if task.store_root is not None else None
    started_at = time.time()
    start = time.perf_counter()
    metrics: Dict[str, object] = {}
    error: Optional[str] = None
    status = STATUS_OK
    try:
        with _wall_clock_limit(task.timeout):
            with obs_trace.span(
                "sweep.scenario", scenario=task.scenario_id, attempt=task.attempt
            ):
                if FAULT_HOOK is not None:
                    FAULT_HOOK(task.scenario_id, task.attempt)
                metric_fns = resolve_metrics(task.metrics)
                context = build_context(
                    task.config, use_cache=False, store=store, gen_workers=task.gen_workers
                )
                for fn in metric_fns.values():
                    metrics.update(fn(context))
    except _ScenarioTimeout:
        metrics = {}
        status = STATUS_TIMEOUT
        error = f"Timeout: scenario exceeded {task.timeout:g}s wall clock"
    except Exception as exc:  # ledger rows must exist even for failed scenarios
        metrics = {}
        status = STATUS_FAILED
        error = f"{type(exc).__name__}: {exc}"
    obs_snapshot: Optional[Dict[str, object]] = None
    if task.collect_obs:
        obs_snapshot = obs_metrics.registry().snapshot()
        if previous_registry is not None:
            obs_metrics.set_registry(previous_registry)
    return ScenarioOutcome(
        scenario_id=task.scenario_id,
        axes=dict(task.axes),
        config_digest=config_digest(task.config),
        metrics=metrics,
        elapsed_seconds=time.perf_counter() - start,
        error=error,
        status=status,
        attempt=task.attempt,
        worker_id=str(os.getpid()),
        started_at=started_at,
        ended_at=time.time(),
        obs=obs_snapshot,
    )


class _LedgerWriter:
    """Append-only JSONL ledger sink, durable per row.

    Each row is written, flushed, and fsynced individually, so a SIGKILL of
    the driver loses at most the row being written — and because a torn final
    line is both trimmed on append-reopen and skipped by
    :meth:`SweepResult.read_ledger`, even that partial row is harmless.
    """

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if append and self.path.exists():
            self._trim_torn_tail()
        self._stream = self.path.open("a" if append else "w", encoding="utf-8")

    def _trim_torn_tail(self) -> None:
        """Drop a trailing partial line left by a crash mid-append."""
        with self.path.open("rb+") as stream:
            data = stream.read()
            if data and not data.endswith(b"\n"):
                stream.truncate(data.rfind(b"\n") + 1)

    def append(self, outcome: ScenarioOutcome) -> None:
        self._stream.write(json.dumps(_ledger_row(outcome), sort_keys=True) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        self._stream.close()


class SweepResult:
    """Ordered scenario outcomes plus aggregation and ledger I/O."""

    def __init__(self, outcomes: Sequence[ScenarioOutcome], axis_names: Sequence[str]) -> None:
        self.outcomes = list(outcomes)
        self.axis_names = tuple(axis_names)
        #: Executor respawns this run survived (0 for a crash-free run).
        self.pool_respawns = 0
        #: Scenarios reused from a resume ledger instead of re-run.
        self.reused_count = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for outcome in self.outcomes:
            for key in outcome.metrics:
                if key not in names:
                    names.append(key)
        return names

    def latency_summary(self) -> Optional[Dict[str, float]]:
        """Scenario-latency percentiles over the successful outcomes.

        Exact nearest-rank p50/p95 plus mean/max of ``elapsed_seconds``;
        ``None`` when no scenario succeeded.  Purely derived reporting — the
        outcomes themselves are untouched.
        """
        durations = sorted(o.elapsed_seconds for o in self.outcomes if o.ok)
        if not durations:
            return None

        def rank(q: float) -> float:
            position = max(1, int(q * len(durations) + 0.9999999))
            return durations[min(position, len(durations)) - 1]

        return {
            "count": float(len(durations)),
            "mean": sum(durations) / len(durations),
            "p50": rank(0.5),
            "p95": rank(0.95),
            "max": durations[-1],
        }

    def render_latency_summary(self) -> str:
        """One-line scenario-latency digest for the sweep run summary."""
        summary = self.latency_summary()
        if summary is None:
            return "Scenario latency: no successful scenarios"
        return (
            "Scenario latency: "
            f"n={int(summary['count'])} "
            f"mean={summary['mean']:.2f}s "
            f"p50={summary['p50']:.2f}s "
            f"p95={summary['p95']:.2f}s "
            f"max={summary['max']:.2f}s"
        )

    # -- ledger ------------------------------------------------------------------

    def ledger_rows(self) -> List[Dict[str, object]]:
        return [_ledger_row(outcome) for outcome in self.outcomes]

    def write_ledger(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per scenario (JSONL), replacing the file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as stream:
            for row in self.ledger_rows():
                stream.write(json.dumps(row, sort_keys=True) + "\n")
        return path

    @classmethod
    def read_ledger(cls, path: Union[str, Path]) -> "SweepResult":
        """Rebuild a result from a JSONL ledger (crash-tolerant).

        A torn or garbage *final* line — the signature of a process killed
        mid-append — is skipped.  Corruption anywhere else, or a row carrying
        a schema version this reader does not understand, raises
        :class:`LedgerError` instead of silently mis-parsing.
        """
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        last = max((i for i, line in enumerate(lines) if line.strip()), default=-1)
        outcomes: List[ScenarioOutcome] = []
        axis_names: List[str] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError("ledger line is not a JSON object")
            except (json.JSONDecodeError, ValueError) as err:
                if index == last:
                    break  # torn tail from a crash mid-append
                raise LedgerError(f"{path}:{index + 1}: corrupt ledger line ({err})") from None
            schema = row.get("schema")
            if schema not in SUPPORTED_LEDGER_SCHEMAS:
                raise LedgerError(
                    f"{path}:{index + 1}: unknown ledger schema {schema!r} "
                    f"(this reader supports {', '.join(map(str, SUPPORTED_LEDGER_SCHEMAS))})"
                )
            try:
                outcome = _outcome_from_row(row)
            except (KeyError, TypeError, ValueError) as err:
                if index == last:
                    break
                raise LedgerError(f"{path}:{index + 1}: malformed ledger row ({err})") from None
            outcomes.append(outcome)
            for name in outcome.axes:
                if name not in axis_names:
                    axis_names.append(name)
        return cls(outcomes, axis_names)

    def final_by_scenario(self) -> Dict[Tuple[str, str], ScenarioOutcome]:
        """The latest row per ``(scenario_id, config_digest)``.

        Ledger rows are appended chronologically (including retries and
        resumed re-runs), so the last row of a scenario is its current state.
        """
        latest: Dict[Tuple[str, str], ScenarioOutcome] = {}
        for outcome in self.outcomes:
            latest[(outcome.scenario_id, outcome.config_digest)] = outcome
        return latest

    # -- aggregation -------------------------------------------------------------

    def pivot(
        self,
        metric: str,
        row_axis: str,
        col_axis: Optional[str] = None,
    ) -> List[List[object]]:
        """Cross-scenario summary: ``metric`` per ``row_axis`` (× ``col_axis``).

        Returns header + rows ready for :func:`~repro.core.report.render_table`.
        Cells average over every scenario sharing the (row, col) combination,
        so extra axes collapse to their mean.
        """
        for axis in (row_axis, col_axis):
            if axis is not None and axis not in self.axis_names:
                raise ValueError(f"unknown axis {axis!r}; sweep axes: {', '.join(self.axis_names)}")
        row_values: List[object] = []
        col_values: List[object] = []
        cells: Dict[Tuple[object, object], List[float]] = {}
        for outcome in self.outcomes:
            if not outcome.ok or metric not in outcome.metrics:
                continue
            row_key = outcome.axes[row_axis]
            col_key = outcome.axes[col_axis] if col_axis is not None else metric
            if row_key not in row_values:
                row_values.append(row_key)
            if col_key not in col_values:
                col_values.append(col_key)
            cells.setdefault((row_key, col_key), []).append(float(outcome.metrics[metric]))
        header = [row_axis] + [
            f"{col_axis}={value}" if col_axis is not None else str(value)
            for value in col_values
        ]
        rows: List[List[object]] = [header]
        for row_key in row_values:
            row: List[object] = [row_key]
            for col_key in col_values:
                samples = cells.get((row_key, col_key))
                row.append(round(sum(samples) / len(samples), 6) if samples else "-")
            rows.append(row)
        return rows

    def render_pivot(self, metric: str, row_axis: str, col_axis: Optional[str] = None) -> str:
        """Render a pivot as a text table."""
        table = self.pivot(metric, row_axis, col_axis)
        title = f"{metric} vs. {row_axis}" + (f" x {col_axis}" if col_axis else "")
        return render_table(table[0], table[1:], title=title)

    def render_results(self) -> str:
        """Render the per-scenario results table."""
        metric_names = self.metric_names()
        headers = ["scenario", *metric_names, "seconds", "status"]
        rows: List[List[object]] = []
        for outcome in self.outcomes:
            row: List[object] = [outcome.scenario_id]
            for name in metric_names:
                value = outcome.metrics.get(name, "-")
                row.append(round(value, 6) if isinstance(value, float) else value)
            row.append(round(outcome.elapsed_seconds, 2))
            row.append("ok" if outcome.ok else outcome.error)
            rows.append(row)
        return render_table(headers, rows, title=f"Sweep results ({len(self.outcomes)} scenarios)")


class _Campaign:
    """Mutable bookkeeping of one :meth:`SweepRunner.run` invocation."""

    def __init__(
        self,
        writer: Optional[_LedgerWriter],
        results: Dict[int, ScenarioOutcome],
        breaker_threshold: Optional[int],
    ) -> None:
        self.writer = writer
        self.results = results
        self.breaker_threshold = breaker_threshold
        self.consecutive_failures = 0
        self.breaker_open = False
        self.pool_respawns = 0

    def _append(self, outcome: ScenarioOutcome) -> None:
        if self.writer is not None:
            self.writer.append(outcome)

    @staticmethod
    def _merge_obs(outcome: ScenarioOutcome) -> None:
        """Fold a worker's shipped metrics snapshot into the driver registry."""
        if outcome.obs is not None and obs_metrics.enabled():
            obs_metrics.registry().merge(outcome.obs)

    def record_final(self, index: int, outcome: ScenarioOutcome) -> None:
        """Record a scenario's final outcome; feed the circuit breaker."""
        self.results[index] = outcome
        self._append(outcome)
        self._merge_obs(outcome)
        if outcome.ok:
            self.consecutive_failures = 0
            obs_metrics.inc("sweep.scenarios_ok")
            obs_metrics.observe("sweep.scenario_seconds", outcome.elapsed_seconds)
            log_event(
                logger,
                logging.INFO,
                "sweep.scenario_ok",
                scenario_id=outcome.scenario_id,
                attempt=outcome.attempt,
                seconds=round(outcome.elapsed_seconds, 3),
            )
        else:
            self.consecutive_failures += 1
            obs_metrics.inc("sweep.scenarios_failed")
            if outcome.status == STATUS_TIMEOUT:
                obs_metrics.inc("sweep.timeouts")
            log_event(
                logger,
                logging.WARNING,
                "sweep.scenario_failed",
                scenario_id=outcome.scenario_id,
                status=outcome.status,
                attempt=outcome.attempt,
                error=outcome.error,
            )
            if (
                self.breaker_threshold is not None
                and self.consecutive_failures >= self.breaker_threshold
            ):
                if not self.breaker_open:
                    obs_metrics.inc("sweep.breaker_trips")
                    log_event(
                        logger,
                        logging.ERROR,
                        "sweep.breaker_open",
                        consecutive_failures=self.consecutive_failures,
                        last_scenario_id=outcome.scenario_id,
                    )
                self.breaker_open = True

    def record_retry(self, outcome: ScenarioOutcome) -> None:
        """Record a non-final failed attempt (the scenario will be retried)."""
        outcome.status = STATUS_RETRIED
        self._append(outcome)
        self._merge_obs(outcome)
        obs_metrics.inc("sweep.retries")
        if outcome.error is not None and "Timeout" in outcome.error:
            obs_metrics.inc("sweep.timeouts")
        log_event(
            logger,
            logging.WARNING,
            "sweep.retry",
            scenario_id=outcome.scenario_id,
            attempt=outcome.attempt,
            error=outcome.error,
        )

    def record_skipped(self, index: int, outcome: ScenarioOutcome) -> None:
        """Record a scenario the open circuit breaker refused to submit."""
        self.results[index] = outcome
        self._append(outcome)
        obs_metrics.inc("sweep.skipped")
        log_event(
            logger,
            logging.WARNING,
            "sweep.skipped",
            scenario_id=outcome.scenario_id,
            reason="breaker_open",
        )


class SweepRunner:
    """Execute a scenario grid across crash-isolated multiprocess workers."""

    def __init__(
        self,
        metrics: Sequence[str] = ("traffic",),
        workers: int = 1,
        store: Union[str, Path, None] = None,
        ledger_path: Union[str, Path, None] = None,
        gen_workers: int = 1,
        retries: int = 0,
        timeout: Optional[float] = None,
        backoff: float = 0.5,
        max_consecutive_failures: Optional[int] = None,
    ) -> None:
        resolve_metrics(metrics)  # fail fast on unknown names
        self.metrics = tuple(metrics)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if gen_workers < 1:
            raise ValueError("gen_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if max_consecutive_failures is not None and max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        self.workers = workers
        self.gen_workers = gen_workers
        self.store_root = str(store) if store is not None else None
        self.ledger_path = Path(ledger_path) if ledger_path is not None else None
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.max_consecutive_failures = max_consecutive_failures

    # -- task construction -------------------------------------------------------

    def _task(self, spec: ScenarioSpec, gen_workers: int, attempt: int) -> _Task:
        return _Task(
            scenario_id=spec.scenario_id,
            axes=spec.axes,
            config=spec.config,
            metrics=self.metrics,
            store_root=self.store_root,
            gen_workers=gen_workers,
            timeout=self.timeout,
            attempt=attempt,
            trace_path=obs_trace.trace_path(),
            collect_obs=obs_metrics.enabled(),
        )

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff before re-running a failed attempt."""
        return self.backoff * (2 ** (attempt - 1))

    def _synthetic_outcome(
        self, spec: ScenarioSpec, attempt: int, error: str, status: str = STATUS_FAILED
    ) -> ScenarioOutcome:
        """An outcome the driver fabricates when no worker result exists."""
        from repro.store.artifacts import config_digest

        now = time.time()
        return ScenarioOutcome(
            scenario_id=spec.scenario_id,
            axes=spec.axes_dict,
            config_digest=config_digest(spec.config),
            metrics={},
            elapsed_seconds=0.0,
            error=error,
            status=status,
            attempt=attempt,
            worker_id="driver",
            started_at=now,
            ended_at=now,
        )

    def _skipped_outcome(self, spec: ScenarioSpec, campaign: _Campaign) -> ScenarioOutcome:
        return self._synthetic_outcome(
            spec,
            attempt=0,
            error=(
                "skipped: circuit breaker open after "
                f"{campaign.consecutive_failures} consecutive scenario failures"
            ),
        )

    # -- execution ---------------------------------------------------------------

    def run(self, grid: ScenarioGrid, resume: Union[str, Path, None] = None) -> SweepResult:
        """Run every grid point; outcomes keep grid order regardless of workers.

        With ``resume``, scenarios whose ``(scenario_id, config_digest)``
        already has an ``ok`` row in the given ledger are reused as-is and the
        newly-run rows are appended to it (or to ``ledger_path`` when that
        names a different file, which then receives the reused rows too, so
        the target ledger is always self-contained).
        """
        from repro.store.artifacts import config_digest

        specs = grid.specs()
        results: Dict[int, ScenarioOutcome] = {}
        reused_count = 0
        resume_path = Path(resume) if resume is not None else None
        if resume_path is not None:
            finals = SweepResult.read_ledger(resume_path).final_by_scenario()
            for index, spec in enumerate(specs):
                prior = finals.get((spec.scenario_id, config_digest(spec.config)))
                if prior is not None and prior.status == STATUS_OK:
                    results[index] = prior
                    reused_count += 1

        target = self.ledger_path
        if target is None and resume_path is not None:
            target = resume_path
        writer: Optional[_LedgerWriter] = None
        if target is not None:
            same_file = resume_path is not None and target.resolve() == resume_path.resolve()
            writer = _LedgerWriter(target, append=same_file)
            if not same_file:
                # A fresh target ledger must still contain the reused rows so
                # it stands alone as the merged campaign record.
                for index in sorted(results):
                    writer.append(results[index])

        pending = [(index, spec) for index, spec in enumerate(specs) if index not in results]
        campaign = _Campaign(writer, results, self.max_consecutive_failures)
        workers = min(self.workers, max(1, len(pending) or 1))
        gen_workers = effective_gen_workers(self.gen_workers, workers)
        try:
            if pending:
                if workers <= 1:
                    self._run_serial(pending, campaign, gen_workers)
                else:
                    self._run_parallel(pending, campaign, workers, gen_workers)
        finally:
            if writer is not None:
                writer.close()

        result = SweepResult([results[index] for index in range(len(specs))], grid.axis_names)
        result.pool_respawns = campaign.pool_respawns
        result.reused_count = reused_count
        return result

    def _run_serial(
        self,
        pending: Sequence[Tuple[int, ScenarioSpec]],
        campaign: _Campaign,
        gen_workers: int,
    ) -> None:
        """In-process execution (workers=1) with the same fault policy."""
        for index, spec in pending:
            if campaign.breaker_open:
                campaign.record_skipped(index, self._skipped_outcome(spec, campaign))
                continue
            attempt = 1
            while True:
                outcome = _execute_scenario(self._task(spec, gen_workers, attempt))
                if outcome.ok or attempt > self.retries:
                    campaign.record_final(index, outcome)
                    break
                campaign.record_retry(outcome)
                delay = self._backoff_delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1

    def _new_executor(self, workers: int) -> ProcessPoolExecutor:
        # Executor workers are non-daemonic (unlike multiprocessing.Pool's),
        # so per-scenario generation pools may nest inside them.
        return ProcessPoolExecutor(max_workers=workers, mp_context=pool_context())

    def _run_parallel(
        self,
        pending: Sequence[Tuple[int, ScenarioSpec]],
        campaign: _Campaign,
        workers: int,
        gen_workers: int,
    ) -> None:
        """Submit-and-drain scheduling that survives worker death.

        At most one scenario is submitted per worker slot, so the in-flight
        set approximates the actually-running set: when a worker dies and
        breaks the pool, only genuinely in-flight scenarios are charged a
        failed attempt (and retried, if attempts remain) — completed outcomes
        are already recorded and queued scenarios resubmit untouched on the
        respawned executor.
        """
        # (index, spec, attempt, ready_time) — ready_time gates backoff waits.
        waiting: List[Tuple[int, ScenarioSpec, int, float]] = [
            (index, spec, 1, 0.0) for index, spec in pending
        ]
        inflight: Dict[object, Tuple[int, ScenarioSpec, int]] = {}
        executor = self._new_executor(workers)
        try:
            while waiting or inflight:
                now = time.monotonic()
                if campaign.breaker_open and waiting:
                    for index, spec, _attempt, _ready in waiting:
                        campaign.record_skipped(index, self._skipped_outcome(spec, campaign))
                    waiting = []
                still_waiting: List[Tuple[int, ScenarioSpec, int, float]] = []
                for item in sorted(waiting, key=lambda it: (it[3], it[0])):
                    index, spec, attempt, ready = item
                    if len(inflight) < workers and ready <= now:
                        future = executor.submit(
                            _execute_scenario, self._task(spec, gen_workers, attempt)
                        )
                        inflight[future] = (index, spec, attempt)
                    else:
                        still_waiting.append(item)
                waiting = still_waiting
                if not inflight:
                    if waiting:  # everything is backing off; sleep to the earliest retry
                        time.sleep(max(0.0, min(item[3] for item in waiting) - now))
                    continue
                done, _running = wait(set(inflight), timeout=0.1, return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    index, spec, attempt = inflight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        outcome = self._synthetic_outcome(
                            spec, attempt, "BrokenProcessPool: worker process died mid-scenario"
                        )
                    except Exception as exc:  # e.g. an unpicklable result
                        outcome = self._synthetic_outcome(
                            spec, attempt, f"{type(exc).__name__}: {exc}"
                        )
                    self._settle(campaign, waiting, index, spec, attempt, outcome)
                if pool_broken:
                    # The pool is unusable: every still-inflight future dies
                    # with it.  Harvest any that actually finished, charge the
                    # rest a failed attempt, and respawn the executor.
                    for future, (index, spec, attempt) in list(inflight.items()):
                        try:
                            outcome = future.result(timeout=0)
                        except Exception:
                            outcome = self._synthetic_outcome(
                                spec,
                                attempt,
                                "BrokenProcessPool: worker process died mid-scenario",
                            )
                        self._settle(campaign, waiting, index, spec, attempt, outcome)
                    inflight.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._new_executor(workers)
                    campaign.pool_respawns += 1
                    obs_metrics.inc("sweep.respawns")
                    log_event(
                        logger,
                        logging.WARNING,
                        "sweep.respawn",
                        respawns=campaign.pool_respawns,
                    )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _settle(
        self,
        campaign: _Campaign,
        waiting: List[Tuple[int, ScenarioSpec, int, float]],
        index: int,
        spec: ScenarioSpec,
        attempt: int,
        outcome: ScenarioOutcome,
    ) -> None:
        """Route one finished attempt: final success/failure, or schedule a retry."""
        if outcome.ok or attempt > self.retries:
            campaign.record_final(index, outcome)
        else:
            campaign.record_retry(outcome)
            waiting.append(
                (index, spec, attempt + 1, time.monotonic() + self._backoff_delay(attempt))
            )
