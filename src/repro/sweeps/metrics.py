"""Per-scenario sweep metrics.

A metric is a named function ``ExperimentContext -> {key: scalar}``; a sweep
evaluates the selected metrics on every grid point and the union of their
outputs becomes the scenario's result row in the ledger.  Metrics return only
JSON-scalar values so ledger rows round-trip losslessly (Python's JSON float
encoding uses ``repr``, which is exact for doubles) — that is what makes the
serial-vs-parallel bit-identity guarantee testable end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from repro.experiments.context import ExperimentContext

MetricFn = Callable[[ExperimentContext], Dict[str, object]]


def traffic_metrics(context: ExperimentContext) -> Dict[str, object]:
    """Volume/visibility summary of the scanner-cleaned main study week.

    ``total``/``distinct`` dispatch through the pluggable aggregation kernels
    (:mod:`repro.flows.kernels`); all backends are bit-identical, so rows stay
    reproducible whether or not numpy is installed.
    """
    table = context.clean_table()
    return {
        "clean_flows": len(table),
        "bytes_down": table.total("bytes_down"),
        "bytes_up": table.total("bytes_up"),
        "distinct_server_ips": len(table.distinct("server_ip")),
        "active_subscriber_lines": len(table.distinct("subscriber_id")),
        "scanner_lines_excluded": len(context.scanner_lines()),
    }


def discovery_metrics(context: ExperimentContext) -> Dict[str, object]:
    """Footprint of the discovery pipeline over the main study week.

    Reads ``context.result``, so with a store-backed sweep the metric rides
    the persisted-discovery warm path: only the first worker to touch a
    scenario runs the multi-source pipeline, every re-run (and every repeated
    sweep over the same store) deserializes the footprints instead of
    re-classifying certificate and DNS names.
    """
    result = context.result
    combined = result.combined
    return {
        "ipv4_discovered": len(combined.ipv4_ips()),
        "ipv6_discovered": len(combined.ipv6_ips()),
        "dedicated_ips": len(result.dedicated.ips()),
        "validation_shared_ips": result.validation.shared_count(),
    }


def outage_metrics(context: ExperimentContext) -> Dict[str, object]:
    """AWS us-east-1 outage impact on the affected provider (Figures 15-16)."""
    from repro.experiments.disruption_experiments import fig15_fig16_outage

    result = fig15_fig16_outage(context)
    return {
        "outage_traffic_drop_us_east": result.traffic_drop_us_east(),
        "outage_traffic_drop_eu": result.traffic_drop_eu(),
        "outage_line_drop_us_east": result.line_drop_us_east(),
    }


#: Metric registry; ``SweepRunner`` resolves metric names here.
SWEEP_METRICS: Mapping[str, MetricFn] = {
    "traffic": traffic_metrics,
    "discovery": discovery_metrics,
    "outage": outage_metrics,
}


def available_metrics() -> Sequence[str]:
    """The metric names a sweep can request."""
    return tuple(sorted(SWEEP_METRICS))


def resolve_metrics(names: Sequence[str]) -> Dict[str, MetricFn]:
    """Map metric names to functions, rejecting unknown names early."""
    resolved: Dict[str, MetricFn] = {}
    for name in names:
        if name not in SWEEP_METRICS:
            raise ValueError(
                f"unknown sweep metric {name!r}; available: {', '.join(available_metrics())}"
            )
        resolved[name] = SWEEP_METRICS[name]
    return resolved
