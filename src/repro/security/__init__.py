"""Security substrate: IP blocklists (FireHOL-style aggregation)."""

from repro.security.blocklists import Blocklist, BlocklistAggregate, BlocklistMatch

__all__ = ["Blocklist", "BlocklistAggregate", "BlocklistMatch"]
