"""IP blocklists and FireHOL-style aggregation.

Section 6.2 checks how likely it is that a backend becomes unreachable because its
address appears on a blocklist.  The paper aggregates 67 public blocklists via the
FireHOL project (over 610M IPv4 addresses in Feb 2022) and finds 16 backend IPs on
them, attributed to open proxies/anonymizers, malware, network attacks/spam, and a
personal blocklist.  This module provides the same aggregation and membership-check
surface over synthetic lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.netmodel.addressing import parse_ip

#: Categories used to annotate why an address was listed.
CATEGORY_OPEN_PROXY = "open-proxy"
CATEGORY_MALWARE = "malware"
CATEGORY_ATTACKS = "attacks-spam"
CATEGORY_PERSONAL = "personal"

CATEGORIES = (
    CATEGORY_OPEN_PROXY,
    CATEGORY_MALWARE,
    CATEGORY_ATTACKS,
    CATEGORY_PERSONAL,
)


@dataclass
class Blocklist:
    """A single named blocklist."""

    name: str
    category: str
    entries: Set[str] = field(default_factory=set)
    well_maintained: bool = True

    def add(self, ip: str) -> None:
        """Add an address to the list."""
        self.entries.add(str(parse_ip(ip)))

    def __contains__(self, ip: object) -> bool:
        try:
            return str(parse_ip(str(ip))) in self.entries
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class BlocklistMatch:
    """A membership hit: which list (and category) an address appears on."""

    ip: str
    list_name: str
    category: str


class BlocklistAggregate:
    """A FireHOL-style aggregation of several blocklists.

    Poorly maintained lists can be excluded, as the paper does for one list known
    to produce false positives.
    """

    def __init__(self, blocklists: Iterable[Blocklist] = ()) -> None:
        self._blocklists: List[Blocklist] = list(blocklists)

    def add_list(self, blocklist: Blocklist) -> None:
        """Register a blocklist."""
        self._blocklists.append(blocklist)

    def lists(self, include_unmaintained: bool = False) -> List[Blocklist]:
        """Return registered lists, excluding unmaintained ones by default."""
        return [
            blocklist
            for blocklist in self._blocklists
            if include_unmaintained or blocklist.well_maintained
        ]

    def total_entries(self, include_unmaintained: bool = False) -> int:
        """Total number of (non-deduplicated) entries across lists."""
        return sum(len(blocklist) for blocklist in self.lists(include_unmaintained))

    def check(self, ip: str, include_unmaintained: bool = False) -> List[BlocklistMatch]:
        """Return every list the address appears on."""
        normalized = str(parse_ip(ip))
        matches = []
        for blocklist in self.lists(include_unmaintained):
            if normalized in blocklist:
                matches.append(BlocklistMatch(normalized, blocklist.name, blocklist.category))
        return matches

    def check_many(
        self, ips: Iterable[str], include_unmaintained: bool = False
    ) -> Dict[str, List[BlocklistMatch]]:
        """Check several addresses; only listed addresses appear in the result."""
        results: Dict[str, List[BlocklistMatch]] = {}
        for ip in ips:
            matches = self.check(ip, include_unmaintained)
            if matches:
                results[str(parse_ip(ip))] = matches
        return results
