"""Simulated time: study periods and hourly time bins.

The paper studies two periods:

* the *main* study period, February 28 -- March 7 2022 (one week), used for the
  footprint and traffic analyses (Sections 3--5), and
* the *outage* study period, December 3 -- 10 2021, which contains the AWS
  ``us-east-1`` outage of December 7 2021 (Section 6.1).

All timestamps in the simulation are timezone-naive :class:`datetime.datetime`
objects interpreted as the ISP's local time.  No component reads the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timedelta
from typing import Iterator, List


@dataclass(frozen=True)
class StudyPeriod:
    """A half-open interval of whole days ``[start, end)`` used for measurements."""

    start: date
    end: date
    name: str = "study"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"study period end {self.end} must be after start {self.start}")

    @property
    def n_days(self) -> int:
        """Number of whole days covered by the period."""
        return (self.end - self.start).days

    @property
    def n_hours(self) -> int:
        """Number of whole hours covered by the period."""
        return self.n_days * 24

    def days(self) -> List[date]:
        """Return the list of dates in the period, in order."""
        return [self.start + timedelta(days=i) for i in range(self.n_days)]

    def hours(self) -> Iterator[datetime]:
        """Iterate over the start of every hour in the period, in order."""
        current = datetime.combine(self.start, datetime.min.time())
        end = datetime.combine(self.end, datetime.min.time())
        while current < end:
            yield current
            current += timedelta(hours=1)

    def contains(self, when: datetime | date) -> bool:
        """Return True if the timestamp or date falls inside the period."""
        if isinstance(when, datetime):
            when = when.date()
        return self.start <= when < self.end

    def first_timestamp(self) -> datetime:
        """Return the first instant of the period."""
        return datetime.combine(self.start, datetime.min.time())

    def last_timestamp(self) -> datetime:
        """Return the last hourly instant inside the period."""
        return datetime.combine(self.end, datetime.min.time()) - timedelta(hours=1)

    def previous_week(self) -> "StudyPeriod":
        """Return the period of identical length immediately preceding this one."""
        span = self.end - self.start
        return StudyPeriod(self.start - span, self.start, name=f"{self.name}-previous")


#: Main study period (footprint + traffic analyses), Feb 28 -- Mar 7 2022.
MAIN_STUDY_PERIOD = StudyPeriod(date(2022, 2, 28), date(2022, 3, 7), name="main")

#: Preliminary / outage study period, Dec 3 -- 10 2021 (AWS us-east-1 outage on Dec 7).
OUTAGE_STUDY_PERIOD = StudyPeriod(date(2021, 12, 3), date(2021, 12, 10), name="outage")

#: The day the AWS us-east-1 outage occurred.
AWS_OUTAGE_DATE = date(2021, 12, 7)

#: Hours (local time) during which the outage degraded the affected region.
AWS_OUTAGE_HOURS = (16, 23)


def is_night_hour(hour: int) -> bool:
    """Return True for the night shading used in the paper's figures (8 pm -- 8 am)."""
    return hour >= 20 or hour < 8


def hour_bins(period: StudyPeriod) -> List[datetime]:
    """Return all hourly bin starts of a study period as a list."""
    return list(period.hours())
