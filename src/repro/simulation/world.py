"""The world builder: wires every substrate into a coherent synthetic scenario.

A :class:`World` is the measurement environment the discovery pipeline operates on.
It contains ground truth (provider deployments) and the observable reflections of
that truth: DNS zones and passive DNS observations, TLS certificates exposed to
scanners, Censys-like daily snapshots, IPv6 hitlists, a routing table, blocklists,
a BGP event feed, an ISP subscriber population, and the outage schedule.

The build is a pure function of the :class:`~repro.simulation.config.ScenarioConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only (the store is an optional add-on)
    from repro.store.artifacts import ArtifactStore

from repro.core.providers import (
    CLOUD_AKAMAI_ORGS,
    CLOUD_ORGS,
    PROVIDERS,
    STRATEGY_DI,
    STRATEGY_DI_PR,
    STRATEGY_PR,
    ProviderSpec,
)
from repro.dns.authoritative import AnswerPolicy, AuthoritativeNameServer, AuthoritativeRecord
from repro.dns.names import (
    SUBDOMAIN_CUSTOMER,
    SUBDOMAIN_FIXED,
    SUBDOMAIN_SERVICE,
    build_fqdn,
    region_label,
)
from repro.dns.passive_db import PassiveDnsDatabase
from repro.dns.resolver import VantagePoint
from repro.dns.zone import RTYPE_A, RTYPE_AAAA
from repro.flows.flowtable import FlowTable
from repro.flows.subscribers import SubscriberPopulation
from repro.flows.workload import WorkloadGenerator
from repro.netmodel.addressing import PrefixAllocator
from repro.netmodel.asn import AsKind, AsRegistry, AutonomousSystem
from repro.netmodel.geo import (
    CONTINENT_ASIA,
    CONTINENT_EUROPE,
    CONTINENT_NORTH_AMERICA,
    GeoDatabase,
    Location,
    world_locations,
)
from repro.netmodel.topology import BackendServer, ProviderDeployment, ServiceEndpoint
from repro.outage.injector import OutageSchedule, aws_us_east_1_outage
from repro.routing.bgp import Announcement, RoutingTable
from repro.routing.events import BgpEvent, BgpEventFeed, EventKind
from repro.scan.censys import CensysService
from repro.scan.certificates import Certificate, make_certificate
from repro.scan.hitlist import IPv6Hitlist
from repro.scan.tls import TlsServerConfig
from repro.security.blocklists import (
    CATEGORY_ATTACKS,
    CATEGORY_MALWARE,
    CATEGORY_OPEN_PROXY,
    CATEGORY_PERSONAL,
    Blocklist,
    BlocklistAggregate,
)
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.simulation.rng import RngRegistry, stable_hash

#: Continent weights used when spreading servers over a provider's locations;
#: the extra weight on the large North-American regions reproduces the paper's
#: finding that roughly two thirds of backend servers are located in the US.
_CONTINENT_WEIGHTS = {
    CONTINENT_NORTH_AMERICA: 3.0,
    CONTINENT_EUROPE: 1.6,
    CONTINENT_ASIA: 0.8,
}
_DEFAULT_CONTINENT_WEIGHT = 0.4
_US_EAST_BONUS = 4.0  # us-east-1 is by far the largest cloud region.

#: Protocols whose endpoints are TLS-wrapped (certificates observable by scanners).
_TLS_PROTOCOLS = {"MQTTS", "HTTPS", "AMQPS", "AGNOSTIC"}


@dataclass
class World:
    """The complete synthetic measurement environment."""

    config: ScenarioConfig
    rng: RngRegistry
    locations: List[Location]
    geo_database: GeoDatabase
    as_registry: AsRegistry
    routing_table: RoutingTable
    deployments: Dict[str, ProviderDeployment]
    base_counts: Dict[str, int]
    churn_shifts: Dict[str, int]
    authoritative: AuthoritativeNameServer
    passive_dns: PassiveDnsDatabase
    censys: CensysService
    hitlist: IPv6Hitlist
    blocklists: BlocklistAggregate
    bgp_events: BgpEventFeed
    published_ranges: Dict[str, List[str]]
    population: SubscriberPopulation
    outage_schedule: OutageSchedule
    vantage_points: List[VantagePoint]
    iot_domains: Dict[str, List[str]]
    _flow_cache: Dict[str, list] = field(default_factory=dict)
    _table_cache: Dict[str, FlowTable] = field(default_factory=dict)
    #: Optional persistent cache; when set, generated period tables warm-start
    #: from disk (see :mod:`repro.store.artifacts`).
    artifact_store: Optional["ArtifactStore"] = None
    #: Hour-level generation workers (see :mod:`repro.flows.parallel`).  An
    #: *execution* knob, deliberately not a :class:`ScenarioConfig` field:
    #: generation is byte-identical at every worker count, so the artifact
    #: store's content address must not (and does not) depend on it.
    gen_workers: int = 1

    # -- ground-truth views -----------------------------------------------------------

    def provider_keys(self) -> List[str]:
        """Return the provider keys with a deployment in this world."""
        return sorted(self.deployments)

    def all_servers(self) -> List[BackendServer]:
        """Return every backend server in every provider's pool."""
        servers: List[BackendServer] = []
        for key in self.provider_keys():
            servers.extend(self.deployments[key].servers)
        return servers

    def servers_by_ip(self) -> Dict[str, BackendServer]:
        """Return a lookup table of every server keyed by address."""
        return {server.ip: server for server in self.all_servers()}

    def active_servers(self, day: date) -> List[BackendServer]:
        """Return the servers active on a given day (models churn).

        Providers with a non-zero churn rate rotate a window over their server pool:
        consecutive days differ by the churn shift, so differences grow with the
        number of days between snapshots (Figure 4).
        """
        active: List[BackendServer] = []
        for key in self.provider_keys():
            pool = self.deployments[key].servers
            base = self.base_counts[key]
            shift = self.churn_shifts[key]
            if shift == 0 or len(pool) <= base:
                active.extend(pool[:base])
                continue
            offset = (day.toordinal() * shift) % len(pool)
            window = [pool[(offset + i) % len(pool)] for i in range(base)]
            active.extend(window)
        return active

    def active_servers_for_provider(self, provider_key: str, day: date) -> List[BackendServer]:
        """Return the active servers of one provider on a given day."""
        return [s for s in self.active_servers(day) if s.provider == provider_key]

    def dedicated_deployments(self) -> Dict[str, ProviderDeployment]:
        """Return deployments restricted to servers used exclusively for IoT."""
        dedicated: Dict[str, ProviderDeployment] = {}
        for key, deployment in self.deployments.items():
            filtered = ProviderDeployment(provider=key)
            for server in deployment.servers:
                if server.dedicated_iot:
                    filtered.servers.append(server)
            dedicated[key] = filtered
        return dedicated

    # -- ISP traffic -------------------------------------------------------------------

    def workload_generator(self) -> WorkloadGenerator:
        """Return a workload generator over the dedicated IoT infrastructure."""
        return WorkloadGenerator(
            population=self.population,
            deployments=self.dedicated_deployments(),
            rng=self.rng.spawn("workload"),
            outage_schedule=self.outage_schedule,
            servers_per_device=self.config.servers_per_device,
            volume_sigma=self.config.volume_sigma,
        )

    def flows_table(
        self, period: Optional[StudyPeriod] = None, include_scanners: bool = True
    ) -> FlowTable:
        """Return (and cache) the columnar flow table of a study period.

        This is the generation source of truth; :meth:`flows` derives its
        record list from it.
        """
        period = period or self.config.study_period
        cache_key = f"{period.name}:{period.start}:{period.end}:{include_scanners}"
        if cache_key not in self._table_cache:
            self._table_cache[cache_key] = self._load_or_generate_table(period, include_scanners)
        return self._table_cache[cache_key]

    def _load_or_generate_table(self, period: StudyPeriod, include_scanners: bool) -> FlowTable:
        """Warm-start a period table from the artifact store, else generate it."""
        store = self.artifact_store
        if store is None:
            generator = self.workload_generator()
            return generator.generate_period_table(
                period, include_scanners=include_scanners, workers=self.gen_workers
            )
        from repro.store.artifacts import generated_stage

        stage = generated_stage(include_scanners)
        table = store.get_table(self.config, period, stage)
        if table is None:
            generator = self.workload_generator()
            table = generator.generate_period_table(
                period, include_scanners=include_scanners, workers=self.gen_workers
            )
            store.put_table(self.config, period, stage, table)
        return table

    def flows(self, period: Optional[StudyPeriod] = None, include_scanners: bool = True) -> list:
        """Return (and cache) the flow records of a study period."""
        period = period or self.config.study_period
        cache_key = f"{period.name}:{period.start}:{period.end}:{include_scanners}"
        if cache_key not in self._flow_cache:
            self._flow_cache[cache_key] = self.flows_table(
                period, include_scanners=include_scanners
            ).to_records()
        return self._flow_cache[cache_key]


def build_world(
    config: Optional[ScenarioConfig] = None,
    providers: Sequence[ProviderSpec] = PROVIDERS,
) -> World:
    """Build the synthetic world for a scenario configuration."""
    return _WorldBuilder(config or ScenarioConfig(), providers).build()


class _WorldBuilder:
    """Stateful helper performing the individual build steps."""

    def __init__(self, config: ScenarioConfig, providers: Sequence[ProviderSpec]) -> None:
        self.config = config
        self.providers = list(providers)
        self.rng = RngRegistry(config.seed)
        self.locations = world_locations()
        self.geo_database = GeoDatabase()
        for location in self.locations:
            self.geo_database.register_location(location)
        self.as_registry = AsRegistry()
        self.routing_table = RoutingTable()
        self.ipv4_allocator = PrefixAllocator("10.0.0.0/8")
        self.ipv6_allocator = PrefixAllocator("fd00::/20")
        self.background_allocator = PrefixAllocator("172.16.0.0/12")
        self.authoritative = AuthoritativeNameServer()
        self.passive_dns = PassiveDnsDatabase()
        self.hitlist = IPv6Hitlist(name="iot-ipv6-hitlist")
        self.published_ranges: Dict[str, List[str]] = {}
        self.iot_domains: Dict[str, List[str]] = {}
        self.deployments: Dict[str, ProviderDeployment] = {}
        self.base_counts: Dict[str, int] = {}
        self.churn_shifts: Dict[str, int] = {}
        self._cloud_ases: Dict[str, AutonomousSystem] = {}
        self._provider_ases: Dict[str, List[AutonomousSystem]] = {}
        self._host_counters: Dict[str, int] = {}

    def _next_host_offset(self, prefix: str) -> int:
        """Return the next unused host offset within a prefix (collision-free)."""
        counter = self._host_counters.get(prefix, 0) + 1
        self._host_counters[prefix] = counter
        return counter

    def _assign_address(
        self,
        location: Location,
        prefixes: Dict[Tuple[str, int], List[Tuple[str, int]]],
        ip_version: int,
    ) -> Tuple[str, int, str]:
        """Pick (allocating more prefixes on demand) an address for a new server."""
        key = (location.region_code, ip_version)
        prefix_list = prefixes.get(key)
        if not prefix_list:
            fallback = [
                entry
                for (_region, family), entries in prefixes.items()
                if family == ip_version
                for entry in entries
            ]
            if fallback:
                prefix_list = fallback
                prefixes[key] = prefix_list
            else:
                prefix_list = next(iter(prefixes.values()))
        capacity = 250 if ip_version == 4 else 10_000
        prefix, asn = prefix_list[-1]
        if self._host_counters.get(prefix, 0) >= capacity:
            allocator = self.ipv4_allocator if ip_version == 4 else self.ipv6_allocator
            new_prefix = allocator.allocate_prefix(24 if ip_version == 4 else 56)
            self.routing_table.announce(
                Announcement(str(new_prefix), asn, self._organization_for_asn(asn))
            )
            self.geo_database.register_prefix(new_prefix, location)
            prefix_list.append((str(new_prefix), asn))
            prefix = str(new_prefix)
        allocator = self.ipv4_allocator if ip_version == 4 else self.ipv6_allocator
        host_offset = self._next_host_offset(prefix)
        ip = str(allocator.hosts_in(prefix, 1, start_offset=host_offset)[0])
        return prefix, asn, ip

    # -- top level ----------------------------------------------------------------------

    def build(self) -> World:
        self._register_autonomous_systems()
        for spec in self.providers:
            self._build_provider(spec)
        extra_hosts = self._build_non_iot_hosts()
        censys = CensysService(
            geo_database=self.geo_database,
            host_source=self._censys_host_source,
            extra_hosts=extra_hosts,
            geolocation_error_rate=self.config.geolocation_error_rate,
            location_pool=self.locations,
        )
        self._populate_background_dns()
        blocklists = self._build_blocklists()
        bgp_events = self._build_bgp_events()
        population = SubscriberPopulation.build(
            n_lines=self.config.n_subscriber_lines,
            providers=self.providers,
            rng=self.rng.spawn("population"),
            ipv6_line_fraction=self.config.ipv6_line_fraction,
            iot_household_fraction=self.config.iot_household_fraction,
            n_scanner_lines=self.config.n_scanner_lines,
            n_heavy_lines=self.config.n_heavy_lines,
            isp_prefix_count=self.config.isp_prefix_count,
        )
        outage_schedule = OutageSchedule([aws_us_east_1_outage()])
        vantage_points = self._vantage_points()
        world = World(
            config=self.config,
            rng=self.rng,
            locations=self.locations,
            geo_database=self.geo_database,
            as_registry=self.as_registry,
            routing_table=self.routing_table,
            deployments=self.deployments,
            base_counts=self.base_counts,
            churn_shifts=self.churn_shifts,
            authoritative=self.authoritative,
            passive_dns=self.passive_dns,
            censys=censys,
            hitlist=self.hitlist,
            blocklists=blocklists,
            bgp_events=bgp_events,
            published_ranges=self.published_ranges,
            population=population,
            outage_schedule=outage_schedule,
            vantage_points=vantage_points,
            iot_domains=self.iot_domains,
        )
        return world

    def _censys_host_source(self, day: date) -> List[BackendServer]:
        # The censys service is created before the World object exists, so the host
        # source recomputes the active window directly from builder state.
        active: List[BackendServer] = []
        for key in sorted(self.deployments):
            pool = self.deployments[key].servers
            base = self.base_counts[key]
            shift = self.churn_shifts[key]
            if shift == 0 or len(pool) <= base:
                active.extend(pool[:base])
                continue
            offset = (day.toordinal() * shift) % len(pool)
            active.extend(pool[(offset + i) % len(pool)] for i in range(base))
        return active

    # -- autonomous systems ---------------------------------------------------------------

    def _register_autonomous_systems(self) -> None:
        for organization in CLOUD_ORGS:
            self._cloud_ases[organization] = self.as_registry.create(
                name=f"{organization} backbone", organization=organization, kind=AsKind.CLOUD
            )
        for organization in CLOUD_AKAMAI_ORGS:
            self._cloud_ases[organization] = self.as_registry.create(
                name=f"{organization} CDN", organization=organization, kind=AsKind.CDN
            )
        for spec in self.providers:
            systems = []
            if spec.strategy in (STRATEGY_DI, STRATEGY_DI_PR):
                for index in range(spec.n_ases):
                    systems.append(
                        self.as_registry.create(
                            name=f"{spec.organization} IoT {index + 1}",
                            organization=spec.organization,
                            kind=AsKind.IOT_BACKEND,
                        )
                    )
            self._provider_ases[spec.key] = systems
        self.as_registry.create("European ISP", "European ISP", AsKind.ISP)

    # -- provider deployments ----------------------------------------------------------------

    def _scaled_count(self, base: int, minimum: int) -> int:
        if base <= 0:
            return 0
        return max(minimum, int(round(base * self.config.scale)))

    def _provider_locations(self, spec: ProviderSpec) -> List[Location]:
        candidates = self.locations
        if spec.restrict_continents:
            candidates = [loc for loc in candidates if loc.continent in spec.restrict_continents]
        if spec.restrict_countries:
            candidates = [loc for loc in candidates if loc.country in spec.restrict_countries]
        if not candidates:
            candidates = list(self.locations)
        count = max(1, min(spec.n_locations, len(candidates)))
        start = stable_hash(f"{spec.key}:locations", len(candidates))
        chosen = [candidates[(start + i) % len(candidates)] for i in range(count)]
        # The largest providers always include the main AWS-style regions so the
        # outage analysis has both a us-east-1 and a European presence.
        if not spec.restrict_continents:
            required = [loc for loc in self.locations if loc.region_code in ("us-east-1", "eu-west-1")]
            for location in required:
                if location not in chosen:
                    chosen.append(location)
        return chosen

    def _location_weight(self, location: Location) -> float:
        weight = _CONTINENT_WEIGHTS.get(location.continent, _DEFAULT_CONTINENT_WEIGHT)
        if location.region_code == "us-east-1":
            weight *= _US_EAST_BONUS
        return weight

    def _spread_servers(self, spec: ProviderSpec, total: int, locations: List[Location]) -> List[Location]:
        """Return a per-server location assignment of length ``total``."""
        weights = [self._location_weight(location) for location in locations]
        weight_sum = sum(weights)
        counts = [max(0, int(round(total * weight / weight_sum))) for weight in weights]
        # Fix rounding drift while keeping at least one server in the first location.
        while sum(counts) < total:
            counts[counts.index(min(counts))] += 1
        while sum(counts) > total:
            index = counts.index(max(counts))
            if counts[index] > 0:
                counts[index] -= 1
        assignment: List[Location] = []
        for location, count in zip(locations, counts):
            assignment.extend([location] * count)
        # Ensure length exactly matches.
        while len(assignment) < total:
            assignment.append(locations[0])
        return assignment[:total]

    def _build_provider(self, spec: ProviderSpec) -> None:
        deployment = ProviderDeployment(provider=spec.key)
        n_ipv4 = self._scaled_count(spec.base_ipv4_servers, self.config.min_ipv4_servers)
        n_ipv6 = 0
        if spec.ipv6_supported and spec.base_ipv6_servers > 0:
            n_ipv6 = self._scaled_count(spec.base_ipv6_servers, self.config.min_ipv6_servers)
        shift = 0
        pool_v4 = n_ipv4
        if spec.churn_rate > 0:
            shift = max(1, int(round(spec.churn_rate * n_ipv4)))
            pool_v4 = n_ipv4 + 7 * shift
        self.base_counts[spec.key] = n_ipv4 + n_ipv6
        self.churn_shifts[spec.key] = shift

        locations = self._provider_locations(spec)
        v4_assignment = self._spread_servers(spec, pool_v4, locations)
        v6_assignment = self._spread_servers(spec, n_ipv6, locations) if n_ipv6 else []

        prefixes = self._allocate_prefixes(spec, locations, pool_v4, n_ipv6)
        total_pool = len(v4_assignment) + len(v6_assignment)
        # Quota-based draws keep the per-provider proportions exact even for tiny
        # deployments: at least one server is always certificate-exposed (when the
        # provider's visibility is non-zero) and at least one (domain, address)
        # binding is always observable in passive DNS.
        exposed_positions = self._quota_positions(
            f"{spec.key}:cert",
            total_pool,
            spec.censys_visibility,
            # Providers that are essentially invisible to certificate scans (SNI-only
            # frontends such as Google's) must stay invisible even at tiny scales.
            minimum_one=spec.censys_visibility >= 0.05,
        )
        stale_positions = self._quota_positions(
            f"{spec.key}:stale", total_pool, spec.stale_dns_fraction, minimum_one=False
        )
        pdns_positions = self._quota_positions(f"{spec.key}:pdns", total_pool, spec.passive_dns_coverage)
        servers: List[BackendServer] = []
        dns_category: Dict[str, str] = {}
        position = 0
        for index, location in enumerate(v4_assignment):
            server = self._build_server(
                spec, location, prefixes, index, ip_version=4,
                cert_exposed=position in exposed_positions,
            )
            dns_category[server.ip] = self._dns_category(position, stale_positions, pdns_positions)
            servers.append(server)
            position += 1
        for index, location in enumerate(v6_assignment):
            server = self._build_server(
                spec, location, prefixes, index, ip_version=6,
                cert_exposed=position in exposed_positions,
            )
            dns_category[server.ip] = self._dns_category(position, stale_positions, pdns_positions)
            servers.append(server)
            position += 1
        deployment.servers = servers
        self.deployments[spec.key] = deployment

        self._register_dns(spec, deployment, dns_category)
        self._register_hitlist(spec, deployment)
        self._register_published_ranges(spec, deployment)

    @staticmethod
    def _quota_positions(seed: str, total: int, fraction: float, minimum_one: bool = True) -> Set[int]:
        """Deterministically select round(fraction * total) positions out of ``total``."""
        if total <= 0 or fraction <= 0:
            return set()
        count = int(round(fraction * total))
        if minimum_one:
            count = max(1, count)
        count = min(count, total)
        ranked = sorted(range(total), key=lambda i: stable_hash(f"{seed}:{i}"))
        return set(ranked[:count])

    @staticmethod
    def _dns_category(position: int, stale_positions: Set[int], pdns_positions: Set[int]) -> str:
        if position in stale_positions:
            return "stale"
        if position in pdns_positions:
            return "covered"
        return "uncovered"

    def _allocate_prefixes(
        self, spec: ProviderSpec, locations: List[Location], n_ipv4: int, n_ipv6: int
    ) -> Dict[Tuple[str, int], List[Tuple[str, int]]]:
        """Allocate prefixes per (region, family); return {(region, family): [(prefix, asn)]}."""
        per_location_v4 = max(1, (n_ipv4 // max(1, len(locations))) + 1)
        prefixes: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
        cloud_cycle = list(spec.cloud_hosts) or [None]
        for loc_index, location in enumerate(locations):
            needed = max(1, (per_location_v4 + 253) // 254)
            v4_list: List[Tuple[str, int]] = []
            for block in range(needed):
                prefix = self.ipv4_allocator.allocate_prefix(24)
                asn = self._origin_asn(spec, cloud_cycle, loc_index + block)
                self.routing_table.announce(
                    Announcement(str(prefix), asn, self._organization_for_asn(asn))
                )
                self.geo_database.register_prefix(prefix, location)
                v4_list.append((str(prefix), asn))
            prefixes[(location.region_code, 4)] = v4_list
            if n_ipv6 > 0:
                prefix6 = self.ipv6_allocator.allocate_prefix(56)
                asn6 = self._origin_asn(spec, cloud_cycle, loc_index)
                self.routing_table.announce(
                    Announcement(str(prefix6), asn6, self._organization_for_asn(asn6))
                )
                self.geo_database.register_prefix(prefix6, location)
                prefixes[(location.region_code, 6)] = [(str(prefix6), asn6)]
        return prefixes

    def _origin_asn(self, spec: ProviderSpec, cloud_cycle: List[Optional[str]], index: int) -> int:
        if spec.strategy == STRATEGY_PR:
            organization = cloud_cycle[index % len(cloud_cycle)]
            return self._cloud_ases[organization].asn
        if spec.strategy == STRATEGY_DI_PR:
            # Mostly dedicated infrastructure, with a share hosted on the CDN/cloud.
            if index % 4 == 3 and cloud_cycle[0] is not None:
                return self._cloud_ases[cloud_cycle[0]].asn
            systems = self._provider_ases[spec.key]
            return systems[index % len(systems)].asn
        systems = self._provider_ases[spec.key]
        return systems[index % len(systems)].asn

    def _organization_for_asn(self, asn: int) -> str:
        autonomous_system = self.as_registry.get(asn)
        return autonomous_system.organization if autonomous_system else ""

    def _build_server(
        self,
        spec: ProviderSpec,
        location: Location,
        prefixes: Mapping[Tuple[str, int], List[Tuple[str, int]]],
        index: int,
        ip_version: int,
        cert_exposed: bool = True,
    ) -> BackendServer:
        prefix, asn, ip = self._assign_address(location, prefixes, ip_version)

        dedicated = True
        if spec.shared_web_fraction > 0:
            dedicated = stable_hash(f"{spec.key}:{ip}:shared", 1000) >= int(
                spec.shared_web_fraction * 1000
            )
        domains = self._domains_for_server(spec, location, index, dedicated)
        endpoints = self._endpoints_for_server(spec, ip, domains, cert_exposed)
        cloud_host = None
        if spec.strategy == STRATEGY_PR:
            cloud_host = spec.cloud_hosts[index % len(spec.cloud_hosts)]
        elif spec.strategy == STRATEGY_DI_PR and index % 4 == 3:
            cloud_host = spec.cloud_hosts[0]
        elif spec.key == "amazon":
            # Amazon IoT runs on the company's own cloud regions; the us-east-1
            # outage therefore affects it even though the strategy is DI.
            cloud_host = "Amazon Web Services"
        anycast = spec.uses_anycast and index % 10 == 0
        return BackendServer(
            ip=ip,
            provider=spec.key,
            location=location,
            asn=asn,
            prefix=prefix,
            endpoints=endpoints,
            domains=tuple(domains),
            dedicated_iot=dedicated,
            cloud_host=cloud_host,
            anycast=anycast,
        )

    def _domains_for_server(
        self, spec: ProviderSpec, location: Location, index: int, dedicated: bool
    ) -> List[str]:
        scheme = spec.naming
        region = region_label(
            scheme,
            location.region_code,
            location.airport_code,
            zone_index=stable_hash(f"{spec.key}:{location.region_code}", 97),
        )
        if scheme.subdomain_kind == SUBDOMAIN_FIXED:
            if not dedicated and len(scheme.fixed_fqdns) > 1:
                names = [scheme.fixed_fqdns[1]]
            else:
                names = [scheme.fixed_fqdns[0]]
        elif scheme.subdomain_kind == SUBDOMAIN_SERVICE:
            labels = scheme.service_labels[: 2]
            names = [
                build_fqdn(scheme, service_label=label, region=region) for label in labels
            ]
        else:
            customer = f"{spec.key}-tenant-{index // 6:03d}"
            names = [build_fqdn(scheme, customer_id=customer, region=region)]
        registry = self.iot_domains.setdefault(spec.key, [])
        for name in names:
            if name not in registry:
                registry.append(name)
        return names

    def _endpoints_for_server(
        self, spec: ProviderSpec, ip: str, domains: Sequence[str], cert_exposed: bool
    ) -> Tuple[ServiceEndpoint, ...]:
        certificate = self._certificate_for(spec, domains)
        endpoints: List[ServiceEndpoint] = []
        seen: Set[Tuple[str, int]] = set()
        for offering in spec.protocols:
            key = (offering.transport, offering.port)
            if key in seen:
                continue
            seen.add(key)
            tls_config: Optional[TlsServerConfig] = None
            needs_tls = offering.protocol.upper() in _TLS_PROTOCOLS or (
                offering.protocol.upper() == "MQTT" and offering.port == 443
            )
            if needs_tls:
                require_client_cert = offering.port in spec.client_cert_ports
                if spec.uses_sni and not cert_exposed:
                    tls_config = TlsServerConfig(
                        default_certificate=None,
                        sni_certificates={d.lower(): certificate for d in domains},
                        require_sni=True,
                        require_client_certificate=require_client_cert,
                    )
                elif not cert_exposed:
                    # Front-end terminators presenting no usable default certificate.
                    tls_config = TlsServerConfig(
                        default_certificate=None,
                        sni_certificates={d.lower(): certificate for d in domains},
                        require_sni=True,
                        require_client_certificate=require_client_cert,
                    )
                else:
                    tls_config = TlsServerConfig(
                        default_certificate=certificate,
                        sni_certificates={d.lower(): certificate for d in domains},
                        require_sni=False,
                        require_client_certificate=require_client_cert,
                    )
            endpoints.append(
                ServiceEndpoint(
                    transport=offering.transport,
                    port=offering.port,
                    protocol=offering.protocol,
                    tls=tls_config,
                )
            )
        return tuple(endpoints)

    def _certificate_for(self, spec: ProviderSpec, domains: Sequence[str]) -> Certificate:
        names = list(domains)
        scheme = spec.naming
        if scheme.subdomain_kind == SUBDOMAIN_CUSTOMER and domains:
            # Real deployments present wildcard certificates covering all tenants of
            # a region; keep the concrete name first so scanners can match it.
            first = domains[0]
            suffix = first.split(".", 1)[1] if "." in first else first
            names.append(f"*.{suffix}")
        period = self.config.study_period
        return make_certificate(
            names,
            issuer=f"{spec.organization} CA" if spec.uses_sni else "Example Trust CA",
            not_before=period.start - timedelta(days=180),
            not_after=period.end + timedelta(days=180),
        )

    # -- DNS ---------------------------------------------------------------------------------

    def _register_dns(
        self,
        spec: ProviderSpec,
        deployment: ProviderDeployment,
        dns_category: Mapping[str, str],
    ) -> None:
        multi_continent = len(deployment.continents()) > 1
        policy = AnswerPolicy.GEO if multi_continent else AnswerPolicy.ROUND_ROBIN
        period = self.config.study_period
        for server in deployment.servers:
            rtype = RTYPE_AAAA if server.is_ipv6 else RTYPE_A
            category = dns_category.get(server.ip, "covered")
            for domain in server.domains:
                if category == "stale":
                    # A "stale" binding was observed by passive DNS sensors in the
                    # past but the authoritative zone no longer returns it
                    # (decommissioned tenants, moved load balancers).  Such addresses
                    # are only discoverable via passive DNS, which gives DNSDB its
                    # own contribution in Figure 3.
                    self.passive_dns.add_observation(
                        rrname=domain,
                        rdata=server.ip,
                        first_seen=period.start - timedelta(days=200),
                        last_seen=period.end - timedelta(days=1),
                        count=20 + stable_hash(f"count:{server.ip}", 200),
                    )
                    continue
                self.authoritative.register(
                    AuthoritativeRecord(domain, rtype, server.ip, server.location),
                    policy=policy,
                    window=2,
                )
                if category == "covered":
                    self.passive_dns.add_observation(
                        rrname=domain,
                        rdata=server.ip,
                        first_seen=period.start - timedelta(days=30),
                        last_seen=period.end,
                        count=50 + stable_hash(f"count:{server.ip}", 500),
                    )
            if not server.dedicated_iot:
                self._register_shared_domains(server, period)

    def _register_shared_domains(self, server: BackendServer, period: StudyPeriod) -> None:
        """Attach many non-IoT domains to a shared IP (CDN / multi-service frontends)."""
        for index in range(self.config.shared_domains_per_ip):
            name = f"www{index}.shared-content-{stable_hash(server.ip, 10_000)}.example"
            self.passive_dns.add_observation(
                rrname=name,
                rdata=server.ip,
                first_seen=period.start - timedelta(days=60),
                last_seen=period.end,
                count=100,
            )

    def _register_hitlist(self, spec: ProviderSpec, deployment: ProviderDeployment) -> None:
        for server in deployment.ipv6_servers():
            covered = stable_hash(f"hitlist:{server.ip}", 1000) < int(
                spec.ipv6_hitlist_coverage * 1000
            )
            if covered:
                self.hitlist.add(server.ip)

    def _register_published_ranges(self, spec: ProviderSpec, deployment: ProviderDeployment) -> None:
        if spec.publishes_ip_ranges:
            self.published_ranges[spec.key] = deployment.prefixes()

    # -- background noise ----------------------------------------------------------------------

    def _build_non_iot_hosts(self) -> List[BackendServer]:
        """Ordinary web servers included in scan snapshots but unrelated to IoT."""
        hosts: List[BackendServer] = []
        if self.config.n_non_iot_hosts <= 0:
            return hosts
        web_as = self.as_registry.create("Generic Hosting", "Generic Hosting", AsKind.OTHER)
        prefix = self.background_allocator.allocate_prefix(24)
        self.routing_table.announce(Announcement(str(prefix), web_as.asn, "Generic Hosting"))
        location = self.locations[0]
        self.geo_database.register_prefix(prefix, location)
        ips = PrefixAllocator(str(prefix)).hosts_in(prefix, self.config.n_non_iot_hosts)
        period = self.config.study_period
        for index, ip in enumerate(ips):
            domain = f"www.shop-{index:03d}.example"
            certificate = make_certificate(
                [domain],
                not_before=period.start - timedelta(days=90),
                not_after=period.end + timedelta(days=90),
            )
            endpoint = ServiceEndpoint(
                transport="tcp",
                port=443,
                protocol="HTTPS",
                tls=TlsServerConfig(default_certificate=certificate),
            )
            hosts.append(
                BackendServer(
                    ip=str(ip),
                    provider="web-hosting",
                    location=location,
                    asn=web_as.asn,
                    prefix=str(prefix),
                    endpoints=(endpoint,),
                    domains=(domain,),
                    dedicated_iot=False,
                )
            )
            self.passive_dns.add_observation(
                rrname=domain,
                rdata=str(ip),
                first_seen=period.start - timedelta(days=90),
                last_seen=period.end,
            )
        return hosts

    def _populate_background_dns(self) -> None:
        """Unrelated passive DNS records exercising the regex selectivity."""
        stream = self.rng.stream("background-dns")
        period = self.config.study_period
        for index in range(self.config.n_background_dns_records):
            name = f"host{index}.background-{stream.randrange(100)}.example"
            ip = f"172.20.{stream.randrange(256)}.{stream.randrange(1, 255)}"
            self.passive_dns.add_observation(
                rrname=name,
                rdata=ip,
                first_seen=period.start - timedelta(days=stream.randrange(10, 300)),
                last_seen=period.end - timedelta(days=stream.randrange(0, 5)),
            )

    def _build_blocklists(self) -> BlocklistAggregate:
        stream = self.rng.stream("blocklists")
        lists = [
            Blocklist("open-proxy-list", CATEGORY_OPEN_PROXY),
            Blocklist("malware-tracker", CATEGORY_MALWARE),
            Blocklist("attack-feed", CATEGORY_ATTACKS),
            Blocklist("personal-blocklist", CATEGORY_PERSONAL),
            Blocklist("stale-list", CATEGORY_ATTACKS, well_maintained=False),
        ]
        for blocklist in lists:
            for _ in range(400):
                blocklist.add(
                    f"172.{stream.randrange(16, 32)}.{stream.randrange(256)}.{stream.randrange(1, 255)}"
                )
        backend_ips = [server.ip for server in self._all_ipv4_backend_servers()]
        if backend_ips:
            count = min(self.config.n_blocklisted_backend_ips, len(backend_ips))
            chosen = stream.sample(backend_ips, count)
            for index, ip in enumerate(chosen):
                lists[index % 4].add(ip)
        return BlocklistAggregate(lists)

    def _all_ipv4_backend_servers(self) -> List[BackendServer]:
        servers: List[BackendServer] = []
        for deployment in self.deployments.values():
            servers.extend(deployment.ipv4_servers())
        return servers

    def _build_bgp_events(self) -> BgpEventFeed:
        stream = self.rng.stream("bgp-events")
        feed = BgpEventFeed()
        period = self.config.study_period
        background_asns = [65000 + i for i in range(200)]
        counts = (
            (EventKind.BGP_LEAK, 10),
            (EventKind.POSSIBLE_HIJACK, 40),
            (EventKind.AS_OUTAGE, 166),
        )
        for kind, count in counts:
            for _ in range(count):
                day = period.start + timedelta(days=stream.randrange(period.n_days))
                prefix = None
                if kind != EventKind.AS_OUTAGE:
                    prefix = f"172.{stream.randrange(16, 32)}.{stream.randrange(256)}.0/24"
                feed.add(
                    BgpEvent(
                        kind=kind,
                        day=day,
                        asn=stream.choice(background_asns),
                        prefix=prefix,
                        description=f"background {kind.value}",
                    )
                )
        return feed

    def _vantage_points(self) -> List[VantagePoint]:
        by_region = {loc.region_code: loc for loc in self.locations}
        return [
            VantagePoint("eu-central", by_region["eu-central-1"]),
            VantagePoint("eu-west", by_region["eu-west-1"]),
            VantagePoint("us-east", by_region["us-east-1"]),
        ]
