"""Deterministic simulation kernel: RNG streams, simulated clock, scenario config,
and the world builder that wires every substrate together."""

from repro.simulation.rng import RngRegistry
from repro.simulation.clock import StudyPeriod, MAIN_STUDY_PERIOD, OUTAGE_STUDY_PERIOD
from repro.simulation.config import ScenarioConfig

__all__ = [
    "RngRegistry",
    "StudyPeriod",
    "MAIN_STUDY_PERIOD",
    "OUTAGE_STUDY_PERIOD",
    "ScenarioConfig",
]
