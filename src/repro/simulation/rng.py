"""Named, seeded random-number streams.

Every stochastic component of the simulation draws from a named stream obtained from
a single :class:`RngRegistry`.  Two registries created with the same seed produce
identical streams for identical names, which makes every experiment reproducible
bit-for-bit regardless of the order in which components request their streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from a base seed and a stream name.

    The derivation uses SHA-256 so that stream seeds are independent of each other
    and of the order in which streams are created.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory for named deterministic random streams.

    Parameters
    ----------
    seed:
        The base seed.  All derived streams are a pure function of this seed and
        the stream name.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """Return the base seed of this registry."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it if needed.

        Repeated calls with the same name return the *same* generator object, so a
        component that consumes values advances the stream for later callers with
        the same name.  Components that need isolation should use distinct names.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self._seed, name))
        return self._streams[name]

    def fresh_stream(self, name: str) -> random.Random:
        """Return a new generator for ``name`` without registering it.

        Useful when the caller wants a stream whose state is not shared with any
        other component (e.g. per-day or per-provider sub-streams).
        """
        return random.Random(_derive_seed(self._seed, name))

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of this one."""
        return RngRegistry(_derive_seed(self._seed, f"registry:{name}"))

    def choice(self, name: str, items: Sequence[T]) -> T:
        """Convenience wrapper: choose one item using the named stream."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(list(items))

    def shuffled(self, name: str, items: Iterable[T]) -> list[T]:
        """Return a new list with the items shuffled using the named stream."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result


def stable_hash(value: str, modulus: int = 2**32) -> int:
    """Return a stable (non-salted) integer hash of a string.

    Python's built-in :func:`hash` is salted per process; this helper provides a
    process-independent hash used for deterministic assignment decisions such as
    mapping a subscriber line to a device mix.
    """
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % modulus
