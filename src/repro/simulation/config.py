"""Scenario configuration.

A :class:`ScenarioConfig` fully determines the synthetic world: the same
configuration always produces the same deployments, DNS contents, scan snapshots,
and flows.  The defaults are sized so the complete pipeline (world build, one week
of flows, discovery, all analyses) runs in well under a minute on a laptop; the
``small()`` preset is used by unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simulation.clock import MAIN_STUDY_PERIOD, OUTAGE_STUDY_PERIOD, StudyPeriod


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of the synthetic measurement scenario."""

    # Determinism
    seed: int = 7

    # Deployment scale
    scale: float = 0.02
    min_ipv4_servers: int = 3
    min_ipv6_servers: int = 1
    churn_pool_factor: float = 3.0

    # ISP population
    n_subscriber_lines: int = 4000
    ipv6_line_fraction: float = 0.08
    iot_household_fraction: float = 0.45
    n_scanner_lines: int = 4
    n_heavy_lines: int = 0  # 0 means "1% of lines"
    isp_prefix_count: int = 64

    # NetFlow
    sampling_ratio: int = 1

    # Workload
    servers_per_device: int = 2
    volume_sigma: float = 0.75

    # Measurement services
    geolocation_error_rate: float = 0.03
    n_non_iot_hosts: int = 40
    shared_domains_per_ip: int = 25
    n_background_dns_records: int = 200
    n_background_bgp_prefixes: int = 50
    n_blocklisted_backend_ips: int = 12

    # Study periods
    study_period: StudyPeriod = MAIN_STUDY_PERIOD
    outage_period: StudyPeriod = OUTAGE_STUDY_PERIOD

    # Validation behaviour of the methodology
    shared_ip_domain_threshold: int = 10

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.n_subscriber_lines <= 0:
            raise ValueError("n_subscriber_lines must be positive")
        if self.sampling_ratio < 1:
            raise ValueError("sampling_ratio must be >= 1")
        if self.servers_per_device < 1:
            raise ValueError("servers_per_device must be >= 1")
        if self.volume_sigma < 0:
            raise ValueError("volume_sigma must be non-negative")
        if not 0.0 <= self.ipv6_line_fraction <= 1.0:
            raise ValueError("ipv6_line_fraction must be within [0, 1]")
        if not 0.0 <= self.iot_household_fraction <= 1.0:
            raise ValueError("iot_household_fraction must be within [0, 1]")

    @classmethod
    def small(cls, seed: int = 7) -> "ScenarioConfig":
        """A reduced scenario for fast unit tests."""
        return cls(
            seed=seed,
            scale=0.01,
            n_subscriber_lines=800,
            n_non_iot_hosts=10,
            n_background_dns_records=40,
            n_background_bgp_prefixes=15,
            n_blocklisted_backend_ips=6,
        )

    @classmethod
    def default(cls, seed: int = 7) -> "ScenarioConfig":
        """The default benchmark scenario."""
        return cls(seed=seed)

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
