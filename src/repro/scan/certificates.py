"""X.509-like certificate model.

The methodology extracts backend IPs from TLS certificates observed in scan data by
matching the certificates' DNS names (subject CN and subject-alternative names)
against the per-provider domain regular expressions (Section 3.3).  Only
certificates valid during the study period are used.  This module models exactly
the certificate attributes those steps consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Iterable, List, Optional, Tuple

_serial_counter = itertools.count(1)


def _next_serial() -> int:
    return next(_serial_counter)


@dataclass(frozen=True)
class Certificate:
    """A leaf certificate as seen by a TLS scanner.

    Attributes
    ----------
    subject_common_name:
        The subject CN, usually one of the covered DNS names.
    san_dns_names:
        Subject-alternative DNS names (may include wildcards such as
        ``*.iot.us-east-1.amazonaws.com``).
    issuer:
        Issuer organisation string (e.g. a public CA, or the provider itself for
        self-signed device-gateway certificates).
    not_before / not_after:
        Validity interval (inclusive of both end dates).
    self_signed:
        True when the certificate was not issued by a public CA.
    """

    subject_common_name: str
    san_dns_names: Tuple[str, ...] = ()
    issuer: str = "Example Trust CA"
    not_before: date = date(2021, 1, 1)
    not_after: date = date(2023, 1, 1)
    self_signed: bool = False
    serial: int = field(default_factory=_next_serial)

    def all_dns_names(self) -> Tuple[str, ...]:
        """Return the subject CN plus all SAN entries, de-duplicated, in order."""
        names: List[str] = []
        for name in (self.subject_common_name, *self.san_dns_names):
            if name and name not in names:
                names.append(name)
        return tuple(names)

    def is_valid_on(self, day: date) -> bool:
        """Return True when the certificate validity interval covers the day."""
        return self.not_before <= day <= self.not_after

    def is_valid_during(self, start: date, end: date) -> bool:
        """Return True when the certificate is valid at any point in [start, end)."""
        last_day = end - timedelta(days=1)
        return self.not_before <= last_day and self.not_after >= start

    def covers_domain(self, fqdn: str) -> bool:
        """Return True when any certificate name covers the FQDN.

        Wildcard names match exactly one additional left-most label, as in RFC 6125.
        """
        fqdn = fqdn.rstrip(".").lower()
        for name in self.all_dns_names():
            if _name_matches(name.rstrip(".").lower(), fqdn):
                return True
        return False


def _name_matches(pattern: str, fqdn: str) -> bool:
    """Return True when a certificate name (possibly a wildcard) covers an FQDN."""
    if pattern == fqdn:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not fqdn.endswith("." + suffix):
            return False
        # The wildcard must cover exactly one label.
        prefix = fqdn[: -(len(suffix) + 1)]
        return bool(prefix) and "." not in prefix
    return False


def make_certificate(
    names: Iterable[str],
    issuer: str = "Example Trust CA",
    not_before: date = date(2021, 6, 1),
    not_after: date = date(2023, 6, 1),
    self_signed: bool = False,
) -> Certificate:
    """Build a certificate whose subject CN is the first name and SANs are the rest."""
    names = [n for n in names if n]
    if not names:
        raise ValueError("a certificate needs at least one DNS name")
    return Certificate(
        subject_common_name=names[0],
        san_dns_names=tuple(names[1:]),
        issuer=issuer,
        not_before=not_before,
        not_after=not_after,
        self_signed=self_signed,
    )


def certificates_valid_during(
    certificates: Iterable[Certificate], start: date, end: date
) -> List[Certificate]:
    """Filter certificates to those valid at some point during [start, end)."""
    return [cert for cert in certificates if cert.is_valid_during(start, end)]
