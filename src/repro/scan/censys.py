"""A Censys-like Internet-wide IPv4 scanning service.

Censys continuously scans the IPv4 address space across many ports, performs
protocol-specific handshakes, collects TLS certificates and banners, annotates
hosts with geolocation metadata, and publishes daily snapshots (Section 3.3).  The
paper queries those snapshots for certificates whose names match the per-provider
regular expressions.

The service here scans the hosts the world exposes for a given day (ground-truth
backend servers plus unrelated hosts), *without SNI and without client
certificates*, exactly like an Internet-wide scanner connecting by address.  As a
result it reproduces the two blind spots the paper reports: SNI-requiring providers
(Google) and client-certificate-requiring endpoints (Amazon MQTT) yield no usable
certificates from scans.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netmodel.geo import GeoDatabase, Location
from repro.netmodel.topology import BackendServer
from repro.scan.banners import Banner, grab_banner
from repro.scan.certificates import Certificate
from repro.scan.tls import perform_handshake


@dataclass(frozen=True)
class CensysHostRecord:
    """One host in a daily snapshot."""

    ip: str
    snapshot_date: date
    open_ports: Tuple[Tuple[str, int], ...]
    certificates: Tuple[Certificate, ...]
    location: Optional[Location]
    banners: Tuple[Banner, ...] = ()

    def certificate_names(self) -> List[str]:
        """All DNS names across all certificates observed on the host."""
        names: List[str] = []
        for certificate in self.certificates:
            for name in certificate.all_dns_names():
                if name not in names:
                    names.append(name)
        return names

    def certificate_identity(self) -> Tuple[Certificate, ...]:
        """The identity of the certificate material presented by the host.

        Daily snapshots overlap heavily: the same backend serves the same
        certificates day after day, and the incremental discovery cache
        (:class:`repro.core.discovery.HostClassificationCache`) keys each host
        observation on ``(ip, certificate identity)`` to reuse the prior day's
        classification verdicts.  The identity is the certificate tuple
        itself: comparing two days' tuples short-circuits on object identity
        for unchanged certificates (endpoints serve the same objects across
        days) and falls back to value equality, so a rotated certificate —
        even one replaced by an equal copy — always compares correctly and a
        changed one is re-classified.
        """
        return self.certificates


@dataclass
class CensysSnapshot:
    """A daily snapshot of scan results, keyed by host address."""

    snapshot_date: date
    records: Dict[str, CensysHostRecord] = field(default_factory=dict)
    _name_index: Optional[Dict[str, List[str]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _name_index_fingerprint: Optional[Tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, record: CensysHostRecord) -> None:
        """Add or replace the record for an address."""
        self.records[record.ip] = record
        self._name_index = None

    def get(self, ip: str) -> Optional[CensysHostRecord]:
        """Return the record for an address, if the host was responsive."""
        return self.records.get(ip)

    def hosts(self) -> List[CensysHostRecord]:
        """Return every host record in the snapshot."""
        return [self.records[ip] for ip in sorted(self.records)]

    def __len__(self) -> int:
        return len(self.records)

    def certificate_name_index(self) -> Dict[str, List[str]]:
        """Map every certificate DNS name to the hosts presenting it.

        Snapshots contain far fewer distinct certificate names than
        (host, certificate, name) triples -- most backend fleets share a few
        wildcard certificates -- so consumers that classify names (the
        discovery layer) should iterate this index and match each name once.
        The index is built lazily; :meth:`add` invalidates it, and a cheap
        identity fingerprint over ``records`` catches direct mutation of the
        public mapping (which remains supported).
        """
        fingerprint = tuple(self.records.items())
        if self._name_index is None or fingerprint != self._name_index_fingerprint:
            index: Dict[str, List[str]] = {}
            for record in self.hosts():
                for name in record.certificate_names():
                    index.setdefault(name, []).append(record.ip)
            self._name_index = index
            self._name_index_fingerprint = fingerprint
        return self._name_index

    def ips_with_open_ports(self, ports: Iterable[Tuple[str, int]]) -> Set[str]:
        """Hosts with at least one of the given (transport, port) pairs open."""
        wanted = {(transport.lower(), port) for transport, port in ports}
        return {
            record.ip
            for record in self.records.values()
            if any(endpoint in wanted for endpoint in record.open_ports)
        }

    def search_certificates(self, name_regex: str) -> List[Tuple[str, Certificate, str]]:
        """Return (ip, certificate, matched name) for names matching a regex.

        Mirrors Censys certificate search: the regex is applied to every DNS name
        (CN and SANs) of every certificate in the snapshot.  Names are matched both
        with and without a trailing dot, as the paper's DNSDB-style patterns end in
        ``\\.$``.
        """
        pattern = re.compile(name_regex)
        matches: List[Tuple[str, Certificate, str]] = []
        for record in self.hosts():
            for certificate in record.certificates:
                for name in certificate.all_dns_names():
                    candidate = name.rstrip(".")
                    if pattern.search(candidate) or pattern.search(candidate + "."):
                        matches.append((record.ip, certificate, candidate))
                        break
        return matches

    def search_name_string(self, name_substring: str) -> List[Tuple[str, Certificate, str]]:
        """String search over certificate names (Censys "string search" queries).

        Wildcard-style queries like ``*.iot.us-east-1.amazonaws.com`` match any name
        ending with the part after ``*``.
        """
        needle = name_substring.lstrip("*")
        results: List[Tuple[str, Certificate, str]] = []
        for record in self.hosts():
            for certificate in record.certificates:
                for name in certificate.all_dns_names():
                    if name.endswith(needle) or needle in name:
                        results.append((record.ip, certificate, name))
                        break
        return results


class CensysService:
    """Builds daily snapshots by scanning the hosts visible on a given day.

    Parameters
    ----------
    geo_database:
        Source of the per-host geolocation metadata included in snapshots.
    host_source:
        Callable returning the backend servers (ground truth) active on a day.
        Daily variation in this set is what produces IP churn in snapshots.
    extra_hosts:
        Additional non-IoT hosts (e.g. ordinary web servers) included in every
        snapshot; they exercise the shared-vs-dedicated validation logic.
    geolocation_error_rate:
        Fraction of hosts whose reported location is perturbed to a wrong location,
        modelling the <7% disagreement between geolocation sources the paper reports.
    """

    #: Ports probed by the scanner, mirroring a broad Censys port set.
    SCANNED_PORTS: Tuple[Tuple[str, int], ...] = (
        ("tcp", 80),
        ("tcp", 443),
        ("tcp", 1883),
        ("tcp", 1884),
        ("tcp", 8443),
        ("tcp", 8883),
        ("tcp", 8943),
        ("tcp", 5671),
        ("tcp", 9123),
        ("tcp", 9124),
        ("tcp", 61616),
        ("tcp", 4840),
        ("udp", 5682),
        ("udp", 5683),
        ("udp", 5684),
        ("udp", 5686),
    )

    def __init__(
        self,
        geo_database: GeoDatabase,
        host_source: Callable[[date], Sequence[BackendServer]],
        extra_hosts: Sequence[BackendServer] = (),
        geolocation_error_rate: float = 0.0,
        location_pool: Sequence[Location] = (),
    ) -> None:
        self._geo_database = geo_database
        self._host_source = host_source
        self._extra_hosts = list(extra_hosts)
        self._geolocation_error_rate = geolocation_error_rate
        self._location_pool = list(location_pool)
        self._snapshots: Dict[date, CensysSnapshot] = {}

    def snapshot(self, day: date) -> CensysSnapshot:
        """Return (building and caching if necessary) the snapshot for a day."""
        if day not in self._snapshots:
            self._snapshots[day] = self._build_snapshot(day)
        return self._snapshots[day]

    def snapshots(self, days: Iterable[date]) -> List[CensysSnapshot]:
        """Return snapshots for several days."""
        return [self.snapshot(day) for day in days]

    def _build_snapshot(self, day: date) -> CensysSnapshot:
        snapshot = CensysSnapshot(snapshot_date=day)
        hosts = [s for s in self._host_source(day) if not s.is_ipv6]
        hosts.extend(h for h in self._extra_hosts if not h.is_ipv6)
        for index, server in enumerate(sorted(hosts, key=lambda s: s.ip)):
            record = self._scan_host(server, day, index)
            if record is not None:
                snapshot.add(record)
        return snapshot

    def _scan_host(self, server: BackendServer, day: date, index: int) -> Optional[CensysHostRecord]:
        open_ports: List[Tuple[str, int]] = []
        certificates: List[Certificate] = []
        banners: List[Banner] = []
        scanned = set(self.SCANNED_PORTS)
        for endpoint in server.endpoints:
            if endpoint.key not in scanned:
                continue
            open_ports.append(endpoint.key)
            banner = grab_banner(endpoint)
            if banner is not None:
                banners.append(banner)
            if endpoint.tls is not None:
                # Internet-wide scans connect by IP: no SNI, no client certificate.
                handshake = perform_handshake(endpoint.tls, server_name=None)
                certificate = handshake.observed_certificate
                if certificate is not None and certificate.is_valid_on(day):
                    if certificate not in certificates:
                        certificates.append(certificate)
        if not open_ports:
            return None
        location = self._geo_database.lookup_ip(server.ip) or server.location
        if self._location_pool and self._geolocation_error_rate > 0:
            # Deterministic perturbation: a fixed slice of hosts gets a wrong location.
            if (index % 1000) < int(self._geolocation_error_rate * 1000):
                location = self._location_pool[index % len(self._location_pool)]
        return CensysHostRecord(
            ip=server.ip,
            snapshot_date=day,
            open_ports=tuple(open_ports),
            certificates=tuple(certificates),
            location=location,
            banners=tuple(banners),
        )
