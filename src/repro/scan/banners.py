"""Application-layer banner grabbing helpers.

Censys performs protocol-specific handshakes to collect banners in addition to TLS
certificates (Section 3.3).  This module runs the appropriate protocol probe for a
service endpoint and condenses the result into a small, serialisable banner record
stored in scan snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netmodel.topology import ServiceEndpoint
from repro.protocols import amqp, coap, http, mqtt


@dataclass(frozen=True)
class Banner:
    """A condensed application-layer probe result for one endpoint."""

    protocol: str
    summary: str
    success: bool


def grab_banner(endpoint: ServiceEndpoint) -> Optional[Banner]:
    """Run the protocol probe matching the endpoint's application protocol.

    Returns None for protocols the scanner has no module for (mirroring real
    scanners, which only cover a fixed protocol set).
    """
    protocol = endpoint.protocol.upper()
    if protocol in ("MQTT", "MQTTS"):
        result = mqtt.probe_broker(mqtt.MqttBrokerBehaviour())
        code = result.return_code.name if result.return_code is not None else "none"
        return Banner(protocol, f"mqtt connack={code}", result.spoke_mqtt)
    if protocol in ("COAP", "COAPS"):
        result = coap.probe_server(coap.CoapServerBehaviour())
        dotted = result.response_code.dotted if result.response_code else "none"
        return Banner(protocol, f"coap response={dotted}", result.spoke_coap)
    if protocol in ("AMQP", "AMQPS"):
        result = amqp.probe_server(amqp.AmqpServerBehaviour())
        negotiated = result.negotiated_protocol.name if result.negotiated_protocol else "none"
        return Banner(protocol, f"amqp header={negotiated}", result.spoke_amqp)
    if protocol in ("HTTP", "HTTPS"):
        result = http.probe_server(http.HttpServerBehaviour())
        return Banner(protocol, f"http status={result.status_code}", result.spoke_http)
    return None
