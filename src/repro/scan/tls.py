"""TLS handshake model: SNI, default certificates, and client-certificate gating.

Two behaviours of real IoT backends are central to the paper's methodology and are
modelled here explicitly:

* **SNI-required servers** (e.g. Google's IoT endpoints) present no usable
  certificate to a scanner that connects by IP address without a Server Name
  Indication value.  This is why Censys-style scans discover <2% of Google's IoT
  IPs and passive DNS dominates for such providers (Figure 3, Section 3.5).
* **Client-certificate-required servers** (e.g. Amazon's MQTT-over-TLS IoT
  endpoints) abort the handshake when the scanner cannot present a client
  certificate, again hiding the server certificate from scan data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.scan.certificates import Certificate


@dataclass
class TlsServerConfig:
    """TLS configuration of a single backend service endpoint.

    Attributes
    ----------
    default_certificate:
        Certificate presented when the client sends no SNI (or an unknown SNI) and
        the server does not require SNI.  ``None`` together with ``require_sni``
        models servers that terminate the handshake without a certificate.
    sni_certificates:
        Mapping of server names to the certificate presented for that name.
        Wildcard-covered names may be resolved by the caller before lookup.
    require_sni:
        When True and the client offers no/unknown SNI, the handshake fails.
    require_client_certificate:
        When True and the client offers no client certificate, the handshake fails
        before the server certificate becomes observable (TLS 1.3-style behaviour,
        conservative for the scanner).
    """

    default_certificate: Optional[Certificate] = None
    sni_certificates: Dict[str, Certificate] = field(default_factory=dict)
    require_sni: bool = False
    require_client_certificate: bool = False

    def certificate_for(self, server_name: Optional[str]) -> Optional[Certificate]:
        """Return the certificate the server would present for a given SNI value."""
        if server_name:
            exact = self.sni_certificates.get(server_name.lower())
            if exact is not None:
                return exact
            for name, cert in self.sni_certificates.items():
                if cert.covers_domain(server_name):
                    return cert
        if self.require_sni:
            return None
        return self.default_certificate

    def all_certificates(self) -> Tuple[Certificate, ...]:
        """Return every certificate configured on this endpoint (for world tooling)."""
        certificates = []
        if self.default_certificate is not None:
            certificates.append(self.default_certificate)
        for cert in self.sni_certificates.values():
            if cert not in certificates:
                certificates.append(cert)
        return tuple(certificates)


@dataclass(frozen=True)
class TlsHandshakeResult:
    """Outcome of a TLS handshake attempt from the scanner's point of view."""

    success: bool
    certificate: Optional[Certificate] = None
    failure_reason: Optional[str] = None

    @property
    def observed_certificate(self) -> Optional[Certificate]:
        """The certificate visible to the scanner (None when the handshake failed)."""
        return self.certificate if self.success else None


def perform_handshake(
    config: TlsServerConfig,
    server_name: Optional[str] = None,
    offer_client_certificate: bool = False,
) -> TlsHandshakeResult:
    """Simulate a TLS handshake against a server configuration.

    Parameters
    ----------
    config:
        The endpoint's TLS configuration.
    server_name:
        The SNI value offered by the client (scanners connecting by IP send none;
        active resolution-driven probes may send the domain).
    offer_client_certificate:
        Whether the client can present a client certificate.  Scanners cannot.
    """
    if config.require_client_certificate and not offer_client_certificate:
        return TlsHandshakeResult(False, None, "client certificate required")
    certificate = config.certificate_for(server_name)
    if certificate is None:
        if config.require_sni and not server_name:
            return TlsHandshakeResult(False, None, "SNI required")
        if config.require_sni:
            return TlsHandshakeResult(False, None, "unknown server name")
        return TlsHandshakeResult(False, None, "no certificate configured")
    return TlsHandshakeResult(True, certificate, None)
