"""IPv6 hitlists.

Unlike IPv4, the IPv6 address space cannot be scanned exhaustively; scanners rely
on *hitlists* of addresses known to be responsive (Gasser et al.).  The paper
augments public hitlists with addresses that showed activity on popular IoT ports
and probes only those.  Coverage of the hitlist directly bounds IPv6 discovery
(Section 3.6), which the world builder models by only placing a configurable
fraction of ground-truth IPv6 servers on the hitlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Set

from repro.netmodel.addressing import parse_ip


@dataclass
class IPv6Hitlist:
    """A named list of candidate IPv6 addresses to probe."""

    name: str = "ipv6-hitlist"
    addresses: Set[str] = field(default_factory=set)

    def add(self, address: str) -> None:
        """Add an address to the hitlist (must be IPv6)."""
        parsed = parse_ip(address)
        if parsed.version != 6:
            raise ValueError(f"{address} is not an IPv6 address")
        self.addresses.add(str(parsed))

    def extend(self, addresses: Iterable[str]) -> None:
        """Add several addresses."""
        for address in addresses:
            self.add(address)

    def merge(self, other: "IPv6Hitlist") -> "IPv6Hitlist":
        """Return a new hitlist combining this list with another."""
        merged = IPv6Hitlist(name=f"{self.name}+{other.name}")
        merged.addresses = set(self.addresses) | set(other.addresses)
        return merged

    def __contains__(self, address: object) -> bool:
        try:
            return str(parse_ip(str(address))) in self.addresses
        except ValueError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.addresses))

    def __len__(self) -> int:
        return len(self.addresses)
