"""Scanning substrate: X.509-like certificates, TLS handshakes, a Censys-like IPv4
scanning service with daily snapshots, a ZGrab2-like application-layer scanner for
IPv6, and IPv6 hitlists."""

from repro.scan.certificates import Certificate
from repro.scan.tls import TlsHandshakeResult, TlsServerConfig, perform_handshake
from repro.scan.censys import CensysHostRecord, CensysService, CensysSnapshot
from repro.scan.hitlist import IPv6Hitlist
from repro.scan.zgrab import ZGrabResult, ZGrabScanner

__all__ = [
    "Certificate",
    "TlsHandshakeResult",
    "TlsServerConfig",
    "perform_handshake",
    "CensysHostRecord",
    "CensysService",
    "CensysSnapshot",
    "IPv6Hitlist",
    "ZGrabResult",
    "ZGrabScanner",
]
