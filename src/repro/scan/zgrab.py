"""A ZGrab2-like application-layer scanner used for IPv6 targets.

During the study period Censys scanned only IPv4, so the authors ran their own
IPv6 measurements: ZGrab2 extended with MQTT/AMQP support, probing the addresses on
IPv6 hitlists that had shown activity on ports 443, 8883, 1883, and 5671, from a
single server in Europe (Section 3.3).  This module reproduces that scanner: it
probes only hitlist addresses, performs TLS handshakes without SNI or client
certificates, and runs the protocol handshake modules on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.netmodel.topology import BackendServer, ServiceEndpoint
from repro.protocols import amqp, http, mqtt
from repro.scan.certificates import Certificate
from repro.scan.hitlist import IPv6Hitlist
from repro.scan.tls import perform_handshake


@dataclass(frozen=True)
class ZGrabResult:
    """The result of probing one (address, transport, port) combination."""

    ip: str
    transport: str
    port: int
    protocol: str
    scan_date: date
    handshake_success: bool
    certificate: Optional[Certificate] = None
    application_success: bool = False
    failure_reason: Optional[str] = None


class ZGrabScanner:
    """Scans IPv6 hitlist addresses for IoT protocols and collects certificates.

    Parameters
    ----------
    probed_ports:
        The (transport, port, protocol-module) combinations probed per address,
        defaulting to the set the paper lists: HTTPS 443, MQTTS 8883, MQTT 1883,
        AMQPS 5671.
    """

    DEFAULT_PORTS: Tuple[Tuple[str, int], ...] = (
        ("tcp", 443),
        ("tcp", 8883),
        ("tcp", 1883),
        ("tcp", 5671),
    )

    def __init__(self, probed_ports: Sequence[Tuple[str, int]] = DEFAULT_PORTS) -> None:
        self.probed_ports = tuple(probed_ports)
        self.probes_sent = 0

    def scan(
        self,
        scan_date: date,
        hitlist: IPv6Hitlist,
        servers_by_ip: Mapping[str, BackendServer],
    ) -> List[ZGrabResult]:
        """Probe every hitlist address on every configured port.

        Addresses without a listening server simply produce no results (the probe
        times out); addresses with servers produce one result per responsive port.
        """
        results: List[ZGrabResult] = []
        for address in hitlist:
            server = servers_by_ip.get(address)
            if server is None:
                self.probes_sent += len(self.probed_ports)
                continue
            for transport, port in self.probed_ports:
                self.probes_sent += 1
                endpoint = server.endpoint(transport, port)
                if endpoint is None:
                    continue
                results.append(self._probe_endpoint(address, endpoint, scan_date))
        return results

    def _probe_endpoint(
        self, address: str, endpoint: ServiceEndpoint, scan_date: date
    ) -> ZGrabResult:
        certificate: Optional[Certificate] = None
        handshake_success = True
        failure_reason: Optional[str] = None
        if endpoint.tls is not None:
            handshake = perform_handshake(endpoint.tls, server_name=None)
            handshake_success = handshake.success
            failure_reason = handshake.failure_reason
            if handshake.success and handshake.certificate is not None:
                if handshake.certificate.is_valid_on(scan_date):
                    certificate = handshake.certificate
        application_success = False
        if handshake_success:
            application_success = self._run_application_probe(endpoint)
        return ZGrabResult(
            ip=address,
            transport=endpoint.transport,
            port=endpoint.port,
            protocol=endpoint.protocol,
            scan_date=scan_date,
            handshake_success=handshake_success,
            certificate=certificate,
            application_success=application_success,
            failure_reason=failure_reason,
        )

    def _run_application_probe(self, endpoint: ServiceEndpoint) -> bool:
        protocol = endpoint.protocol.upper()
        if protocol in ("MQTT", "MQTTS"):
            return mqtt.probe_broker(mqtt.MqttBrokerBehaviour()).spoke_mqtt
        if protocol in ("AMQP", "AMQPS"):
            return amqp.probe_server(amqp.AmqpServerBehaviour()).spoke_amqp
        if protocol in ("HTTP", "HTTPS"):
            return http.probe_server(http.HttpServerBehaviour()).spoke_http
        return False


def certificates_from_results(results: Iterable[ZGrabResult]) -> Dict[str, List[Certificate]]:
    """Group observed certificates by address."""
    grouped: Dict[str, List[Certificate]] = {}
    for result in results:
        if result.certificate is None:
            continue
        bucket = grouped.setdefault(result.ip, [])
        if result.certificate not in bucket:
            bucket.append(result.certificate)
    return grouped
