"""Traffic experiments: Figures 5--14 (Section 5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Dict, List, Optional, Tuple

from repro.core import traffic
from repro.core.report import (
    format_bytes,
    format_count,
    format_percent,
    render_distribution_summary,
    render_series,
    render_table,
)
from repro.experiments.context import ExperimentContext


# -- Figure 5: scanner threshold sweep ------------------------------------------------------


@dataclass
class Figure5Result:
    """Scanner-threshold sensitivity: #scanner lines and server coverage."""

    points: List[traffic.ScannerThresholdPoint]

    def coverage_at(self, threshold: int) -> float:
        """Server coverage at a given threshold."""
        for point in self.points:
            if point.threshold == threshold:
                return point.server_coverage_fraction
        raise KeyError(threshold)

    def scanners_at(self, threshold: int) -> int:
        """Number of scanner lines at a given threshold."""
        for point in self.points:
            if point.threshold == threshold:
                return point.scanner_line_count
        raise KeyError(threshold)

    def render(self) -> str:
        headers = ["Threshold", "#Scanner lines", "Server coverage"]
        rows = [
            [p.threshold, p.scanner_line_count, format_percent(p.server_coverage_fraction)]
            for p in self.points
        ]
        return render_table(headers, rows, title="Figure 5: scanner threshold sweep")


def fig5_scanner_threshold(
    context: ExperimentContext,
    thresholds: Tuple[int, ...] = (10, 20, 50, 100, 150, 200),
) -> Figure5Result:
    """Reproduce Figure 5 on the first study day's flows."""
    first_day = context.config.study_period.start
    table = context.raw_table()
    exclusion = traffic.ScannerExclusion(
        table, context.result.dedicated.ipv4_ips(), mask=table.mask_day(first_day)
    )
    return Figure5Result(points=exclusion.sweep(list(thresholds)))


# -- Figure 6: backend visibility -------------------------------------------------------------


@dataclass
class Figure6Result:
    """Per-provider share of discovered backend addresses visible in ISP traffic."""

    rows: List[traffic.VisibilityRow]
    overall_ipv4: float
    overall_ipv6: float

    def row_for(self, label: str) -> traffic.VisibilityRow:
        """Return the row of one anonymized provider."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        headers = ["Provider", "IPv4 visible", "IPv4 total", "IPv4 %", "IPv6 visible", "IPv6 total", "IPv6 %"]
        table_rows = [
            [
                row.label,
                row.ipv4_visible,
                row.ipv4_total,
                format_percent(row.ipv4_fraction),
                row.ipv6_visible,
                row.ipv6_total,
                format_percent(row.ipv6_fraction),
            ]
            for row in self.rows
        ]
        text = render_table(headers, table_rows, title="Figure 6: backend visibility per provider")
        text += (
            f"\nOverall visibility: IPv4 {format_percent(self.overall_ipv4)}, "
            f"IPv6 {format_percent(self.overall_ipv6)}"
        )
        return text


def fig6_visibility(context: ExperimentContext) -> Figure6Result:
    """Reproduce Figure 6 on the scanner-excluded study-week flows."""
    flows = context.clean_table()
    dedicated = context.result.dedicated
    rows = traffic.visibility_per_provider(flows, dedicated, context.anonymization)
    return Figure6Result(
        rows=rows,
        overall_ipv4=traffic.overall_visibility(flows, dedicated, 4),
        overall_ipv6=traffic.overall_visibility(flows, dedicated, 6),
    )


# -- Figure 7: TLS-only subscriber loss ----------------------------------------------------------


@dataclass
class Figure7Result:
    """Decrease in detectable IoT subscriber lines with TLS-only discovery."""

    rows: List[traffic.SubscriberLossRow]

    def decrease_for(self, label: str, ip_version: int = 4) -> float:
        """Relative decrease for one provider/family."""
        for row in self.rows:
            if row.label == label and row.ip_version == ip_version:
                return row.decrease_fraction
        raise KeyError((label, ip_version))

    def render(self) -> str:
        headers = ["Provider", "Family", "Lines (all sources)", "Lines (TLS only)", "Decrease"]
        table_rows = [
            [
                row.label,
                f"IPv{row.ip_version}",
                row.lines_full,
                row.lines_tls_only,
                format_percent(row.decrease_fraction),
            ]
            for row in self.rows
        ]
        return render_table(headers, table_rows, title="Figure 7: subscriber-line loss with TLS-only data")


def fig7_tls_only_loss(context: ExperimentContext) -> Figure7Result:
    """Reproduce Figure 7 by re-running discovery with only Censys certificate data."""
    from repro.baselines.tls_only import tls_only_discovery

    period = context.config.study_period
    snapshots = [context.world.censys.snapshot(day) for day in period.days()]
    tls_only = tls_only_discovery(snapshots, context.pipeline.pattern_set)
    rows = traffic.tls_only_subscriber_loss(
        context.clean_table(), context.result.dedicated, tls_only, context.anonymization
    )
    return Figure7Result(rows=rows)


# -- Figures 8--10: activity, volume, and direction ratio ----------------------------------------


@dataclass
class TimeSeriesResult:
    """A per-provider hourly time series plus rendering metadata."""

    title: str
    series: Dict[str, Dict[datetime, float]]

    def providers(self) -> List[str]:
        """The anonymized labels present in the series."""
        return list(self.series)

    def peak_hour(self, label: str) -> int:
        """Hour of day with the highest mean value for one provider."""
        per_hour: Dict[int, List[float]] = {}
        for timestamp, value in self.series[label].items():
            per_hour.setdefault(timestamp.hour, []).append(value)
        means = {hour: sum(vals) / len(vals) for hour, vals in per_hour.items()}
        return max(means, key=means.get)

    def total(self, label: str) -> float:
        """Sum of the series for one provider."""
        return sum(self.series[label].values())

    def render(self) -> str:
        return render_series(self.series, title=self.title)


def fig8_subscriber_activity(context: ExperimentContext, min_lines_per_hour: int = 15) -> TimeSeriesResult:
    """Reproduce Figure 8: hourly active subscriber lines per provider."""
    series = traffic.activity_timeseries(
        context.clean_table(), context.anonymization, min_lines_per_hour=min_lines_per_hour
    )
    return TimeSeriesResult(
        title="Figure 8: active subscriber lines per hour",
        series={label: {k: float(v) for k, v in values.items()} for label, values in series.items()},
    )


def fig9_traffic_volume(context: ExperimentContext) -> TimeSeriesResult:
    """Reproduce Figure 9: hourly normalized downstream volume per provider."""
    series = traffic.volume_timeseries(
        context.clean_table(), context.anonymization, sampling_ratio=context.sampling_ratio
    )
    return TimeSeriesResult(title="Figure 9: downstream traffic volume per hour", series=series)


@dataclass
class Figure10Result:
    """Downstream/upstream traffic ratios per provider."""

    hourly: Dict[str, Dict[datetime, float]]
    overall: Dict[str, float]

    def render(self) -> str:
        headers = ["Provider", "Overall down/up ratio"]
        rows = [[label, f"{ratio:.2f}"] for label, ratio in self.overall.items()]
        return render_table(headers, rows, title="Figure 10: downstream/upstream ratio")


def fig10_direction_ratio(context: ExperimentContext) -> Figure10Result:
    """Reproduce Figure 10: the downstream/upstream ratio per provider."""
    flows = context.clean_table()
    return Figure10Result(
        hourly=traffic.direction_ratio_timeseries(flows, context.anonymization),
        overall=traffic.mean_direction_ratio(flows, context.anonymization),
    )


# -- Figure 11: port mix ---------------------------------------------------------------------------


@dataclass
class Figure11Result:
    """Share of traffic volume per port for every provider."""

    mix: Dict[str, Dict[str, float]]

    def share(self, label: str, port_label_text: str) -> float:
        """Traffic share of one port for one provider (0 when absent)."""
        return self.mix.get(label, {}).get(port_label_text, 0.0)

    def dominant_port(self, label: str) -> str:
        """The port carrying the most traffic for one provider."""
        ports = self.mix[label]
        return max(ports, key=ports.get)

    def render(self) -> str:
        headers = ["Provider", "Port", "Share"]
        rows = []
        for label, ports in self.mix.items():
            for port, share in ports.items():
                rows.append([label, port, format_percent(share)])
        return render_table(headers, rows, title="Figure 11: traffic volume per port and provider")


def fig11_port_mix(context: ExperimentContext) -> Figure11Result:
    """Reproduce Figure 11 from the scanner-excluded study-week flows."""
    return Figure11Result(mix=traffic.port_mix(context.clean_table(), context.anonymization))


# -- Figure 12: per-subscriber daily volumes ----------------------------------------------------------


@dataclass
class Figure12Result:
    """Per-subscriber daily traffic distributions (Figures 12a, 12b, 12c)."""

    day: date
    total_down: traffic.EmpiricalDistribution
    total_up: traffic.EmpiricalDistribution
    by_provider_down: Dict[str, traffic.EmpiricalDistribution]
    by_port_down: Dict[str, traffic.EmpiricalDistribution]

    def render(self) -> str:
        text = [f"Figure 12: per-subscriber daily volumes on {self.day.isoformat()}"]
        text.append(
            render_distribution_summary(
                {"all providers (down)": self.total_down, "all providers (up)": self.total_up}
            )
        )
        text.append(render_distribution_summary(self.by_provider_down))
        text.append(render_distribution_summary(self.by_port_down))
        return "\n\n".join(text)


def fig12_per_subscriber_volumes(
    context: ExperimentContext, day: Optional[date] = None
) -> Figure12Result:
    """Reproduce Figures 12a--12c for one study day."""
    day = day or context.config.study_period.start
    flows = context.clean_table()
    total_down, total_up = traffic.per_subscriber_daily_volume(
        flows, day, sampling_ratio=context.sampling_ratio
    )
    by_provider = traffic.per_subscriber_daily_volume_by_provider(
        flows, day, context.anonymization, sampling_ratio=context.sampling_ratio
    )
    by_port = traffic.per_subscriber_daily_volume_by_port(
        flows, day, sampling_ratio=context.sampling_ratio
    )
    return Figure12Result(
        day=day,
        total_down=total_down,
        total_up=total_up,
        by_provider_down=by_provider,
        by_port_down=by_port,
    )


# -- Figures 13 and 14: crossing region borders ----------------------------------------------------------


@dataclass
class Figure13Result:
    """Continent-crossing statistics for subscriber lines, servers, and traffic."""

    report: traffic.RegionCrossingReport
    servers_per_continent: Dict[str, float]

    def render(self) -> str:
        line_rows = [
            [category, format_percent(self.report.category_fraction(category))]
            for category in traffic.REGION_CATEGORIES
        ]
        text = render_table(
            ["Subscriber lines contacting", "Share"],
            line_rows,
            title="Figure 13: subscriber lines vs. server continents",
        )
        server_rows = [
            [continent, format_percent(share)] for continent, share in self.servers_per_continent.items()
        ]
        text += "\n\n" + render_table(["Server continent", "Share of servers"], server_rows)
        traffic_rows = [
            [continent, format_percent(share)]
            for continent, share in self.report.traffic_by_continent.items()
        ]
        text += "\n\n" + render_table(
            ["Server continent", "Share of traffic"],
            traffic_rows,
            title="Figure 14: traffic exchanged per server continent",
        )
        return text


def fig13_fig14_region_crossing(context: ExperimentContext) -> Figure13Result:
    """Reproduce Figures 13 and 14 from the scanner-excluded study-week flows."""
    from repro.core.footprint import continent_distribution

    report = traffic.region_crossing(context.clean_table())
    servers = continent_distribution(context.result.footprints)
    return Figure13Result(report=report, servers_per_continent=servers)
