"""Characterization experiments: Table 1, Table 2 (Appendix A), Figures 2--4,
and the Section 3.4 ground-truth validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List

from repro.core.patterns import appendix_table
from repro.core.providers import get_provider
from repro.core.report import format_count, format_percent, render_table
from repro.core.source_attribution import CATEGORIES, SourceBreakdown, contribution_table
from repro.core.stability import StabilityComparison, stability_analysis
from repro.core.validation import TrafficCoverageReport, traffic_coverage
from repro.experiments.context import ExperimentContext


# -- Table 1 -------------------------------------------------------------------------


@dataclass
class Table1Result:
    """Measured provider characteristics (Table 1)."""

    rows: List[Dict[str, object]]

    def row_for(self, provider_name: str) -> Dict[str, object]:
        """Return the row of one provider by full name."""
        for row in self.rows:
            if row["provider"] == provider_name:
                return row
        raise KeyError(provider_name)

    def render(self) -> str:
        headers = [
            "Backend Provider",
            "#AS",
            "#IPv4 /24",
            "(IPv6 /56)",
            "#Locations",
            "#Countries",
            "Strategy",
            "Protocols (Ports)",
        ]
        table_rows = [
            [
                row["provider"],
                row["as_count"],
                row["ipv4_slash24"],
                row["ipv6_slash56"],
                row["locations"],
                row["countries"],
                row["strategy"],
                row["protocols"],
            ]
            for row in self.rows
        ]
        return render_table(headers, table_rows, title="Table 1: IoT backend characteristics")


def table1_characterization(context: ExperimentContext) -> Table1Result:
    """Reproduce Table 1 from the validated discovery result."""
    return Table1Result(rows=context.result.table1_rows())


# -- Table 2 (Appendix A) ----------------------------------------------------------------


@dataclass
class Table2Result:
    """Generated regular expressions and external-service queries (Appendix A)."""

    rows: List[Dict[str, str]]

    def render(self) -> str:
        headers = ["Provider", "Data Source", "API Type", "Regular Expression / Query"]
        table_rows = [
            [row["provider"], row["data_source"], row["api_type"], row["query"]]
            for row in self.rows
        ]
        return render_table(headers, table_rows, title="Table 2: domain patterns and queries")


def table2_regexes() -> Table2Result:
    """Reproduce the Appendix A query table from the provider catalog."""
    return Table2Result(rows=appendix_table())


# -- Figure 2 (pipeline outcome) -----------------------------------------------------------


@dataclass
class PipelineSummary:
    """End-to-end pipeline outcome (the product of Figure 2's methodology)."""

    total_ipv4: int
    total_ipv6: int
    dedicated_ipv4: int
    dedicated_ipv6: int
    shared_ips: int
    providers_with_ipv6: int

    def render(self) -> str:
        rows = [
            ["discovered IPv4 addresses", format_count(self.total_ipv4)],
            ["discovered IPv6 addresses", format_count(self.total_ipv6)],
            ["dedicated-IoT IPv4 addresses", format_count(self.dedicated_ipv4)],
            ["dedicated-IoT IPv6 addresses", format_count(self.dedicated_ipv6)],
            ["shared (excluded) addresses", format_count(self.shared_ips)],
            ["providers with IPv6 backends", str(self.providers_with_ipv6)],
        ]
        return render_table(["metric", "value"], rows, title="Figure 2: methodology outcome")


def pipeline_summary(context: ExperimentContext) -> PipelineSummary:
    """Summarise the end-to-end discovery run."""
    combined = context.result.combined
    dedicated = context.result.dedicated
    providers_with_ipv6 = sum(
        1 for key in combined.providers() if combined.ipv6_ips(key)
    )
    return PipelineSummary(
        total_ipv4=len(combined.ipv4_ips()),
        total_ipv6=len(combined.ipv6_ips()),
        dedicated_ipv4=len(dedicated.ipv4_ips()),
        dedicated_ipv6=len(dedicated.ipv6_ips()),
        shared_ips=context.result.validation.shared_count(),
        providers_with_ipv6=providers_with_ipv6,
    )


# -- Figure 3 (per-source contribution) --------------------------------------------------------


@dataclass
class Figure3Result:
    """Per-provider, per-source contribution of discovered addresses."""

    breakdowns: List[SourceBreakdown]

    def breakdown_for(self, provider_key: str, ip_version: int = 4) -> SourceBreakdown:
        """Return the breakdown of one provider/family."""
        for breakdown in self.breakdowns:
            if breakdown.provider_key == provider_key and breakdown.ip_version == ip_version:
                return breakdown
        raise KeyError((provider_key, ip_version))

    def render(self) -> str:
        headers = ["Provider", "Family", "#IPs"] + list(CATEGORIES)
        rows = []
        for breakdown in self.breakdowns:
            provider_name = get_provider(breakdown.provider_key).name
            rows.append(
                [
                    provider_name,
                    f"IPv{breakdown.ip_version}",
                    format_count(breakdown.total),
                ]
                + [format_percent(breakdown.fraction(category)) for category in CATEGORIES]
            )
        return render_table(headers, rows, title="Figure 3: contribution of each data source")


def fig3_source_contribution(context: ExperimentContext) -> Figure3Result:
    """Reproduce Figure 3 from the first study day's combined discovery."""
    first_day = min(context.result.daily_results)
    return Figure3Result(breakdowns=contribution_table(context.result.daily_results[first_day]))


# -- Figure 4 (stability) -------------------------------------------------------------------


@dataclass
class Figure4Result:
    """Day-over-day stability of the discovered server IP sets."""

    comparisons: List[StabilityComparison]

    def churn(self, provider_key: str, offset_day: date) -> float:
        """Churn fraction of a provider for a given compared day."""
        for comparison in self.comparisons:
            if comparison.provider_key == provider_key and comparison.compared_day == offset_day:
                return comparison.churn_fraction
        raise KeyError((provider_key, offset_day))

    def render(self) -> str:
        headers = ["Provider", "Compared day", "Both", "Only current", "Only reference", "Stable %"]
        rows = [
            [
                get_provider(c.provider_key).name,
                c.compared_day.isoformat(),
                c.in_both,
                c.only_current,
                c.only_reference,
                format_percent(c.stable_fraction),
            ]
            for c in self.comparisons
        ]
        return render_table(headers, rows, title="Figure 4: stability of backend IP sets")


def fig4_stability(context: ExperimentContext) -> Figure4Result:
    """Reproduce Figure 4 from the daily discovery results."""
    return Figure4Result(comparisons=stability_analysis(context.result.daily_results))


# -- Section 3.4 (ground truth + traffic coverage) ------------------------------------------------


@dataclass
class ValidationResult:
    """Ground-truth validation and traffic-coverage bounds (Section 3.4)."""

    ground_truth: Dict[str, object]
    traffic_reports: Dict[str, TrafficCoverageReport]

    def render(self) -> str:
        headers = ["Provider", "Published prefixes", "Discovered", "Inside ranges", "Precision"]
        rows = []
        for key, report in sorted(self.ground_truth.items()):
            rows.append(
                [
                    get_provider(key).name,
                    len(report.published_prefixes),
                    report.discovered_count,
                    report.discovered_inside,
                    format_percent(report.precision),
                ]
            )
        text = render_table(headers, rows, title="Section 3.4: ground-truth validation")
        coverage_rows = [
            [
                get_provider(key).name,
                report.active_server_ips,
                report.active_discovered,
                format_percent(report.underestimation_fraction, digits=2),
            ]
            for key, report in sorted(self.traffic_reports.items())
        ]
        text += "\n\n" + render_table(
            ["Provider", "Active server IPs", "Discovered among them", "Traffic underestimation"],
            coverage_rows,
        )
        return text


def sec34_validation(context: ExperimentContext) -> ValidationResult:
    """Reproduce the Section 3.4 validation against published ranges and ISP traffic."""
    flows = context.clean_flows()
    traffic_reports = {
        key: traffic_coverage(context.result.combined, key, flows)
        for key in context.world.published_ranges
    }
    return ValidationResult(
        ground_truth=dict(context.result.ground_truth),
        traffic_reports=traffic_reports,
    )
