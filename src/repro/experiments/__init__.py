"""Experiment harness: one function per table/figure of the paper.

Every function takes an :class:`~repro.experiments.context.ExperimentContext`
(which caches the expensive artifacts: the synthetic world, the discovery pipeline
run, and the generated flows) and returns a small result object with the figure's
data and a ``render()`` method producing the text the benchmark harness prints.

The module names follow the paper's artefacts:

* ``characterization`` — Table 1, Table 2 (Appendix A), Figures 2--4, Section 3.4/3.5.
* ``traffic_experiments`` — Figures 5--14 (Section 5).
* ``disruption_experiments`` — Figures 15--16, Section 6.2, and the ablations.
"""

from repro.experiments.context import ExperimentContext, build_context

__all__ = ["ExperimentContext", "build_context"]
