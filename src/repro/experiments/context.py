"""Shared experiment context.

Building the world, running the discovery pipeline, and generating a week of flows
are the expensive steps shared by every experiment; the context performs them once
and caches the results.  Benchmarks share a single context per scenario
configuration through :func:`build_context`'s module-level cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.pipeline import DiscoveryPipeline, PipelineResult
from repro.core.traffic import DEFAULT_SCANNER_THRESHOLD, ScannerExclusion
from repro.flows.anonymize import AnonymizationMap
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import FlowRecord, NetFlowCollector
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import World, build_world


@dataclass
class ExperimentContext:
    """Everything the individual experiments need, computed once."""

    config: ScenarioConfig
    world: World
    pipeline: DiscoveryPipeline
    result: PipelineResult
    anonymization: AnonymizationMap
    _flow_cache: Dict[Tuple, List[FlowRecord]] = field(default_factory=dict)
    _scanner_cache: Dict[Tuple[StudyPeriod, int], Set[int]] = field(default_factory=dict)
    _table_cache: Dict[Tuple, FlowTable] = field(default_factory=dict)

    # -- flows ---------------------------------------------------------------------

    def raw_flows(self, period: Optional[StudyPeriod] = None) -> List[FlowRecord]:
        """Sampled NetFlow export for a period, scanners included.

        Derived from :meth:`raw_table` — the columnar path is the generation
        source of truth; the record list is materialized once for the
        record-based call sites.
        """
        period = period or self.config.study_period
        key = (period, True)
        if key not in self._flow_cache:
            self._flow_cache[key] = self.raw_table(period).to_records()
        return self._flow_cache[key]

    def clean_flows(
        self,
        period: Optional[StudyPeriod] = None,
        threshold: int = DEFAULT_SCANNER_THRESHOLD,
    ) -> List[FlowRecord]:
        """Flows with scanner subscriber lines removed (the Section 5 baseline)."""
        period = period or self.config.study_period
        key = (period, threshold, False)
        if key not in self._flow_cache:
            self._flow_cache[key] = self.clean_table(period, threshold).to_records()
        return self._flow_cache[key]

    def scanner_lines(
        self,
        period: Optional[StudyPeriod] = None,
        threshold: int = DEFAULT_SCANNER_THRESHOLD,
    ) -> Set[int]:
        """The subscriber lines identified as scanners for a period/threshold.

        The scanner fan-out analysis runs on the cached columnar table, so it
        shares one record->column conversion with every other analysis.
        """
        period = period or self.config.study_period
        cache_key = (period, threshold)
        if cache_key not in self._scanner_cache:
            exclusion = ScannerExclusion(self.raw_table(period), self.result.dedicated.ips())
            self._scanner_cache[cache_key] = exclusion.scanner_lines(threshold)
        return self._scanner_cache[cache_key]

    def outage_flows(self) -> List[FlowRecord]:
        """Clean flows for the outage study period (December 2021)."""
        return self.clean_flows(self.config.outage_period)

    # -- columnar tables ---------------------------------------------------------

    def raw_table(self, period: Optional[StudyPeriod] = None) -> FlowTable:
        """Sampled NetFlow export for a period as a columnar table.

        Flows are generated straight into ``FlowTable`` columns and sampled
        column-wise; no intermediate record list exists on this path.
        """
        period = period or self.config.study_period
        key = (period, True)
        if key not in self._table_cache:
            generated = self.world.flows_table(period)
            collector = NetFlowCollector(self.config.sampling_ratio)
            self._table_cache[key] = collector.export_table(
                generated, self.world.rng.spawn("netflow")
            )
        return self._table_cache[key]

    def clean_table(
        self,
        period: Optional[StudyPeriod] = None,
        threshold: int = DEFAULT_SCANNER_THRESHOLD,
    ) -> FlowTable:
        """Columnar view of :meth:`clean_flows`, built once per period/threshold.

        The scanner-excluded table is derived from the raw table by a bulk
        subscriber filter, so the expensive record conversion happens once.
        """
        period = period or self.config.study_period
        key = (period, threshold, False)
        if key not in self._table_cache:
            scanners = self.scanner_lines(period, threshold)
            self._table_cache[key] = self.raw_table(period).exclude_subscribers(scanners)
        return self._table_cache[key]

    def outage_table(self) -> FlowTable:
        """Columnar view of the outage-period clean flows."""
        return self.clean_table(self.config.outage_period)

    # -- convenience ----------------------------------------------------------------

    @property
    def sampling_ratio(self) -> int:
        """The NetFlow sampling ratio of the scenario."""
        return self.config.sampling_ratio


_CONTEXT_CACHE: Dict[ScenarioConfig, ExperimentContext] = {}


def build_context(config: Optional[ScenarioConfig] = None, use_cache: bool = True) -> ExperimentContext:
    """Build (or fetch from cache) the experiment context for a configuration.

    The cache key is the full (frozen, hashable) :class:`ScenarioConfig`, so
    scenarios differing in *any* field — outage period, workload parameters,
    scanner settings — get distinct contexts instead of silently aliasing.
    """
    config = config or ScenarioConfig()
    cache_key = config
    if use_cache and cache_key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[cache_key]
    world = build_world(config)
    pipeline = DiscoveryPipeline(world)
    result = pipeline.run()
    context = ExperimentContext(
        config=config,
        world=world,
        pipeline=pipeline,
        result=result,
        anonymization=AnonymizationMap.build(),
    )
    if use_cache:
        _CONTEXT_CACHE[cache_key] = context
    return context
