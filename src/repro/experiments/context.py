"""Shared experiment context.

Building the world, running the discovery pipeline, and generating a week of
flows are the expensive steps shared by every experiment; the context performs
them once and caches the results.  Two cache layers exist:

* an in-process LRU keyed on the full frozen :class:`ScenarioConfig`
  (:func:`build_context`'s module-level cache, bounded so a sweep over dozens
  of configurations cannot hold every world in memory), and
* an optional on-disk :class:`~repro.store.artifacts.ArtifactStore`: when one
  is passed to :func:`build_context`, the generated, exported, and
  scanner-cleaned flow tables — and the discovery pipeline's full
  :class:`~repro.core.pipeline.PipelineResult` — warm-start from disk across
  processes.

The discovery pipeline is built *lazily*: a context whose flow tables all come
from the artifact store never pays for a discovery run it does not use.  This
is safe because the pipeline consumes no random streams — it is a pure
function of the already-built world — so running it before or after flow
generation yields bit-identical results.  When discovery *is* used (the
``discovery``/``table1`` experiments, scanner exclusion on a cold store), its
result is persisted under the ``discovery:<pattern fingerprint>`` stage and
later contexts skip classification entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.pipeline import DiscoveryPipeline, PipelineResult
from repro.core.traffic import DEFAULT_SCANNER_THRESHOLD, ScannerExclusion
from repro.flows.anonymize import AnonymizationMap
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import FlowRecord, NetFlowCollector
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import World, build_world

if TYPE_CHECKING:  # pragma: no cover - typing-only
    from repro.store.artifacts import ArtifactStore


class ExperimentContext:
    """Everything the individual experiments need, computed once."""

    def __init__(
        self,
        config: ScenarioConfig,
        world: World,
        anonymization: Optional[AnonymizationMap] = None,
        store: Optional["ArtifactStore"] = None,
        pipeline: Optional[DiscoveryPipeline] = None,
        result: Optional[PipelineResult] = None,
    ) -> None:
        self.config = config
        self.world = world
        self.anonymization = anonymization or AnonymizationMap.build()
        self.store = store
        self._pipeline = pipeline
        self._result = result
        self._flow_cache: Dict[Tuple, List[FlowRecord]] = {}
        self._scanner_cache: Dict[Tuple[StudyPeriod, int], Set[int]] = {}
        self._table_cache: Dict[Tuple, FlowTable] = {}

    # -- discovery (lazy) ----------------------------------------------------------

    @property
    def pipeline(self) -> DiscoveryPipeline:
        """The discovery pipeline, built on first use."""
        if self._pipeline is None:
            self._pipeline = DiscoveryPipeline(self.world)
        return self._pipeline

    @property
    def result(self) -> PipelineResult:
        """The discovery run, executed (or loaded from the store) on first use.

        Contexts that only read warm flow tables from the artifact store never
        trigger it.  With a store attached, the full
        :class:`~repro.core.pipeline.PipelineResult` warm-starts from disk —
        keyed on the frozen config, the study period, and the pattern-set
        fingerprint — so ``discovery``/``table1`` consumers skip classification
        entirely; a cold run persists its result for the next process.
        """
        if self._result is None:
            self._result = self._load_or_run_pipeline()
        return self._result

    def _load_or_run_pipeline(self) -> PipelineResult:
        stage = None
        period = self.config.study_period
        with span("context.discovery"):
            if self.store is not None:
                from repro.store.artifacts import discovery_stage

                stage = discovery_stage(self.pipeline.pattern_set)
                cached = self.store.get_pipeline_result(self.config, period, stage)
                if cached is not None:
                    obs_metrics.inc("context.discovery_warm_starts")
                    return cached
            result = self.pipeline.run(period)
            if self.store is not None:
                self.store.put_pipeline_result(self.config, period, stage, result)
        return result

    # -- flows ---------------------------------------------------------------------

    def raw_flows(self, period: Optional[StudyPeriod] = None) -> List[FlowRecord]:
        """Sampled NetFlow export for a period, scanners included.

        Derived from :meth:`raw_table` — the columnar path is the generation
        source of truth; the record list is materialized once for the
        record-based call sites.
        """
        period = period or self.config.study_period
        key = (period, True)
        if key not in self._flow_cache:
            self._flow_cache[key] = self.raw_table(period).to_records()
        return self._flow_cache[key]

    def clean_flows(
        self,
        period: Optional[StudyPeriod] = None,
        threshold: int = DEFAULT_SCANNER_THRESHOLD,
    ) -> List[FlowRecord]:
        """Flows with scanner subscriber lines removed (the Section 5 baseline)."""
        period = period or self.config.study_period
        key = (period, threshold, False)
        if key not in self._flow_cache:
            self._flow_cache[key] = self.clean_table(period, threshold).to_records()
        return self._flow_cache[key]

    def scanner_lines(
        self,
        period: Optional[StudyPeriod] = None,
        threshold: int = DEFAULT_SCANNER_THRESHOLD,
    ) -> Set[int]:
        """The subscriber lines identified as scanners for a period/threshold.

        The scanner fan-out analysis runs on the cached columnar table, so it
        shares one record->column conversion with every other analysis.
        """
        period = period or self.config.study_period
        cache_key = (period, threshold)
        if cache_key not in self._scanner_cache:
            exclusion = ScannerExclusion(self.raw_table(period), self.result.dedicated.ips())
            self._scanner_cache[cache_key] = exclusion.scanner_lines(threshold)
        return self._scanner_cache[cache_key]

    def outage_flows(self) -> List[FlowRecord]:
        """Clean flows for the outage study period (December 2021)."""
        return self.clean_flows(self.config.outage_period)

    # -- columnar tables ---------------------------------------------------------

    def raw_table(self, period: Optional[StudyPeriod] = None) -> FlowTable:
        """Sampled NetFlow export for a period as a columnar table.

        Flows are generated straight into ``FlowTable`` columns and sampled
        column-wise; no intermediate record list exists on this path.  With an
        artifact store attached the export warm-starts from disk, skipping
        generation and sampling entirely.
        """
        period = period or self.config.study_period
        key = (period, True)
        if key not in self._table_cache:
            self._table_cache[key] = self._load_or_build_raw(period)
        return self._table_cache[key]

    def _load_or_build_raw(self, period: StudyPeriod) -> FlowTable:
        stage = None
        with span("context.raw_table"):
            if self.store is not None:
                from repro.store.artifacts import STAGE_RAW_EXPORT

                stage = STAGE_RAW_EXPORT
                cached = self.store.get_table(self.config, period, stage)
                if cached is not None:
                    return cached
            generated = self.world.flows_table(period)
            with span("netflow.export"):
                collector = NetFlowCollector(self.config.sampling_ratio)
                table = collector.export_table(generated, self.world.rng.spawn("netflow"))
            if self.store is not None:
                self.store.put_table(self.config, period, stage, table)
        return table

    def clean_table(
        self,
        period: Optional[StudyPeriod] = None,
        threshold: int = DEFAULT_SCANNER_THRESHOLD,
    ) -> FlowTable:
        """Columnar view of :meth:`clean_flows`, built once per period/threshold.

        The scanner-excluded table is derived from the raw table by a bulk
        subscriber filter, so the expensive record conversion happens once.
        With an artifact store attached it warm-starts from disk, which also
        skips the discovery run the scanner exclusion needs.
        """
        period = period or self.config.study_period
        key = (period, threshold, False)
        if key not in self._table_cache:
            self._table_cache[key] = self._load_or_build_clean(period, threshold)
        return self._table_cache[key]

    def _load_or_build_clean(self, period: StudyPeriod, threshold: int) -> FlowTable:
        stage = None
        with span("context.clean_table"):
            if self.store is not None:
                from repro.store.artifacts import clean_stage

                stage = clean_stage(threshold)
                cached = self.store.get_table(self.config, period, stage)
                if cached is not None:
                    return cached
            scanners = self.scanner_lines(period, threshold)
            table = self.raw_table(period).exclude_subscribers(scanners)
            if self.store is not None:
                self.store.put_table(self.config, period, stage, table)
        return table

    def outage_table(self) -> FlowTable:
        """Columnar view of the outage-period clean flows."""
        return self.clean_table(self.config.outage_period)

    # -- convenience ----------------------------------------------------------------

    @property
    def sampling_ratio(self) -> int:
        """The NetFlow sampling ratio of the scenario."""
        return self.config.sampling_ratio


#: Upper bound of the in-process context cache.  Contexts hold a full world
#: plus every generated flow table, so the LRU stays deliberately small; bulk
#: multi-scenario work (``repro.sweeps``) bypasses it and relies on the disk
#: store instead.
CONTEXT_CACHE_MAX_ENTRIES = 4

_CONTEXT_CACHE: "OrderedDict[Tuple, ExperimentContext]" = OrderedDict()


def _cache_key(config: ScenarioConfig, store: Optional["ArtifactStore"]) -> Tuple:
    """The LRU key: the frozen config plus the attached store's identity.

    The store participates so a storeless hit can never shadow a store-backed
    request (or vice versa) — the same aliasing class the config-subset keys
    of PR 2 suffered from.
    """
    return (config, None if store is None else str(store.root.resolve()))


def build_context(
    config: Optional[ScenarioConfig] = None,
    use_cache: bool = True,
    store: Optional["ArtifactStore"] = None,
    gen_workers: Optional[int] = None,
) -> ExperimentContext:
    """Build (or fetch from cache) the experiment context for a configuration.

    The cache key is the full (frozen, hashable) :class:`ScenarioConfig`, so
    scenarios differing in *any* field — outage period, workload parameters,
    scanner settings — get distinct contexts instead of silently aliasing.
    The cache is a small LRU (:data:`CONTEXT_CACHE_MAX_ENTRIES`); callers that
    iterate many scenarios should pass ``use_cache=False`` and, for warm
    starts across runs, an :class:`~repro.store.artifacts.ArtifactStore`.

    ``gen_workers`` sets the hour-level generation parallelism of the
    context's world (see :mod:`repro.flows.parallel`).  It is an execution
    knob, not a scenario knob: flow tables are byte-identical at every worker
    count, so it participates in neither the LRU key nor the artifact-store
    content address.  Every call — cold build or cache hit — applies the
    requested value (``None`` means the serial default), so a context's
    parallelism always reflects the latest ``build_context`` call instead of
    whichever caller happened to build it first.
    """
    config = config or ScenarioConfig()
    effective_workers = max(1, gen_workers) if gen_workers is not None else 1
    cache_key = _cache_key(config, store)
    if use_cache:
        cached = _CONTEXT_CACHE.get(cache_key)
        if cached is not None:
            _CONTEXT_CACHE.move_to_end(cache_key)
            cached.world.gen_workers = effective_workers
            obs_metrics.inc("context.lru_hits")
            return cached
    obs_metrics.inc("context.cold_builds")
    with span("context.build"):
        world = build_world(config)
    world.artifact_store = store
    world.gen_workers = effective_workers
    context = ExperimentContext(config=config, world=world, store=store)
    if use_cache:
        _CONTEXT_CACHE[cache_key] = context
        while len(_CONTEXT_CACHE) > CONTEXT_CACHE_MAX_ENTRIES:
            _CONTEXT_CACHE.popitem(last=False)
    return context
