"""Disruption experiments (Figures 15--16, Section 6.2) and methodology ablations."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, time
from typing import Dict, List, Optional, Tuple

from repro.baselines.portscan_only import PortScanBaselineReport, portscan_only_discovery
from repro.core.disruption import (
    GROUP_ALL,
    GROUP_EU,
    GROUP_US_EAST,
    BgpExposureReport,
    BlocklistExposureReport,
    OutageImpactReport,
    bgp_exposure,
    blocklist_exposure,
    outage_impact,
)
from repro.core.discovery import BackendDiscovery, DiscoveryResult
from repro.core.providers import get_provider
from repro.core.report import format_count, format_percent, render_series, render_table
from repro.experiments.context import ExperimentContext
from repro.simulation.clock import AWS_OUTAGE_DATE, AWS_OUTAGE_HOURS


def _outage_window() -> Tuple[datetime, datetime]:
    start_hour, end_hour = AWS_OUTAGE_HOURS
    return (
        datetime.combine(AWS_OUTAGE_DATE, time(hour=start_hour)),
        datetime.combine(AWS_OUTAGE_DATE, time(hour=end_hour)),
    )


# -- Figures 15 and 16 ----------------------------------------------------------------------------


@dataclass
class OutageExperimentResult:
    """The AWS us-east-1 outage impact on the affected provider (T1 in the paper)."""

    provider_label: str
    report: OutageImpactReport

    def traffic_drop_us_east(self) -> float:
        """Relative downstream-traffic drop in the US-East group during the outage."""
        return self.report.drop_vs_previous_week(GROUP_US_EAST)

    def traffic_drop_eu(self) -> float:
        """Relative downstream-traffic drop in the EU group during the outage."""
        return self.report.drop_vs_previous_week(GROUP_EU)

    def line_drop_us_east(self) -> float:
        """Relative subscriber-line drop in the US-East group during the outage."""
        return self.report.line_drop_vs_previous_week(GROUP_US_EAST)

    def eu_to_us_traffic_ratio(self) -> float:
        """How much more traffic the EU regions serve compared to US-East overall."""
        eu_total = sum(self.report.traffic_series[GROUP_EU].values())
        us_total = sum(self.report.traffic_series[GROUP_US_EAST].values())
        return eu_total / us_total if us_total > 0 else float("inf")

    def render(self, figure: str = "15") -> str:
        title = (
            f"Figure {figure}: AWS outage impact on {self.provider_label} "
            f"({'downstream volume' if figure == '15' else 'subscriber lines'})"
        )
        series = (
            self.report.traffic_series if figure == "15" else {
                group: {k: float(v) for k, v in values.items()}
                for group, values in self.report.line_series.items()
            }
        )
        text = render_series(series, title=title)
        text += (
            f"\nUS-East traffic drop vs previous-week minimum: "
            f"{format_percent(self.traffic_drop_us_east())}"
            f"\nEU traffic drop vs previous-week minimum: {format_percent(self.traffic_drop_eu())}"
            f"\nUS-East subscriber-line drop: {format_percent(self.line_drop_us_east())}"
            f"\nEU/US-East traffic ratio: {self.eu_to_us_traffic_ratio():.1f}x"
        )
        return text


def fig15_fig16_outage(context: ExperimentContext, provider_label: str = "T1") -> OutageExperimentResult:
    """Reproduce Figures 15 and 16 for the provider affected by the AWS outage."""
    provider_key = context.anonymization.provider(provider_label)
    # Columnar table: outage_impact's masked kernels run on it directly and
    # the timestamp GroupIndex is shared across all six series.
    flows = context.outage_table()
    window = _outage_window()
    baseline = (
        datetime.combine(context.config.outage_period.start, time()),
        datetime.combine(AWS_OUTAGE_DATE, time()),
    )
    report = outage_impact(
        flows,
        provider_key,
        outage_window=window,
        baseline_window=baseline,
        sampling_ratio=context.sampling_ratio,
    )
    return OutageExperimentResult(provider_label=provider_label, report=report)


# -- Section 6.2 -----------------------------------------------------------------------------------


@dataclass
class PotentialDisruptionsResult:
    """BGP-event and blocklist exposure of the discovered backends (Section 6.2)."""

    bgp: BgpExposureReport
    blocklists: BlocklistExposureReport

    def render(self) -> str:
        bgp_rows = [[kind.value, count] for kind, count in self.bgp.counts_by_kind.items()]
        bgp_rows.append(["events affecting backends", len(self.bgp.affecting_events)])
        text = render_table(["BGP event kind", "count"], bgp_rows, title="Section 6.2: connectivity problems")
        block_rows = [
            [get_provider(key).name, len(matches)]
            for key, matches in sorted(self.blocklists.matches_by_provider.items())
        ]
        text += "\n\n" + render_table(
            ["Provider", "#listed IPs"],
            block_rows,
            title=f"Section 6.2: IP filtering ({self.blocklists.total_listed_ips} backend IPs listed)",
        )
        category_rows = [[category, count] for category, count in self.blocklists.category_counts().items()]
        text += "\n" + render_table(["Blocklist category", "#IPs"], category_rows)
        return text


def sec62_potential_disruptions(context: ExperimentContext) -> PotentialDisruptionsResult:
    """Reproduce the Section 6.2 analysis for the main study week."""
    bgp = bgp_exposure(
        context.world.bgp_events,
        context.result.combined,
        context.world.routing_table,
        context.config.study_period,
    )
    blocklists = blocklist_exposure(context.world.blocklists, context.result.combined)
    return PotentialDisruptionsResult(bgp=bgp, blocklists=blocklists)


# -- Ablations --------------------------------------------------------------------------------------


@dataclass
class PortScanAblationResult:
    """Port-scan-only baseline vs. the full methodology (Sections 4.4 / 7)."""

    report: PortScanBaselineReport

    def render(self) -> str:
        rows = [
            ["backend IPs (methodology, scanned)", len(self.report.reference_ips)],
            ["found by standard-IoT-port probing", len(self.report.true_positives)],
            ["missed by standard-IoT-port probing", len(self.report.missed_backends)],
            ["recall of port scanning", format_percent(self.report.recall)],
            ["candidate hosts without provider attribution", len(self.report.unattributable)],
        ]
        return render_table(["metric", "value"], rows, title="Ablation: port-scan-only baseline")


def ablation_portscan_baseline(context: ExperimentContext) -> PortScanAblationResult:
    """Run the port-scan-only baseline against the methodology's result."""
    snapshot = context.world.censys.snapshot(context.config.study_period.start)
    report = portscan_only_discovery(snapshot, context.result.combined)
    return PortScanAblationResult(report=report)


@dataclass
class VantagePointAblationResult:
    """Coverage gained by resolving from three vantage points instead of one."""

    single_vp_ips: int
    all_vp_ips: int

    @property
    def gain_fraction(self) -> float:
        """Relative increase in active-DNS-discovered addresses."""
        if self.single_vp_ips == 0:
            return 0.0
        return (self.all_vp_ips - self.single_vp_ips) / self.single_vp_ips

    def render(self) -> str:
        rows = [
            ["addresses via 1 vantage point", self.single_vp_ips],
            ["addresses via 3 vantage points", self.all_vp_ips],
            ["coverage gain", format_percent(self.gain_fraction)],
        ]
        return render_table(["metric", "value"], rows, title="Ablation: active-DNS vantage points")


def ablation_vantage_points(context: ExperimentContext) -> VantagePointAblationResult:
    """Quantify the Section 3.3 coverage gain from multiple vantage points."""
    discovery = BackendDiscovery(context.pipeline.pattern_set)
    period = context.config.study_period
    passive = discovery.discover_from_passive_dns(
        context.world.passive_dns, since=period.start, until=period.end
    )
    domains = sorted(passive.domains())
    single = discovery.discover_from_active_dns(
        context.world.authoritative, context.world.vantage_points[:1], domains
    )
    full = discovery.discover_from_active_dns(
        context.world.authoritative, context.world.vantage_points, domains
    )
    return VantagePointAblationResult(
        single_vp_ips=len(single.ips()), all_vp_ips=len(full.ips())
    )
