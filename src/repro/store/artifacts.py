"""Content-addressed on-disk cache of serialized flow tables.

An :class:`ArtifactStore` maps a *scenario fingerprint* — the SHA-256 of the
frozen :class:`~repro.simulation.config.ScenarioConfig` repr, the study-period
dates, the pipeline stage, and a format-version tag — to a serialized
:class:`~repro.flows.flowtable.FlowTable` on disk.  Because the fingerprint
covers every scenario knob, two configurations differing in any field hash to
different artifacts, and a codec or fingerprint version bump orphans (never
mis-reads) old files.

Three stages are cached along the generation path:

* ``generated:*`` — the raw workload of a period (``World.flows_table``),
* ``raw-export`` — the packet-sampled NetFlow export (``ExperimentContext.raw_table``),
* ``clean:<threshold>`` — the scanner-excluded baseline (``ExperimentContext.clean_table``),

plus one along the discovery path:

* ``discovery:<pattern fingerprint>`` — the full
  :class:`~repro.core.pipeline.PipelineResult` of a study period
  (``ExperimentContext.result``).  The stage tag embeds the SHA-256
  fingerprint of the pattern set that classified the names, so a changed
  pattern collection can never be served stale footprints.

Writes are atomic (temp file + ``os.replace``) so concurrent sweep workers can
share one store directory; a corrupt or truncated artifact is treated as a
cache miss and removed.  Table reads default to the zero-copy mmap path
(:func:`~repro.store.codec.load_table_mmap`): the payload is mapped, columns
stay on the map as :class:`~repro.flows.flowtable.LazyColumn` views until
first touch, and every way a bad file can fail the mapping or the parse folds
into the same corrupt-fallback miss.  ``IOT_REPRO_STORE_MMAP=0`` (or
``ArtifactStore(mmap_reads=False)``) restores the eager decoder.  Every
payload file has a JSON sidecar with human-readable metadata, which powers
``iot-backend-repro cache ls``.

Artifacts live in a **digest-sharded layout**: payload and sidecar of digest
``abcdef…`` are stored under ``ab/cdef….rft`` / ``ab/cdef….json``, fanning a
campaign's files out over up to 256 subdirectories so thousand-scenario
sweeps do not serialize on one hot directory.  Stores written by earlier
versions used a flat layout (``abcdef….rft`` at the root); reads fall back to
the flat path transparently, and re-writing an artifact migrates it into its
shard (removing the flat copy), so old stores keep working without a
migration step.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.flows.flowtable import FlowTable
from repro.obs import metrics as obs_metrics
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.store.codec import (
    CODEC_VERSION,
    DISCOVERY_CODEC_VERSION,
    StoreFormatError,
    dump_pipeline_result,
    dump_table,
    load_pipeline_result,
    load_table,
    load_table_mmap,
)

#: Bump when the fingerprint recipe itself changes.
FINGERPRINT_VERSION = 1

_PAYLOAD_SUFFIX = ".rft"
_META_SUFFIX = ".json"

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "IOT_REPRO_STORE"

#: Environment variable toggling mmap-backed table reads (``1``/``0``; the
#: default is on).  The eager path remains available per-store via the
#: ``mmap_reads`` constructor argument.
STORE_MMAP_ENV_VAR = "IOT_REPRO_STORE_MMAP"


def _mmap_reads_default() -> bool:
    """Resolve the mmap-read toggle from the environment (default on)."""
    raw = os.environ.get(STORE_MMAP_ENV_VAR, "").strip().lower()
    if not raw:
        return True
    return raw not in ("0", "false", "no", "off")

#: Stage tags of the cached steps along the generation path.
STAGE_GENERATED_ALL = "generated:with-scanners"
STAGE_GENERATED_DEVICES = "generated:devices-only"
STAGE_RAW_EXPORT = "raw-export"


def generated_stage(include_scanners: bool) -> str:
    """Stage tag of a generated workload table."""
    return STAGE_GENERATED_ALL if include_scanners else STAGE_GENERATED_DEVICES


def clean_stage(threshold: int) -> str:
    """Stage tag of a scanner-excluded table at one exclusion threshold."""
    return f"clean:{threshold}"


def discovery_stage(pattern_set) -> str:
    """Stage tag of a persisted discovery run under one pattern collection.

    The tag embeds a prefix of :meth:`~repro.core.patterns.PatternSet.fingerprint`
    (itself a SHA-256, so 16 hex digits keep collisions out of reach), making
    the pattern set part of the artifact's content address: a pipeline running
    different patterns addresses — and misses — a different slot.
    """
    return f"discovery:{pattern_set.fingerprint()[:16]}"


def default_store_root() -> Path:
    """The default store directory (``$IOT_REPRO_STORE`` or ``~/.cache/iot-backend-repro``)."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "iot-backend-repro"


def config_digest(config: ScenarioConfig) -> str:
    """A stable SHA-256 digest of a frozen scenario configuration."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


def scenario_fingerprint(config: ScenarioConfig, period: StudyPeriod, stage: str) -> str:
    """The content address of one (config, period, stage) artifact.

    Only the period *dates* participate: flows are a pure function of the
    covered days, so two periods differing only in their display name share
    one artifact.
    """
    payload = "|".join(
        (
            f"fingerprint={FINGERPRINT_VERSION}",
            f"codec={CODEC_VERSION}",
            f"stage={stage}",
            f"period={period.start.isoformat()}..{period.end.isoformat()}",
            f"config={config!r}",
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArtifactEntry:
    """Metadata of one stored artifact (from its JSON sidecar)."""

    digest: str
    stage: str
    period: str
    rows: int
    payload_bytes: int
    created: float
    config: str

    @property
    def age_seconds(self) -> float:
        return max(0.0, time.time() - self.created)


class ArtifactStore:
    """A content-addressed directory of serialized flow tables."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        mmap_reads: Optional[bool] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.root.mkdir(parents=True, exist_ok=True)
        #: When true (the default, overridable via ``IOT_REPRO_STORE_MMAP``),
        #: :meth:`get_table` maps payloads and decodes columns lazily instead
        #: of copying the whole file through ``read()``.
        self.mmap_reads = _mmap_reads_default() if mmap_reads is None else bool(mmap_reads)

    # -- addressing --------------------------------------------------------------

    def _payload_path(self, digest: str) -> Path:
        """The sharded (``ab/cdef…``) payload path of one digest."""
        return self.root / digest[:2] / f"{digest[2:]}{_PAYLOAD_SUFFIX}"

    def _meta_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}{_META_SUFFIX}"

    def _legacy_payload_path(self, digest: str) -> Path:
        """The pre-sharding flat payload path (read/cleanup compatibility)."""
        return self.root / f"{digest}{_PAYLOAD_SUFFIX}"

    def _legacy_meta_path(self, digest: str) -> Path:
        return self.root / f"{digest}{_META_SUFFIX}"

    def _open_payload(self, digest: str):
        """Open the payload of a digest, trying sharded then legacy layout."""
        try:
            return self._payload_path(digest).open("rb")
        except FileNotFoundError:
            return self._legacy_payload_path(digest).open("rb")

    def _payload_file(self, digest: str) -> Path:
        """The existing payload path of a digest (sharded then legacy).

        Raises :class:`FileNotFoundError` when neither layout has the file,
        mirroring :meth:`_open_payload` for the mmap read path.
        """
        path = self._payload_path(digest)
        if path.is_file():
            return path
        legacy = self._legacy_payload_path(digest)
        if legacy.is_file():
            return legacy
        raise FileNotFoundError(str(path))

    def _tmp_suffix(self) -> str:
        """Unique temp-file suffix per writer (process *and* thread)."""
        return f".tmp-{os.getpid()}-{threading.get_ident()}"

    # -- read / write ------------------------------------------------------------

    def get_table(
        self, config: ScenarioConfig, period: StudyPeriod, stage: str
    ) -> Optional[FlowTable]:
        """Load the artifact of (config, period, stage), or None on a miss.

        A corrupt payload (partial write of a crashed process, codec version
        skew) counts as a miss and is deleted so the slot can be rebuilt.
        With :attr:`mmap_reads` on, the payload is mapped and decoded lazily
        (:func:`~repro.store.codec.load_table_mmap`); everything that mode
        can throw on a bad file -- including the ``ValueError`` an empty file
        provokes in ``mmap`` and any ``BufferError`` from the mapping layer --
        is folded into the same corrupt-fallback path, so callers only ever
        see a table or ``None``.
        """
        digest = scenario_fingerprint(config, period, stage)
        try:
            if self.mmap_reads:
                path = self._payload_file(digest)
                payload_bytes = path.stat().st_size
                table = load_table_mmap(path)
            else:
                with self._open_payload(digest) as stream:
                    payload_bytes = os.fstat(stream.fileno()).st_size
                    table = load_table(stream)
            obs_metrics.inc("store.hits")
            obs_metrics.inc("store.bytes_read", float(payload_bytes))
            return table
        except FileNotFoundError:
            obs_metrics.inc("store.misses")
            return None
        except (StoreFormatError, ValueError, OSError, BufferError):
            self._discard(digest)
            obs_metrics.inc("store.misses")
            obs_metrics.inc("store.corrupt_fallbacks")
            return None

    def put_table(
        self, config: ScenarioConfig, period: StudyPeriod, stage: str, table: FlowTable
    ) -> Path:
        """Persist a table under its scenario fingerprint (atomic)."""
        digest = scenario_fingerprint(config, period, stage)
        path = self._payload_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}{self._tmp_suffix()}")
        try:
            with tmp.open("wb") as stream:
                dump_table(table, stream)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._write_sidecar(
            digest,
            stage=stage,
            period=period,
            rows=len(table),
            payload_bytes=path.stat().st_size,
            config=config,
        )
        return path

    @staticmethod
    def _pipeline_fingerprint_stage(stage: str) -> str:
        """The fingerprint-facing stage tag of a pipeline-result artifact.

        Folds the discovery codec version into the address so a codec bump
        orphans (never mis-reads) old discovery artifacts without disturbing
        the flow-table slots.
        """
        return f"{stage}|discovery-codec={DISCOVERY_CODEC_VERSION}"

    def get_pipeline_result(
        self, config: ScenarioConfig, period: StudyPeriod, stage: str
    ):
        """Load the pipeline result of (config, period, stage), or None on a miss.

        Exactly like :meth:`get_table`, a corrupt or truncated payload counts
        as a miss and is deleted, so callers transparently fall back to a cold
        discovery run and rebuild the slot.
        """
        digest = scenario_fingerprint(config, period, self._pipeline_fingerprint_stage(stage))
        try:
            with self._open_payload(digest) as stream:
                payload_bytes = os.fstat(stream.fileno()).st_size
                result = load_pipeline_result(stream)
            obs_metrics.inc("store.hits")
            obs_metrics.inc("store.bytes_read", float(payload_bytes))
            return result
        except FileNotFoundError:
            obs_metrics.inc("store.misses")
            return None
        except (StoreFormatError, OSError):
            self._discard(digest)
            obs_metrics.inc("store.misses")
            obs_metrics.inc("store.corrupt_fallbacks")
            return None

    def put_pipeline_result(
        self, config: ScenarioConfig, period: StudyPeriod, stage: str, result
    ) -> Path:
        """Persist a pipeline result under its scenario fingerprint (atomic)."""
        digest = scenario_fingerprint(config, period, self._pipeline_fingerprint_stage(stage))
        path = self._payload_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}{self._tmp_suffix()}")
        try:
            with tmp.open("wb") as stream:
                dump_pipeline_result(result, stream)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._write_sidecar(
            digest,
            stage=stage,
            period=period,
            rows=result.combined.total_count(),
            payload_bytes=path.stat().st_size,
            config=config,
        )
        return path

    def _write_sidecar(
        self,
        digest: str,
        stage: str,
        period: StudyPeriod,
        rows: int,
        payload_bytes: int,
        config: ScenarioConfig,
    ) -> None:
        """Write (atomically) the JSON metadata sidecar of one artifact."""
        meta = {
            "digest": digest,
            "stage": stage,
            "period": f"{period.start.isoformat()}..{period.end.isoformat()}",
            "rows": rows,
            "payload_bytes": payload_bytes,
            "created": time.time(),
            "config": repr(config),
            "fingerprint_version": FINGERPRINT_VERSION,
            "codec_version": CODEC_VERSION,
        }
        meta_path = self._meta_path(digest)
        meta_path.parent.mkdir(parents=True, exist_ok=True)
        meta_tmp = meta_path.with_name(f"{meta_path.name}{self._tmp_suffix()}")
        try:
            meta_tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
            os.replace(meta_tmp, meta_path)
        finally:
            if meta_tmp.exists():
                meta_tmp.unlink()
        obs_metrics.inc("store.writes")
        obs_metrics.inc("store.bytes_written", float(payload_bytes))
        # Migration on write: a re-written artifact supersedes any flat-layout
        # copy of itself, so the legacy files are dropped to avoid duplicates.
        migrated = False
        for legacy in (self._legacy_payload_path(digest), self._legacy_meta_path(digest)):
            try:
                legacy.unlink()
                migrated = True
            except OSError:
                pass
        if migrated:
            obs_metrics.inc("store.migrations")

    def _discard(self, digest: str) -> int:
        """Remove one artifact (payload + sidecar, both layouts); return bytes freed."""
        freed = 0
        for path in (
            self._payload_path(digest),
            self._meta_path(digest),
            self._legacy_payload_path(digest),
            self._legacy_meta_path(digest),
        ):
            try:
                freed += path.stat().st_size
                path.unlink()
            except OSError:
                pass
        return freed

    # -- inspection / maintenance ------------------------------------------------

    def _meta_paths(self) -> List[Path]:
        """Every sidecar file, sharded layout first, then legacy flat files."""
        return sorted(self.root.glob(f"*/*{_META_SUFFIX}")) + sorted(
            self.root.glob(f"*{_META_SUFFIX}")
        )

    def _payload_exists(self, digest: str) -> bool:
        return (
            self._payload_path(digest).exists() or self._legacy_payload_path(digest).exists()
        )

    def entries(self) -> List[ArtifactEntry]:
        """All stored artifacts (either layout), oldest first."""
        entries: List[ArtifactEntry] = []
        seen: set = set()
        for meta_path in self._meta_paths():
            try:
                meta = json.loads(meta_path.read_text())
                entry = ArtifactEntry(
                    digest=str(meta["digest"]),
                    stage=str(meta["stage"]),
                    period=str(meta["period"]),
                    rows=int(meta["rows"]),
                    payload_bytes=int(meta["payload_bytes"]),
                    created=float(meta["created"]),
                    config=str(meta["config"]),
                )
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                continue
            # Sharded sidecars are listed first, so they win over a stale
            # legacy duplicate of the same digest.
            if entry.digest in seen:
                continue
            if self._payload_exists(entry.digest):
                seen.add(entry.digest)
                entries.append(entry)
        entries.sort(key=lambda entry: (entry.created, entry.digest))
        return entries

    def total_bytes(self) -> int:
        """Total payload bytes currently stored."""
        return sum(entry.payload_bytes for entry in self.entries())

    def prune(self, older_than_seconds: Optional[float] = None) -> Tuple[int, int]:
        """Delete artifacts (all of them, or only those older than a cutoff).

        Returns ``(artifacts_removed, bytes_freed)``.  Stray files that lost
        their sidecar (or vice versa) are cleaned up as well when pruning
        everything.
        """
        removed = 0
        freed = 0
        for entry in self.entries():
            if older_than_seconds is not None and entry.age_seconds < older_than_seconds:
                continue
            freed += self._discard(entry.digest)
            removed += 1
        if older_than_seconds is None:
            for pattern in (f"*{_PAYLOAD_SUFFIX}", f"*/*{_PAYLOAD_SUFFIX}"):
                for path in self.root.glob(pattern):
                    try:
                        freed += path.stat().st_size
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            for pattern in (f"*{_META_SUFFIX}", f"*/*{_META_SUFFIX}"):
                for path in self.root.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()  # only empty shard directories go away
                    except OSError:
                        pass
        return removed, freed
