"""Persistent artifact layer: columnar serialization + content-addressed cache.

The store turns the in-memory world-build memoization into something durable:

* :mod:`repro.store.codec` — a binary columnar serialization format for
  :class:`~repro.flows.flowtable.FlowTable` (tagged value pools + raw typed
  ``array`` column bytes, no numpy, no pickle).
* :mod:`repro.store.artifacts` — :class:`ArtifactStore`, a content-addressed
  on-disk cache keyed by the SHA-256 of the frozen scenario configuration, the
  study period, the pipeline stage, and a format-version tag.  ``World`` and
  ``ExperimentContext`` consult it so repeated runs (CLI invocations,
  benchmark sessions, sweep workers) warm-start from disk instead of
  regenerating a week of flows.
"""

from repro.store.codec import (
    CODEC_VERSION,
    StoreFormatError,
    dump_table,
    dumps_table,
    load_table,
    loads_table,
)
from repro.store.artifacts import (
    ArtifactEntry,
    ArtifactStore,
    config_digest,
    default_store_root,
)

__all__ = [
    "CODEC_VERSION",
    "StoreFormatError",
    "dump_table",
    "dumps_table",
    "load_table",
    "loads_table",
    "ArtifactEntry",
    "ArtifactStore",
    "config_digest",
    "default_store_root",
]
