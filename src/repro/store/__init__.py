"""Persistent artifact layer: columnar serialization + content-addressed cache.

The store turns the in-memory world-build memoization into something durable:

* :mod:`repro.store.codec` — a binary serialization format for
  :class:`~repro.flows.flowtable.FlowTable` (tagged value pools + raw typed
  ``array`` column bytes) and for discovery footprints
  (:class:`~repro.core.discovery.DiscoveryResult` /
  :class:`~repro.core.pipeline.PipelineResult`, same tagged-pool style), with
  no numpy and no pickle anywhere.  Tables additionally load zero-copy:
  :func:`load_table_mmap` / :func:`load_table_lazy` keep column bytes on the
  mapped artifact until first touch.
* :mod:`repro.store.artifacts` — :class:`ArtifactStore`, a content-addressed
  on-disk cache keyed by the SHA-256 of the frozen scenario configuration, the
  study period, the pipeline stage, and a format-version tag (discovery
  artifacts additionally key on the pattern-set fingerprint).  ``World`` and
  ``ExperimentContext`` consult it so repeated runs (CLI invocations,
  benchmark sessions, sweep workers) warm-start from disk instead of
  regenerating a week of flows or re-running the discovery pipeline.
"""

from repro.store.codec import (
    CODEC_VERSION,
    DISCOVERY_CODEC_VERSION,
    StoreFormatError,
    dump_discovery,
    dump_pipeline_result,
    dump_table,
    dumps_discovery,
    dumps_pipeline_result,
    dumps_table,
    load_discovery,
    load_pipeline_result,
    load_table,
    load_table_lazy,
    load_table_mmap,
    loads_discovery,
    loads_pipeline_result,
    loads_table,
)
from repro.store.artifacts import (
    ArtifactEntry,
    ArtifactStore,
    config_digest,
    default_store_root,
    discovery_stage,
)

__all__ = [
    "CODEC_VERSION",
    "DISCOVERY_CODEC_VERSION",
    "StoreFormatError",
    "dump_discovery",
    "dump_pipeline_result",
    "dump_table",
    "dumps_discovery",
    "dumps_pipeline_result",
    "dumps_table",
    "load_discovery",
    "load_pipeline_result",
    "load_table",
    "load_table_lazy",
    "load_table_mmap",
    "loads_discovery",
    "loads_pipeline_result",
    "loads_table",
    "ArtifactEntry",
    "ArtifactStore",
    "config_digest",
    "default_store_root",
    "discovery_stage",
]
