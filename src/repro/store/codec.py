"""Binary columnar serialization for :class:`~repro.flows.flowtable.FlowTable`.

The format mirrors the table's in-memory layout, so serialization is a
straight dump of each column and deserialization rebuilds the table without a
per-row decode step:

* a fixed header (magic, codec version, byte order, row count),
* one block per dictionary-encoded column: the value pool as tagged scalars
  (str / int / float / bool / date / datetime / None) followed by the raw
  bytes of the ``array('i')`` code column,
* one block per numeric column: typecode plus the raw ``array`` bytes.

Raw column bytes round-trip bit-exactly (floats keep their bit pattern), so
``loads_table(dumps_table(t)).to_records() == t.to_records()`` holds for any
table.  The byte order of the writing host is recorded in the header and the
arrays are byte-swapped on load when it differs, so artifacts are portable.
No pickle is involved anywhere: a corrupted or truncated file raises
:class:`StoreFormatError` instead of executing anything.
"""

from __future__ import annotations

import io
import struct
import sys
from array import array
from datetime import date, datetime
from typing import BinaryIO, Callable, Dict, List

from repro.flows.flowtable import CATEGORICAL_COLUMNS, NUMERIC_COLUMNS, FlowTable

#: Bump on any incompatible change to the byte layout below.
CODEC_VERSION = 1

_MAGIC = b"RFTB"
_LITTLE = 0
_BIG = 1
_LOCAL_ORDER = _LITTLE if sys.byteorder == "little" else _BIG

# Tagged scalar encoding for pool values.
_TAG_NONE = 0
_TAG_STR = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_BOOL = 4
_TAG_DATETIME = 5
_TAG_DATE = 6


class StoreFormatError(ValueError):
    """Raised when a serialized table is corrupt, truncated, or incompatible."""


def _write_str(write: Callable[[bytes], object], text: str) -> None:
    data = text.encode("utf-8")
    write(struct.pack("<I", len(data)))
    write(data)


def _write_value(write: Callable[[bytes], object], value: object) -> None:
    if value is None:
        write(struct.pack("<B", _TAG_NONE))
    elif isinstance(value, bool):  # before int: bool is an int subclass
        write(struct.pack("<BB", _TAG_BOOL, 1 if value else 0))
    elif isinstance(value, int):
        write(struct.pack("<Bq", _TAG_INT, value))
    elif isinstance(value, float):
        write(struct.pack("<Bd", _TAG_FLOAT, value))
    elif isinstance(value, datetime):  # before date: datetime is a date subclass
        write(struct.pack("<B", _TAG_DATETIME))
        _write_str(write, value.isoformat())
    elif isinstance(value, date):
        write(struct.pack("<B", _TAG_DATE))
        _write_str(write, value.isoformat())
    elif isinstance(value, str):
        write(struct.pack("<B", _TAG_STR))
        _write_str(write, value)
    else:
        raise StoreFormatError(f"unsupported pool value type {type(value).__name__!r}")


def _write_array(write: Callable[[bytes], object], column: array) -> None:
    payload = column.tobytes()
    write(struct.pack("<cBQ", column.typecode.encode("ascii"), column.itemsize, len(payload)))
    write(payload)


def dump_table(table: FlowTable, stream: BinaryIO) -> None:
    """Serialize a table to a binary stream."""
    write = stream.write
    write(_MAGIC)
    write(struct.pack("<BBQ", CODEC_VERSION, _LOCAL_ORDER, len(table)))
    write(struct.pack("<H", len(CATEGORICAL_COLUMNS)))
    for name in CATEGORICAL_COLUMNS:
        _write_str(write, name)
        pool = table.pool(name)
        write(struct.pack("<I", len(pool)))
        for value in pool:
            _write_value(write, value)
        _write_array(write, table.codes(name))
    write(struct.pack("<H", len(NUMERIC_COLUMNS)))
    for name, _typecode in NUMERIC_COLUMNS:
        _write_str(write, name)
        _write_array(write, table.numeric(name))


def dumps_table(table: FlowTable) -> bytes:
    """Serialize a table to bytes."""
    buffer = io.BytesIO()
    dump_table(table, buffer)
    return buffer.getvalue()


class _Reader:
    """Bounds-checked cursor over the serialized byte stream."""

    __slots__ = ("_stream",)

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def take(self, count: int) -> bytes:
        data = self._stream.read(count)
        if len(data) != count:
            raise StoreFormatError(
                f"truncated table: wanted {count} bytes, got {len(data)}"
            )
        return data

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def read_str(self) -> str:
        (length,) = self.unpack("<I")
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise StoreFormatError(f"corrupt string field: {error}") from None

    def read_value(self) -> object:
        (tag,) = self.unpack("<B")
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_BOOL:
            return bool(self.unpack("<B")[0])
        if tag == _TAG_INT:
            return self.unpack("<q")[0]
        if tag == _TAG_FLOAT:
            return self.unpack("<d")[0]
        if tag == _TAG_DATETIME:
            return datetime.fromisoformat(self.read_str())
        if tag == _TAG_DATE:
            return date.fromisoformat(self.read_str())
        if tag == _TAG_STR:
            return self.read_str()
        raise StoreFormatError(f"unknown pool value tag {tag}")

    def read_array(self, byte_order: int) -> array:
        typecode_raw, itemsize, nbytes = self.unpack("<cBQ")
        typecode = typecode_raw.decode("ascii")
        try:
            column = array(typecode)
        except ValueError as error:
            raise StoreFormatError(f"bad array typecode {typecode!r}") from None
        if column.itemsize != itemsize:
            raise StoreFormatError(
                f"array {typecode!r} itemsize mismatch: stored {itemsize}, "
                f"local {column.itemsize}"
            )
        if nbytes % itemsize:
            raise StoreFormatError(
                f"array byte length {nbytes} is not a multiple of itemsize {itemsize}"
            )
        column.frombytes(self.take(nbytes))
        if byte_order != _LOCAL_ORDER:
            column.byteswap()
        return column


def load_table(stream: BinaryIO) -> FlowTable:
    """Deserialize a table written by :func:`dump_table`."""
    reader = _Reader(stream)
    if reader.take(len(_MAGIC)) != _MAGIC:
        raise StoreFormatError("not a serialized FlowTable (bad magic)")
    version, byte_order, length = reader.unpack("<BBQ")
    if version != CODEC_VERSION:
        raise StoreFormatError(
            f"unsupported codec version {version} (expected {CODEC_VERSION})"
        )
    if byte_order not in (_LITTLE, _BIG):
        raise StoreFormatError(f"bad byte-order flag {byte_order}")

    (n_categorical,) = reader.unpack("<H")
    if n_categorical != len(CATEGORICAL_COLUMNS):
        raise StoreFormatError(
            f"categorical column count mismatch: stored {n_categorical}, "
            f"schema has {len(CATEGORICAL_COLUMNS)}"
        )
    table = FlowTable()
    codes: Dict[str, array] = {}
    for expected in CATEGORICAL_COLUMNS:
        name = reader.read_str()
        if name != expected:
            raise StoreFormatError(
                f"categorical column order mismatch: stored {name!r}, expected {expected!r}"
            )
        (pool_size,) = reader.unpack("<I")
        pool: List[object] = [reader.read_value() for _ in range(pool_size)]
        column = reader.read_array(byte_order)
        if len(column) != length:
            raise StoreFormatError(
                f"column {name!r}: {len(column)} codes for {length} rows"
            )
        if column and not all(0 <= code < pool_size for code in column):
            raise StoreFormatError(f"column {name!r}: code out of pool range")
        # Re-interning the pool in order reproduces the original codes, so the
        # code column can be adopted verbatim.  Re-interning deduplicates, so
        # a corrupt pool with repeated values would otherwise shrink and leave
        # codes dangling past its end — reject it here, not at first access.
        for value in pool:
            table.encode_value(name, value)
        if len(table.pool(name)) != pool_size:
            raise StoreFormatError(f"column {name!r}: pool contains duplicate values")
        codes[name] = column

    (n_numeric,) = reader.unpack("<H")
    if n_numeric != len(NUMERIC_COLUMNS):
        raise StoreFormatError(
            f"numeric column count mismatch: stored {n_numeric}, "
            f"schema has {len(NUMERIC_COLUMNS)}"
        )
    numeric: Dict[str, array] = {}
    for expected, typecode in NUMERIC_COLUMNS:
        name = reader.read_str()
        if name != expected:
            raise StoreFormatError(
                f"numeric column order mismatch: stored {name!r}, expected {expected!r}"
            )
        column = reader.read_array(byte_order)
        if column.typecode != typecode:
            raise StoreFormatError(
                f"column {name!r}: stored typecode {column.typecode!r}, "
                f"schema expects {typecode!r}"
            )
        if len(column) != length:
            raise StoreFormatError(
                f"column {name!r}: {len(column)} values for {length} rows"
            )
        numeric[name] = column
    table.append_columns(length, codes, numeric)
    return table


def loads_table(data: bytes) -> FlowTable:
    """Deserialize a table from bytes."""
    return load_table(io.BytesIO(data))
