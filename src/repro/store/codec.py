"""Binary serialization for flow tables and discovery-pipeline results.

Two artifact families share the same no-pickle, tagged-scalar byte style:

**Flow tables.**  The format mirrors the table's in-memory layout, so
serialization is a straight dump of each column and deserialization rebuilds
the table without a per-row decode step:

* a fixed header (magic, codec version, byte order, row count),
* one block per dictionary-encoded column: the value pool as tagged scalars
  (str / int / float / bool / date / datetime / None) followed by the raw
  bytes of the ``array('i')`` code column,
* one block per numeric column: typecode plus the raw ``array`` bytes.

Raw column bytes round-trip bit-exactly (floats keep their bit pattern), so
``loads_table(dumps_table(t)).to_records() == t.to_records()`` holds for any
table.  The byte order of the writing host is recorded in the header and the
arrays are byte-swapped on load when it differs, so artifacts are portable.

**Discovery footprints.**  :func:`dump_discovery` /
:func:`dump_pipeline_result` persist a
:class:`~repro.core.discovery.DiscoveryResult` or a full
:class:`~repro.core.pipeline.PipelineResult` (daily results, combined set,
shared-IP validation, per-provider footprints, ground truth, and the pattern
set that produced it) in the same tagged-pool style: every scalar of a
discovery result goes through a deduplicating value pool (provider keys,
addresses, sources, and domains repeat heavily) and structures reference pool
indices.  ``load_pipeline_result(dump_pipeline_result(r)) == r`` holds
dataclass-for-dataclass.

**Zero-copy reads.**  Flow tables additionally have a lazy read path:
:func:`load_table_lazy` parses only the header, the value pools, and the block
offset table of a serialized table held in a byte buffer, wrapping every
code/numeric column in a :class:`~repro.flows.flowtable.LazyColumn` over the
buffer instead of copying it; :func:`load_table_mmap` mmaps a payload file and
does the same over the map, so a warm start touches no column bytes until an
analysis does.  The structural checks (magic, versions, schema, pool
integrity, block offsets and lengths against the header row count and the
mapped size) still run eagerly, so truncation and length-field corruption
raise :class:`StoreFormatError` at load time; the per-code range check is
deferred into the lazy column and raises on first touch.  Artifacts written
by a foreign-byte-order host, or with unexpected (but decodable) column
typecodes, transparently fall back to the eager decoder.

No pickle is involved anywhere: a corrupted or truncated file raises
:class:`StoreFormatError` instead of executing anything.
"""

from __future__ import annotations

import io
import struct
import sys
from array import array
from datetime import date, datetime
from typing import BinaryIO, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.flows.flowtable import (
    CATEGORICAL_COLUMNS,
    NUMERIC_COLUMNS,
    FlowTable,
    LazyColumn,
)

#: Bump on any incompatible change to the byte layout below.
CODEC_VERSION = 1

#: Bump on any incompatible change to the discovery/pipeline byte layout.
DISCOVERY_CODEC_VERSION = 1

_MAGIC = b"RFTB"
_MAGIC_DISCOVERY = b"RDSC"
_MAGIC_PIPELINE = b"RPPL"
_LITTLE = 0
_BIG = 1
_LOCAL_ORDER = _LITTLE if sys.byteorder == "little" else _BIG

# Tagged scalar encoding for pool values.
_TAG_NONE = 0
_TAG_STR = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_BOOL = 4
_TAG_DATETIME = 5
_TAG_DATE = 6


class StoreFormatError(ValueError):
    """Raised when a serialized table is corrupt, truncated, or incompatible."""


def _write_str(write: Callable[[bytes], object], text: str) -> None:
    data = text.encode("utf-8")
    write(struct.pack("<I", len(data)))
    write(data)


def _write_value(write: Callable[[bytes], object], value: object) -> None:
    if value is None:
        write(struct.pack("<B", _TAG_NONE))
    elif isinstance(value, bool):  # before int: bool is an int subclass
        write(struct.pack("<BB", _TAG_BOOL, 1 if value else 0))
    elif isinstance(value, int):
        write(struct.pack("<Bq", _TAG_INT, value))
    elif isinstance(value, float):
        write(struct.pack("<Bd", _TAG_FLOAT, value))
    elif isinstance(value, datetime):  # before date: datetime is a date subclass
        write(struct.pack("<B", _TAG_DATETIME))
        _write_str(write, value.isoformat())
    elif isinstance(value, date):
        write(struct.pack("<B", _TAG_DATE))
        _write_str(write, value.isoformat())
    elif isinstance(value, str):
        write(struct.pack("<B", _TAG_STR))
        _write_str(write, value)
    else:
        raise StoreFormatError(f"unsupported pool value type {type(value).__name__!r}")


def _write_array(write: Callable[[bytes], object], column: array) -> None:
    payload = column.tobytes()
    write(struct.pack("<cBQ", column.typecode.encode("ascii"), column.itemsize, len(payload)))
    write(payload)


def dump_table(table: FlowTable, stream: BinaryIO) -> None:
    """Serialize a table to a binary stream."""
    write = stream.write
    write(_MAGIC)
    write(struct.pack("<BBQ", CODEC_VERSION, _LOCAL_ORDER, len(table)))
    write(struct.pack("<H", len(CATEGORICAL_COLUMNS)))
    for name in CATEGORICAL_COLUMNS:
        _write_str(write, name)
        pool = table.pool(name)
        write(struct.pack("<I", len(pool)))
        for value in pool:
            _write_value(write, value)
        _write_array(write, table.codes(name))
    write(struct.pack("<H", len(NUMERIC_COLUMNS)))
    for name, _typecode in NUMERIC_COLUMNS:
        _write_str(write, name)
        _write_array(write, table.numeric(name))


def dumps_table(table: FlowTable) -> bytes:
    """Serialize a table to bytes."""
    buffer = io.BytesIO()
    dump_table(table, buffer)
    return buffer.getvalue()


#: Reads larger than this are pre-flighted against the remaining stream/buffer
#: size before any allocation, so a corrupt 64-bit length field fails with
#: :class:`StoreFormatError` instead of attempting a near-2**64-byte read.
_PREFLIGHT_BYTES = 1 << 20


class _Reader:
    """Bounds-checked cursor over the serialized byte stream."""

    __slots__ = ("_stream",)

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def remaining(self) -> Optional[int]:
        """Bytes left before end-of-stream, or ``None`` when not seekable."""
        stream = self._stream
        try:
            position = stream.tell()
            end = stream.seek(0, io.SEEK_END)
            stream.seek(position)
        except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
            return None
        return max(0, end - position)

    def take(self, count: int) -> bytes:
        if count > _PREFLIGHT_BYTES:
            # A length field this large is either a huge (legitimate) column
            # or corruption; only the stream itself can tell.  Checking the
            # remaining size first keeps a corrupt 2**64 length from turning
            # into a giant allocation inside read().
            available = self.remaining()
            if available is not None and count > available:
                raise StoreFormatError(
                    f"truncated table: wanted {count} bytes, only {available} remain"
                )
        data = self._stream.read(count)
        if len(data) != count:
            raise StoreFormatError(
                f"truncated table: wanted {count} bytes, got {len(data)}"
            )
        return data

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def read_str(self) -> str:
        (length,) = self.unpack("<I")
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as error:
            raise StoreFormatError(f"corrupt string field: {error}") from None

    def read_value(self) -> object:
        (tag,) = self.unpack("<B")
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_BOOL:
            return bool(self.unpack("<B")[0])
        if tag == _TAG_INT:
            return self.unpack("<q")[0]
        if tag == _TAG_FLOAT:
            return self.unpack("<d")[0]
        if tag == _TAG_DATETIME:
            text = self.read_str()
            try:
                return datetime.fromisoformat(text)
            except ValueError as error:
                raise StoreFormatError(f"corrupt datetime field: {error}") from None
        if tag == _TAG_DATE:
            text = self.read_str()
            try:
                return date.fromisoformat(text)
            except ValueError as error:
                raise StoreFormatError(f"corrupt date field: {error}") from None
        if tag == _TAG_STR:
            return self.read_str()
        raise StoreFormatError(f"unknown pool value tag {tag}")

    def read_array_header(self) -> Tuple[str, int, int]:
        """Validate one array block header; return ``(typecode, itemsize, nbytes)``."""
        typecode_raw, itemsize, nbytes = self.unpack("<cBQ")
        try:
            typecode = typecode_raw.decode("ascii")
            probe = array(typecode)
        except (UnicodeDecodeError, ValueError):
            raise StoreFormatError(f"bad array typecode {typecode_raw!r}") from None
        if probe.itemsize != itemsize:
            raise StoreFormatError(
                f"array {typecode!r} itemsize mismatch: stored {itemsize}, "
                f"local {probe.itemsize}"
            )
        if nbytes % itemsize:
            raise StoreFormatError(
                f"array byte length {nbytes} is not a multiple of itemsize {itemsize}"
            )
        return typecode, itemsize, nbytes

    def read_array(self, byte_order: int) -> array:
        typecode, _itemsize, nbytes = self.read_array_header()
        column = array(typecode)
        column.frombytes(self.take(nbytes))
        if byte_order != _LOCAL_ORDER:
            column.byteswap()
        return column


def load_table(stream: BinaryIO) -> FlowTable:
    """Deserialize a table written by :func:`dump_table`."""
    reader = _Reader(stream)
    if reader.take(len(_MAGIC)) != _MAGIC:
        raise StoreFormatError("not a serialized FlowTable (bad magic)")
    version, byte_order, length = reader.unpack("<BBQ")
    if version != CODEC_VERSION:
        raise StoreFormatError(
            f"unsupported codec version {version} (expected {CODEC_VERSION})"
        )
    if byte_order not in (_LITTLE, _BIG):
        raise StoreFormatError(f"bad byte-order flag {byte_order}")

    (n_categorical,) = reader.unpack("<H")
    if n_categorical != len(CATEGORICAL_COLUMNS):
        raise StoreFormatError(
            f"categorical column count mismatch: stored {n_categorical}, "
            f"schema has {len(CATEGORICAL_COLUMNS)}"
        )
    table = FlowTable()
    codes: Dict[str, array] = {}
    for expected in CATEGORICAL_COLUMNS:
        name = reader.read_str()
        if name != expected:
            raise StoreFormatError(
                f"categorical column order mismatch: stored {name!r}, expected {expected!r}"
            )
        (pool_size,) = reader.unpack("<I")
        pool: List[object] = [reader.read_value() for _ in range(pool_size)]
        column = reader.read_array(byte_order)
        if len(column) != length:
            raise StoreFormatError(
                f"column {name!r}: {len(column)} codes for {length} rows"
            )
        if column and not all(0 <= code < pool_size for code in column):
            raise StoreFormatError(f"column {name!r}: code out of pool range")
        # Re-interning the pool in order reproduces the original codes, so the
        # code column can be adopted verbatim.  Re-interning deduplicates, so
        # a corrupt pool with repeated values would otherwise shrink and leave
        # codes dangling past its end — reject it here, not at first access.
        for value in pool:
            table.encode_value(name, value)
        if len(table.pool(name)) != pool_size:
            raise StoreFormatError(f"column {name!r}: pool contains duplicate values")
        codes[name] = column

    (n_numeric,) = reader.unpack("<H")
    if n_numeric != len(NUMERIC_COLUMNS):
        raise StoreFormatError(
            f"numeric column count mismatch: stored {n_numeric}, "
            f"schema has {len(NUMERIC_COLUMNS)}"
        )
    numeric: Dict[str, array] = {}
    for expected, typecode in NUMERIC_COLUMNS:
        name = reader.read_str()
        if name != expected:
            raise StoreFormatError(
                f"numeric column order mismatch: stored {name!r}, expected {expected!r}"
            )
        column = reader.read_array(byte_order)
        if column.typecode != typecode:
            raise StoreFormatError(
                f"column {name!r}: stored typecode {column.typecode!r}, "
                f"schema expects {typecode!r}"
            )
        if len(column) != length:
            raise StoreFormatError(
                f"column {name!r}: {len(column)} values for {length} rows"
            )
        numeric[name] = column
    table.append_columns(length, codes, numeric)
    return table


def loads_table(data: bytes) -> FlowTable:
    """Deserialize a table from bytes."""
    return load_table(io.BytesIO(data))


class _BufferReader(_Reader):
    """Bounds-checked cursor over an in-memory buffer (bytes, mmap, memoryview).

    Unlike the stream reader it can hand out :meth:`take_view` slices that
    alias the underlying buffer, which is what makes the lazy table loader
    zero-copy: column payloads stay on the mapped file until first touch.
    """

    __slots__ = ("_view", "_pos")

    def __init__(self, view: memoryview) -> None:
        self._view = view
        self._pos = 0

    def remaining(self) -> Optional[int]:
        return len(self._view) - self._pos

    def take_view(self, count: int) -> memoryview:
        end = self._pos + count
        if count < 0 or end > len(self._view):
            raise StoreFormatError(
                f"truncated table: wanted {count} bytes, "
                f"only {len(self._view) - self._pos} remain"
            )
        view = self._view[self._pos : end]
        self._pos = end
        return view

    def take(self, count: int) -> bytes:
        return bytes(self.take_view(count))


def _code_bounds_validator(name: str, pool_size: int) -> Callable[[Sequence], None]:
    """The deferred per-code range check for one lazily decoded code column.

    Runs once against whichever representation is touched first (``array`` or
    numpy view -- hence the duck-typed min/max), mirroring the eager loader's
    load-time check and its error message exactly.
    """

    def validate(column: Sequence) -> None:
        if not len(column):
            return
        try:
            low, high = column.min(), column.max()  # numpy view
        except AttributeError:
            low, high = min(column), max(column)
        if low < 0 or high >= pool_size:
            raise StoreFormatError(f"column {name!r}: code out of pool range")

    return validate


def load_table_lazy(buffer: Union[bytes, bytearray, memoryview]) -> FlowTable:
    """Deserialize a table from a byte buffer without copying column bytes.

    Parses the header, value pools, and every block header eagerly -- so all
    structural corruption (bad magic/version, schema mismatches, truncation,
    oversized or ragged length fields, duplicate pool values) raises
    :class:`StoreFormatError` here, exactly like :func:`load_table` -- but
    wraps each column payload in a :class:`~repro.flows.flowtable.LazyColumn`
    view over ``buffer`` instead of decoding it.  The per-code range check is
    deferred into the lazy column and runs on first touch.

    Artifacts written by a foreign-byte-order host (columns need a byteswap,
    which is inherently a copy) or with unexpected-but-decodable column
    typecodes fall back to the eager decoder transparently.
    """
    view = memoryview(buffer)
    reader = _BufferReader(view)
    if reader.take(len(_MAGIC)) != _MAGIC:
        raise StoreFormatError("not a serialized FlowTable (bad magic)")
    version, byte_order, length = reader.unpack("<BBQ")
    if version != CODEC_VERSION:
        raise StoreFormatError(
            f"unsupported codec version {version} (expected {CODEC_VERSION})"
        )
    if byte_order not in (_LITTLE, _BIG):
        raise StoreFormatError(f"bad byte-order flag {byte_order}")
    if byte_order != _LOCAL_ORDER:
        return load_table(io.BytesIO(view))

    (n_categorical,) = reader.unpack("<H")
    if n_categorical != len(CATEGORICAL_COLUMNS):
        raise StoreFormatError(
            f"categorical column count mismatch: stored {n_categorical}, "
            f"schema has {len(CATEGORICAL_COLUMNS)}"
        )
    table = FlowTable()
    codes: Dict[str, LazyColumn] = {}
    for expected in CATEGORICAL_COLUMNS:
        name = reader.read_str()
        if name != expected:
            raise StoreFormatError(
                f"categorical column order mismatch: stored {name!r}, expected {expected!r}"
            )
        (pool_size,) = reader.unpack("<I")
        pool: List[object] = [reader.read_value() for _ in range(pool_size)]
        typecode, itemsize, nbytes = reader.read_array_header()
        if typecode != "i":
            return load_table(io.BytesIO(view))
        payload = reader.take_view(nbytes)
        if nbytes // itemsize != length:
            raise StoreFormatError(
                f"column {name!r}: {nbytes // itemsize} codes for {length} rows"
            )
        for value in pool:
            table.encode_value(name, value)
        if len(table.pool(name)) != pool_size:
            raise StoreFormatError(f"column {name!r}: pool contains duplicate values")
        codes[name] = LazyColumn(
            "i", payload, validate=_code_bounds_validator(name, pool_size)
        )

    (n_numeric,) = reader.unpack("<H")
    if n_numeric != len(NUMERIC_COLUMNS):
        raise StoreFormatError(
            f"numeric column count mismatch: stored {n_numeric}, "
            f"schema has {len(NUMERIC_COLUMNS)}"
        )
    numeric: Dict[str, LazyColumn] = {}
    for expected, typecode in NUMERIC_COLUMNS:
        name = reader.read_str()
        if name != expected:
            raise StoreFormatError(
                f"numeric column order mismatch: stored {name!r}, expected {expected!r}"
            )
        stored, itemsize, nbytes = reader.read_array_header()
        if stored != typecode:
            raise StoreFormatError(
                f"column {name!r}: stored typecode {stored!r}, "
                f"schema expects {typecode!r}"
            )
        payload = reader.take_view(nbytes)
        if nbytes // itemsize != length:
            raise StoreFormatError(
                f"column {name!r}: {nbytes // itemsize} values for {length} rows"
            )
        numeric[name] = LazyColumn(typecode, payload)
    table.adopt_columns(length, codes, numeric)
    return table


def load_table_mmap(path: Union[str, "os.PathLike"]) -> FlowTable:
    """mmap a serialized table file and deserialize it via :func:`load_table_lazy`.

    The file descriptor is closed immediately (the mapping survives it); the
    mapping itself stays alive exactly as long as any column view over it --
    plain refcounting, no explicit close, so handing columns to numpy via
    ``frombuffer`` can never hit a ``BufferError``.  Empty files (``mmap``
    refuses zero-length maps) raise :class:`StoreFormatError` like any other
    corrupt payload.
    """
    import mmap

    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:
            raise StoreFormatError(f"cannot map table file: {error}") from None
    return load_table_lazy(mapped)


# ---------------------------------------------------------------------------
# Discovery footprints (DiscoveryResult / PipelineResult)
# ---------------------------------------------------------------------------


class _ValuePool:
    """An interning pool of tagged scalars, written once and referenced by index."""

    __slots__ = ("_index", "values")

    def __init__(self) -> None:
        self._index: Dict[Tuple[type, object], int] = {}
        self.values: List[object] = []

    def add(self, value: object) -> int:
        key = (value.__class__, value)
        index = self._index.get(key)
        if index is None:
            index = len(self.values)
            self._index[key] = index
            self.values.append(value)
        return index


def _pool_discovery(result, pool: _ValuePool) -> None:
    """Intern every scalar of a discovery result (canonical sorted order)."""
    for provider_key in sorted(result.per_provider):
        pool.add(provider_key)
        bucket = result.per_provider[provider_key]
        for ip in sorted(bucket):
            pool.add(ip)
            record = bucket[ip]
            for source in sorted(record.sources):
                pool.add(source)
            for domain in sorted(record.domains):
                pool.add(domain)


def _write_discovery_body(write: Callable[[bytes], object], result, pool: _ValuePool) -> None:
    """Write one discovery result as pool references (pool written separately)."""
    _write_value(write, result.day)
    write(struct.pack("<I", len(result.per_provider)))
    for provider_key in sorted(result.per_provider):
        bucket = result.per_provider[provider_key]
        write(struct.pack("<II", pool.add(provider_key), len(bucket)))
        for ip in sorted(bucket):
            record = bucket[ip]
            sources = sorted(record.sources)
            domains = sorted(record.domains)
            write(struct.pack("<III", pool.add(ip), len(sources), len(domains)))
            for source in sources:
                write(struct.pack("<I", pool.add(source)))
            for domain in domains:
                write(struct.pack("<I", pool.add(domain)))


class _PooledReader(_Reader):
    """A byte-stream cursor with an attached value pool for reference reads."""

    __slots__ = ("pool",)

    def __init__(self, stream: BinaryIO) -> None:
        super().__init__(stream)
        self.pool: List[object] = []

    def read_pool(self) -> None:
        (size,) = self.unpack("<I")
        self.pool = [self.read_value() for _ in range(size)]

    def pool_str(self, index: int) -> str:
        if index >= len(self.pool):
            raise StoreFormatError(f"pool reference {index} out of range")
        value = self.pool[index]
        if not isinstance(value, str):
            raise StoreFormatError(f"pool reference {index} is not a string")
        return value

    def read_ref_str(self) -> str:
        (index,) = self.unpack("<I")
        return self.pool_str(index)


def _read_discovery_body(reader: _PooledReader):
    """Read one discovery result written by :func:`_write_discovery_body`."""
    from repro.core.discovery import DiscoveredIP, DiscoveryResult

    day = reader.read_value()
    if day is not None and (not isinstance(day, date) or isinstance(day, datetime)):
        raise StoreFormatError("discovery day is not a date")
    result = DiscoveryResult(day=day)
    (n_providers,) = reader.unpack("<I")
    for _ in range(n_providers):
        provider_ref, n_ips = reader.unpack("<II")
        provider_key = reader.pool_str(provider_ref)
        for _ in range(n_ips):
            ip_ref, n_sources, n_domains = reader.unpack("<III")
            ip = reader.pool_str(ip_ref)
            sources = {reader.read_ref_str() for _ in range(n_sources)}
            domains = {reader.read_ref_str() for _ in range(n_domains)}
            result.add(
                DiscoveredIP(ip=ip, provider_key=provider_key, sources=sources, domains=domains)
            )
    return result


def dump_discovery(result, stream: BinaryIO) -> None:
    """Serialize a :class:`~repro.core.discovery.DiscoveryResult` to a stream."""
    write = stream.write
    write(_MAGIC_DISCOVERY)
    write(struct.pack("<B", DISCOVERY_CODEC_VERSION))
    pool = _ValuePool()
    _pool_discovery(result, pool)
    write(struct.pack("<I", len(pool.values)))
    for value in pool.values:
        _write_value(write, value)
    _write_discovery_body(write, result, pool)


def dumps_discovery(result) -> bytes:
    """Serialize a discovery result to bytes."""
    buffer = io.BytesIO()
    dump_discovery(result, buffer)
    return buffer.getvalue()


def load_discovery(stream: BinaryIO):
    """Deserialize a discovery result written by :func:`dump_discovery`."""
    reader = _PooledReader(stream)
    if reader.take(len(_MAGIC_DISCOVERY)) != _MAGIC_DISCOVERY:
        raise StoreFormatError("not a serialized DiscoveryResult (bad magic)")
    (version,) = reader.unpack("<B")
    if version != DISCOVERY_CODEC_VERSION:
        raise StoreFormatError(
            f"unsupported discovery codec version {version} "
            f"(expected {DISCOVERY_CODEC_VERSION})"
        )
    reader.read_pool()
    return _read_discovery_body(reader)


def loads_discovery(data: bytes):
    """Deserialize a discovery result from bytes."""
    return load_discovery(io.BytesIO(data))


def _write_str_tuple(write: Callable[[bytes], object], values) -> None:
    write(struct.pack("<I", len(values)))
    for value in values:
        _write_str(write, value)


def _read_str_tuple(reader: _Reader) -> Tuple[str, ...]:
    (count,) = reader.unpack("<I")
    return tuple(reader.read_str() for _ in range(count))


def _write_location(write: Callable[[bytes], object], location) -> None:
    if location is None:
        write(struct.pack("<B", 0))
        return
    write(struct.pack("<B", 1))
    for text in (
        location.city,
        location.airport_code,
        location.country,
        location.continent,
        location.region_code,
    ):
        _write_str(write, text)


def _read_location(reader: _Reader):
    from repro.netmodel.geo import Location

    (present,) = reader.unpack("<B")
    if present == 0:
        return None
    if present != 1:
        raise StoreFormatError(f"bad location presence flag {present}")
    return Location(*(reader.read_str() for _ in range(5)))


def dump_pipeline_result(result, stream: BinaryIO) -> None:
    """Serialize a :class:`~repro.core.pipeline.PipelineResult` to a stream.

    Every nested :class:`DiscoveryResult` (the combined set, each daily
    result, the validated dedicated set) is written as its own pooled block;
    footprints, ground-truth reports, the study period, and the pattern set
    are written as tagged scalars, so the loaded result compares equal to the
    original dataclass-for-dataclass.
    """
    write = stream.write
    write(_MAGIC_PIPELINE)
    write(struct.pack("<B", DISCOVERY_CODEC_VERSION))

    # Study period.
    _write_str(write, result.period.name)
    _write_value(write, result.period.start)
    _write_value(write, result.period.end)

    # Pattern set (regex text + engine hints; recompiled on load).
    patterns = result.pattern_set.patterns
    write(struct.pack("<I", len(patterns)))
    for provider_key in sorted(patterns):
        _write_str(write, provider_key)
        write(struct.pack("<I", len(patterns[provider_key])))
        for pattern in patterns[provider_key]:
            _write_str(write, pattern.regex)
            _write_str(write, pattern.description)
            _write_str(write, pattern.suffix_hint)
            write(struct.pack("<B", 1 if pattern.exact_hint else 0))

    # Daily results and the combined set.
    write(struct.pack("<I", len(result.daily_results)))
    for day in sorted(result.daily_results):
        _write_value(write, day)
        dump_discovery(result.daily_results[day], stream)
    dump_discovery(result.combined, stream)

    # Shared-vs-dedicated validation.
    write(struct.pack("<q", result.validation.threshold))
    dump_discovery(result.validation.dedicated, stream)
    write(struct.pack("<I", len(result.validation.shared)))
    for shared in result.validation.shared:
        _write_str(write, shared.ip)
        _write_str(write, shared.provider_key)
        write(struct.pack("<q", shared.non_iot_domain_count))

    # Per-provider footprint reports.
    write(struct.pack("<I", len(result.footprints)))
    for provider_key in sorted(result.footprints):
        report = result.footprints[provider_key]
        _write_str(write, report.provider_key)
        _write_str(write, report.provider_name)
        write(
            struct.pack(
                "<qqqqqqqqq",
                report.as_count,
                report.prefix_count,
                report.ipv4_count,
                report.ipv6_count,
                report.slash24_count,
                report.slash56_count,
                report.location_count,
                report.country_count,
                report.geolocation_disagreements,
            )
        )
        _write_str_tuple(write, report.continents)
        _write_str_tuple(write, report.countries)
        _write_str(write, report.strategy)
        _write_str_tuple(write, report.documented_protocols)
        write(struct.pack("<B", 1 if report.uses_anycast else 0))
        write(struct.pack("<I", len(report.locations_by_ip)))
        for ip in sorted(report.locations_by_ip):
            _write_str(write, ip)
            _write_location(write, report.locations_by_ip[ip])

    # Ground-truth reports.
    write(struct.pack("<I", len(result.ground_truth)))
    for provider_key in sorted(result.ground_truth):
        report = result.ground_truth[provider_key]
        _write_str(write, report.provider_key)
        _write_str_tuple(write, report.published_prefixes)
        # Published ranges include IPv6 prefixes, whose address counts exceed
        # 64 bits (a /56 alone spans 2^72) — encode as a decimal string.
        _write_str(write, str(report.published_address_count))
        write(
            struct.pack(
                "<qqq",
                report.discovered_count,
                report.discovered_inside,
                report.discovered_outside,
            )
        )


def dumps_pipeline_result(result) -> bytes:
    """Serialize a pipeline result to bytes."""
    buffer = io.BytesIO()
    dump_pipeline_result(result, buffer)
    return buffer.getvalue()


def load_pipeline_result(stream: BinaryIO):
    """Deserialize a pipeline result written by :func:`dump_pipeline_result`."""
    from repro.core.discovery import DiscoveryResult
    from repro.core.footprint import FootprintReport
    from repro.core.patterns import DomainPattern, PatternSet
    from repro.core.pipeline import PipelineResult
    from repro.core.validation import (
        GroundTruthReport,
        SharedIpClassification,
        SharedIpRecord,
    )
    from repro.simulation.clock import StudyPeriod

    reader = _Reader(stream)
    if reader.take(len(_MAGIC_PIPELINE)) != _MAGIC_PIPELINE:
        raise StoreFormatError("not a serialized PipelineResult (bad magic)")
    (version,) = reader.unpack("<B")
    if version != DISCOVERY_CODEC_VERSION:
        raise StoreFormatError(
            f"unsupported discovery codec version {version} "
            f"(expected {DISCOVERY_CODEC_VERSION})"
        )
    try:
        period_name = reader.read_str()
        start = reader.read_value()
        end = reader.read_value()
        if not isinstance(start, date) or not isinstance(end, date):
            raise StoreFormatError("study period bounds are not dates")
        period = StudyPeriod(start=start, end=end, name=period_name)

        pattern_set = PatternSet()
        (n_providers,) = reader.unpack("<I")
        for _ in range(n_providers):
            provider_key = reader.read_str()
            (n_patterns,) = reader.unpack("<I")
            specs = []
            for _ in range(n_patterns):
                regex = reader.read_str()
                description = reader.read_str()
                suffix_hint = reader.read_str()
                (exact,) = reader.unpack("<B")
                specs.append(
                    DomainPattern(
                        provider_key,
                        regex,
                        description,
                        suffix_hint=suffix_hint,
                        exact_hint=bool(exact),
                    )
                )
            pattern_set.patterns[provider_key] = specs

        daily_results: Dict[date, DiscoveryResult] = {}
        (n_days,) = reader.unpack("<I")
        for _ in range(n_days):
            day = reader.read_value()
            if not isinstance(day, date) or isinstance(day, datetime):
                raise StoreFormatError("daily-result key is not a date")
            daily_results[day] = load_discovery(stream)
        combined = load_discovery(stream)

        (threshold,) = reader.unpack("<q")
        dedicated = load_discovery(stream)
        shared = []
        (n_shared,) = reader.unpack("<I")
        for _ in range(n_shared):
            ip = reader.read_str()
            provider_key = reader.read_str()
            (count,) = reader.unpack("<q")
            shared.append(
                SharedIpRecord(ip=ip, provider_key=provider_key, non_iot_domain_count=count)
            )
        validation = SharedIpClassification(
            threshold=threshold, dedicated=dedicated, shared=shared
        )

        footprints: Dict[str, FootprintReport] = {}
        (n_footprints,) = reader.unpack("<I")
        for _ in range(n_footprints):
            provider_key = reader.read_str()
            provider_name = reader.read_str()
            (
                as_count,
                prefix_count,
                ipv4_count,
                ipv6_count,
                slash24_count,
                slash56_count,
                location_count,
                country_count,
                disagreements,
            ) = reader.unpack("<qqqqqqqqq")
            continents = _read_str_tuple(reader)
            countries = _read_str_tuple(reader)
            strategy = reader.read_str()
            protocols = _read_str_tuple(reader)
            (anycast,) = reader.unpack("<B")
            locations_by_ip = {}
            (n_locations,) = reader.unpack("<I")
            for _ in range(n_locations):
                ip = reader.read_str()
                locations_by_ip[ip] = _read_location(reader)
            footprints[provider_key] = FootprintReport(
                provider_key=provider_key,
                provider_name=provider_name,
                as_count=as_count,
                prefix_count=prefix_count,
                ipv4_count=ipv4_count,
                ipv6_count=ipv6_count,
                slash24_count=slash24_count,
                slash56_count=slash56_count,
                location_count=location_count,
                country_count=country_count,
                continents=continents,
                countries=countries,
                strategy=strategy,
                documented_protocols=protocols,
                uses_anycast=bool(anycast),
                locations_by_ip=locations_by_ip,
                geolocation_disagreements=disagreements,
            )

        ground_truth: Dict[str, GroundTruthReport] = {}
        (n_ground_truth,) = reader.unpack("<I")
        for _ in range(n_ground_truth):
            provider_key = reader.read_str()
            prefixes = _read_str_tuple(reader)
            published_text = reader.read_str()
            if not published_text.isdigit():
                raise StoreFormatError(
                    f"corrupt published address count {published_text!r}"
                )
            published = int(published_text)
            (discovered, inside, outside) = reader.unpack("<qqq")
            ground_truth[provider_key] = GroundTruthReport(
                provider_key=provider_key,
                published_prefixes=prefixes,
                published_address_count=published,
                discovered_count=discovered,
                discovered_inside=inside,
                discovered_outside=outside,
            )
    except StoreFormatError:
        raise
    except ValueError as error:
        # Constructor validation (bad continent, inverted period, ...) means
        # the payload is corrupt, not that the caller misused the API.
        raise StoreFormatError(f"corrupt pipeline result: {error}") from None
    return PipelineResult(
        period=period,
        pattern_set=pattern_set,
        daily_results=daily_results,
        combined=combined,
        validation=validation,
        footprints=footprints,
        ground_truth=ground_truth,
    )


def loads_pipeline_result(data: bytes):
    """Deserialize a pipeline result from bytes."""
    return load_pipeline_result(io.BytesIO(data))
