"""Command-line interface.

``iot-backend-repro`` exposes the main experiments so results can be regenerated
without writing Python::

    iot-backend-repro table1            # provider characterization (Table 1)
    iot-backend-repro patterns          # regexes and queries (Table 2 / Appendix A)
    iot-backend-repro discovery         # end-to-end discovery summary (Figure 2)
    iot-backend-repro sources           # per-source contribution (Figure 3)
    iot-backend-repro stability         # IP-set stability (Figure 4)
    iot-backend-repro validation        # methodology validation (Section 3.4/3.5)
    iot-backend-repro traffic           # traffic analyses (Figures 5-14)
    iot-backend-repro outage            # AWS outage impact (Figures 15-16)
    iot-backend-repro disruptions       # BGP / blocklist exposure (Section 6.2)
    iot-backend-repro ablations         # portscan-only / vantage-point ablations

and the scenario-scale subsystem::

    iot-backend-repro sweep --axis sampling_ratio=1,10 --axis scale=0.01,0.02 \\
        --metrics traffic,outage --workers 4 --ledger sweep.jsonl
                                        # parallel multi-scenario campaign
    iot-backend-repro sweep --axis scale=0.01,0.02 --resume sweep.jsonl \\
        --retries 2 --timeout 600       # resume an interrupted campaign
    iot-backend-repro cache ls          # list the on-disk artifact store
    iot-backend-repro cache prune       # delete cached artifacts
    iot-backend-repro stats --trace t.jsonl --metrics m.json
                                        # per-stage telemetry summary

Sweeps are fault tolerant: every scenario attempt is appended to the ledger
the moment it finishes (so a killed run loses nothing that completed),
``--retries N`` re-runs failed or timed-out scenarios with exponential
backoff (``--backoff``), ``--timeout SECONDS`` bounds each scenario's wall
clock, ``--max-failures N`` opens a circuit breaker after N consecutive
scenario failures, and ``--resume LEDGER`` skips every scenario the ledger
already records as ``ok`` and re-runs the rest — per-scenario metrics are
bit-identical to an uninterrupted run, only timing fields differ.

Common options select the scenario scale and seed; ``--store DIR`` attaches the
persistent artifact cache so repeated invocations warm-start from disk.  The
store covers both flow tables (``generated:*``, ``raw-export``, ``clean:*``
stages) and persisted discovery footprints (``discovery:<pattern
fingerprint>``), so warm ``discovery``/``table1``/``sources`` runs skip the
multi-source classification pipeline entirely; ``cache ls`` lists every stage.

``--gen-workers N`` generates the hours of a study period in N parallel
worker processes (hours draw from independent per-hour streams, so the flows
— and therefore every downstream result and artifact-store address — are
byte-identical at any worker count; only wall-clock changes).  Under ``sweep``
it composes with ``--workers``: each scenario worker runs its own clamped
generation pool, capped so the product never oversubscribes the machine.

Observability (see :mod:`repro.obs`) is off by default and strictly
read-only — results, store addresses, and ledger identity fields are
bit-identical with it on or off.  ``--trace PATH`` appends one JSON line per
completed pipeline span (generation hours, discovery sources, store I/O,
sweep scenarios — including those of worker processes) to PATH;
``--metrics-out PATH`` collects counters/histograms during the run (sweep
workers ship their registries back to the driver) and writes the merged
snapshot as JSON on exit.  ``iot-backend-repro stats`` renders either file
as a per-stage table with wall-clock coverage.  ``-v``/``-q`` raise/lower
the structured-log verbosity on stderr (sweep failure, retry, respawn, and
circuit-breaker events carry scenario ids).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import build_context
from repro.experiments import characterization, disruption_experiments, traffic_experiments
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.simulation.config import ScenarioConfig


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _make_config(args: argparse.Namespace) -> ScenarioConfig:
    config = ScenarioConfig.small(seed=args.seed) if args.small else ScenarioConfig(seed=args.seed)
    # `is not None` (not truthiness): explicit values must always be applied, and
    # non-positive ones are rejected by the parser types above.
    if args.subscriber_lines is not None:
        config = config.with_overrides(n_subscriber_lines=args.subscriber_lines)
    if args.scale is not None:
        config = config.with_overrides(scale=args.scale)
    return config


def _make_store(args: argparse.Namespace):
    if getattr(args, "store", None) is None:
        return None
    from repro.store.artifacts import ArtifactStore

    return ArtifactStore(args.store)


def _cmd_table1(context) -> str:
    return characterization.table1_characterization(context).render()


def _cmd_patterns(context) -> str:
    return characterization.table2_regexes().render()


def _cmd_discovery(context) -> str:
    return characterization.pipeline_summary(context).render()


def _cmd_sources(context) -> str:
    return characterization.fig3_source_contribution(context).render()


def _cmd_stability(context) -> str:
    return characterization.fig4_stability(context).render()


def _cmd_validation(context) -> str:
    return characterization.sec34_validation(context).render()


def _cmd_traffic(context) -> str:
    sections = [
        traffic_experiments.fig5_scanner_threshold(context).render(),
        traffic_experiments.fig6_visibility(context).render(),
        traffic_experiments.fig7_tls_only_loss(context).render(),
        traffic_experiments.fig8_subscriber_activity(context).render(),
        traffic_experiments.fig9_traffic_volume(context).render(),
        traffic_experiments.fig10_direction_ratio(context).render(),
        traffic_experiments.fig11_port_mix(context).render(),
        traffic_experiments.fig12_per_subscriber_volumes(context).render(),
        traffic_experiments.fig13_fig14_region_crossing(context).render(),
    ]
    return "\n\n".join(sections)


def _cmd_outage(context) -> str:
    result = disruption_experiments.fig15_fig16_outage(context)
    return result.render("15") + "\n\n" + result.render("16")


def _cmd_disruptions(context) -> str:
    return disruption_experiments.sec62_potential_disruptions(context).render()


def _cmd_ablations(context) -> str:
    return (
        disruption_experiments.ablation_portscan_baseline(context).render()
        + "\n\n"
        + disruption_experiments.ablation_vantage_points(context).render()
    )


_COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "patterns": _cmd_patterns,
    "discovery": _cmd_discovery,
    "sources": _cmd_sources,
    "stability": _cmd_stability,
    "validation": _cmd_validation,
    "traffic": _cmd_traffic,
    "outage": _cmd_outage,
    "disruptions": _cmd_disruptions,
    "ablations": _cmd_ablations,
}

_COMMAND_HELP = {
    "table1": "provider characterization (Table 1)",
    "patterns": "regexes and queries (Table 2 / Appendix A)",
    "discovery": "end-to-end discovery summary (Figure 2)",
    "sources": "per-source contribution (Figure 3)",
    "stability": "IP-set stability (Figure 4)",
    "validation": "methodology validation (Section 3.4/3.5)",
    "traffic": "traffic analyses (Figures 5-14)",
    "outage": "AWS outage impact (Figures 15-16)",
    "disruptions": "BGP / blocklist exposure (Section 6.2)",
    "ablations": "portscan-only / vantage-point ablations",
}


def _scenario_options() -> argparse.ArgumentParser:
    """Shared scenario options (a parents= parser for every subcommand)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=7, help="scenario seed (default 7)")
    common.add_argument("--small", action="store_true", help="use the small test scenario")
    common.add_argument(
        "--scale", type=_positive_float, default=None, help="provider deployment scale factor"
    )
    common.add_argument(
        "--subscriber-lines",
        type=_positive_int,
        default=None,
        help="number of ISP subscriber lines",
    )
    common.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory for persistent warm starts "
        "(default: no persistent cache)",
    )
    common.add_argument(
        "--gen-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="parallel worker processes for per-hour flow generation "
        "(byte-identical output at any count; default: serial)",
    )
    common.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append one JSON line per completed pipeline span to PATH "
        "(read-only telemetry; summarize with the stats subcommand)",
    )
    common.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="collect counters/histograms during the run and write the "
        "merged snapshot to PATH as JSON",
    )
    common.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise structured-log verbosity on stderr (repeatable)",
    )
    common.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="lower structured-log verbosity (errors only)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="iot-backend-repro",
        description="Reproduction of 'Deep Dive into the IoT Backend Ecosystem' (IMC 2022).",
    )
    common = _scenario_options()
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="command")
    for name in sorted(_COMMANDS):
        subparsers.add_parser(name, parents=[common], help=_COMMAND_HELP[name])

    sweep = subparsers.add_parser(
        "sweep", parents=[common], help="run a grid of scenarios across workers"
    )
    sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="FIELD=V1,V2,...",
        help="a swept ScenarioConfig field and its values (repeatable)",
    )
    sweep.add_argument(
        "--metrics",
        default="traffic",
        help="comma-separated metric sets to evaluate per scenario "
        "(traffic, discovery, outage; default: traffic)",
    )
    sweep.add_argument(
        "--workers", type=_positive_int, default=1, help="parallel worker processes (default 1)"
    )
    sweep.add_argument(
        "--ledger", default=None, metavar="PATH", help="write the JSONL results ledger here"
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="LEDGER",
        help="resume an interrupted campaign: skip scenarios this ledger records "
        "as ok, re-run the rest, append to it (or to --ledger when given)",
    )
    sweep.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="re-run a failed or timed-out scenario up to N times (default 0)",
    )
    sweep.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-scenario wall-clock limit, enforced inside the worker "
        "(default: unlimited)",
    )
    sweep.add_argument(
        "--backoff",
        type=_nonnegative_float,
        default=0.5,
        metavar="SECONDS",
        help="base delay before a retry, doubled per attempt (default 0.5)",
    )
    sweep.add_argument(
        "--max-failures",
        type=_positive_int,
        default=None,
        metavar="N",
        help="circuit breaker: stop submitting scenarios after N consecutive "
        "failures (in-flight work still drains; default: never)",
    )
    sweep.add_argument(
        "--pivot",
        default=None,
        metavar="METRIC",
        help="metric to pivot over the first one/two axes (default: first metric)",
    )

    stats = subparsers.add_parser(
        "stats", help="summarize a span trace and/or a metrics snapshot"
    )
    stats.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="JSONL span trace written by --trace (per-stage timing table)",
    )
    stats.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="JSON metrics snapshot written by --metrics-out",
    )

    cache = subparsers.add_parser("cache", help="inspect or prune the artifact store")
    cache.add_argument("action", choices=("ls", "prune"), help="what to do with the store")
    cache.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory (default: $IOT_REPRO_STORE or ~/.cache/iot-backend-repro)",
    )
    cache.add_argument(
        "--older-than-days",
        type=_positive_float,
        default=None,
        help="prune only artifacts older than this many days",
    )
    return parser


def _run_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> Tuple[str, int]:
    from repro.sweeps import LedgerError, ScenarioGrid, SweepRunner

    base = _make_config(args)
    try:
        grid = ScenarioGrid.from_strings(base, args.axis)
        grid.specs()  # expand eagerly so invalid axis *values* fail as parser errors too
        runner = SweepRunner(
            metrics=tuple(name.strip() for name in args.metrics.split(",") if name.strip()),
            workers=args.workers,
            store=args.store,
            ledger_path=args.ledger,
            gen_workers=args.gen_workers if args.gen_workers is not None else 1,
            retries=args.retries,
            timeout=args.timeout,
            backoff=args.backoff,
            max_consecutive_failures=args.max_failures,
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        result = runner.run(grid, resume=args.resume)
    except (FileNotFoundError, LedgerError) as error:
        parser.error(f"--resume: {error}")
    sections = [result.render_results(), result.render_latency_summary()]
    pivot_metric = args.pivot or (result.metric_names()[0] if result.metric_names() else None)
    if pivot_metric is not None:
        axes = grid.axis_names
        col_axis = axes[1] if len(axes) > 1 else None
        sections.append(result.render_pivot(pivot_metric, axes[0], col_axis))
    if args.resume:
        sections.append(
            f"resumed from {args.resume}: {result.reused_count} scenario(s) reused, "
            f"{len(result) - result.reused_count} re-run"
        )
    ledger_target = args.ledger or args.resume
    if ledger_target:
        sections.append(f"ledger written to {ledger_target}")
    failures = result.failures()
    if failures:
        sections.append(
            f"{len(failures)} of {len(result)} scenarios FAILED:\n"
            + "\n".join(f"  {outcome.scenario_id}: {outcome.error}" for outcome in failures)
        )
    return "\n\n".join(sections), 1 if failures else 0


def _render_trace_summary(path: str) -> str:
    from repro.core.report import render_table

    events = obs_trace.read_trace(path)
    summary = obs_trace.summarize_trace(events)
    if not summary.stages:
        return f"trace {path}: no span events"
    table = render_table(
        ["stage", "count", "total_s", "mean_s", "p50_s", "p95_s", "max_s"],
        summary.rows(),
        title=f"Trace {path} ({summary.events} spans)",
    )
    coverage = (
        f"wall clock {summary.wall_seconds:.2f}s across {summary.processes} process(es), "
        f"accounted by root spans: {summary.accounted_seconds:.2f}s "
        f"({summary.coverage * 100.0:.1f}% coverage)"
    )
    return table + "\n\n" + coverage


def _render_metrics_snapshot(path: str) -> str:
    from repro.core.report import render_table

    snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    registry = obs_metrics.MetricsRegistry.from_snapshot(snapshot)
    sections: List[str] = []
    counters = registry.counters()
    if counters:
        rows = [[name, round(value, 6)] for name, value in sorted(counters.items())]
        sections.append(
            render_table(["counter", "value"], rows, title=f"Counters ({path})")
        )
    gauges = registry.gauges()
    if gauges:
        rows = [[name, round(value, 6)] for name, value in sorted(gauges.items())]
        sections.append(render_table(["gauge", "value"], rows, title="Gauges"))
    histogram_rows: List[List[object]] = []
    for name in registry.histogram_names():
        histogram = registry.histogram(name)
        histogram_rows.append(
            [
                name,
                histogram.count,
                round(histogram.sum, 4),
                round(histogram.quantile(0.5) or 0.0, 6),
                round(histogram.quantile(0.95) or 0.0, 6),
                round(histogram.max or 0.0, 6),
            ]
        )
    if histogram_rows:
        sections.append(
            render_table(
                ["histogram", "count", "sum", "p50<=", "p95<=", "max"],
                histogram_rows,
                title="Histograms",
            )
        )
    if not sections:
        return f"metrics snapshot {path} is empty"
    return "\n\n".join(sections)


def _run_stats(args: argparse.Namespace, parser: argparse.ArgumentParser) -> str:
    if args.trace is None and args.metrics is None:
        parser.error("stats requires --trace PATH and/or --metrics PATH")
    sections: List[str] = []
    try:
        if args.trace is not None:
            sections.append(_render_trace_summary(args.trace))
        if args.metrics is not None:
            sections.append(_render_metrics_snapshot(args.metrics))
    except FileNotFoundError as error:
        parser.error(str(error))
    except json.JSONDecodeError as error:
        parser.error(f"--metrics: {args.metrics}: {error}")
    return "\n\n".join(sections)


def _run_cache(args: argparse.Namespace) -> str:
    from repro.core.report import render_table
    from repro.store.artifacts import ArtifactStore

    store = ArtifactStore(args.store)
    if args.action == "prune":
        cutoff = args.older_than_days * 86400.0 if args.older_than_days is not None else None
        removed, freed = store.prune(older_than_seconds=cutoff)
        return f"pruned {removed} artifact(s), freed {freed / 1e6:.1f} MB from {store.root}"
    entries = store.entries()
    if not entries:
        return f"artifact store {store.root} is empty"
    rows = [
        [
            entry.digest[:12],
            entry.stage,
            entry.period,
            entry.rows,
            f"{entry.payload_bytes / 1e6:.1f} MB",
            f"{entry.age_seconds / 3600.0:.1f}h",
        ]
        for entry in entries
    ]
    total_bytes = sum(entry.payload_bytes for entry in entries)
    table = render_table(
        ["digest", "stage", "period", "rows", "size", "age"],
        rows,
        title=f"Artifact store {store.root} ({total_bytes / 1e6:.1f} MB)",
    )
    return table


def _activate_obs(args: argparse.Namespace) -> Tuple[Optional[str], Optional[str]]:
    """Turn on tracing/metrics/logging as the parsed flags request.

    Returns ``(trace_path, metrics_out_path)`` for :func:`_deactivate_obs`.
    The trace path is also exported via ``$IOT_REPRO_TRACE`` so worker
    processes started with the spawn method reach the same sink (forked
    workers inherit the open descriptor anyway).
    """
    obs_log.configure(args.verbose - args.quiet)
    trace_target: Optional[str] = args.trace
    metrics_out: Optional[str] = args.metrics_out
    if trace_target is not None:
        obs_trace.enable(trace_target)
        os.environ[obs_trace.TRACE_ENV_VAR] = str(trace_target)
    if metrics_out is not None:
        obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        obs_metrics.enable()
    return trace_target, metrics_out


def _deactivate_obs(trace_target: Optional[str], metrics_out: Optional[str]) -> None:
    """Undo :func:`_activate_obs` so repeated ``main()`` calls stay isolated."""
    if metrics_out is not None:
        obs_metrics.disable()
    if trace_target is not None:
        if os.environ.get(obs_trace.TRACE_ENV_VAR) == str(trace_target):
            os.environ.pop(obs_trace.TRACE_ENV_VAR, None)
        obs_trace.reset()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "stats":
        print(_run_stats(args, parser))
        return 0
    if args.command == "cache":
        print(_run_cache(args))
        return 0
    trace_target, metrics_out = _activate_obs(args)
    try:
        if args.command == "sweep":
            output, exit_code = _run_sweep(args, parser)
        else:
            config = _make_config(args)
            context = build_context(
                config, store=_make_store(args), gen_workers=args.gen_workers
            )
            output = _COMMANDS[args.command](context)
            exit_code = 0
        if metrics_out is not None:
            snapshot = obs_metrics.registry().snapshot()
            Path(metrics_out).write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        print(output)
        return exit_code
    finally:
        _deactivate_obs(trace_target, metrics_out)


if __name__ == "__main__":
    sys.exit(main())
