"""Command-line interface.

``iot-backend-repro`` exposes the main experiments so results can be regenerated
without writing Python::

    iot-backend-repro table1            # provider characterization (Table 1)
    iot-backend-repro patterns          # regexes and queries (Table 2 / Appendix A)
    iot-backend-repro discovery         # end-to-end discovery summary (Figure 2)
    iot-backend-repro sources           # per-source contribution (Figure 3)
    iot-backend-repro stability         # IP-set stability (Figure 4)
    iot-backend-repro traffic           # traffic analyses (Figures 5-14)
    iot-backend-repro outage            # AWS outage impact (Figures 15-16)
    iot-backend-repro disruptions       # BGP / blocklist exposure (Section 6.2)

Common options select the scenario scale and seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import build_context
from repro.experiments import characterization, disruption_experiments, traffic_experiments
from repro.simulation.config import ScenarioConfig


def _make_config(args: argparse.Namespace) -> ScenarioConfig:
    config = ScenarioConfig.small(seed=args.seed) if args.small else ScenarioConfig(seed=args.seed)
    if args.subscriber_lines:
        config = config.with_overrides(n_subscriber_lines=args.subscriber_lines)
    if args.scale:
        config = config.with_overrides(scale=args.scale)
    return config


def _cmd_table1(context) -> str:
    return characterization.table1_characterization(context).render()


def _cmd_patterns(context) -> str:
    return characterization.table2_regexes().render()


def _cmd_discovery(context) -> str:
    return characterization.pipeline_summary(context).render()


def _cmd_sources(context) -> str:
    return characterization.fig3_source_contribution(context).render()


def _cmd_stability(context) -> str:
    return characterization.fig4_stability(context).render()


def _cmd_validation(context) -> str:
    return characterization.sec34_validation(context).render()


def _cmd_traffic(context) -> str:
    sections = [
        traffic_experiments.fig5_scanner_threshold(context).render(),
        traffic_experiments.fig6_visibility(context).render(),
        traffic_experiments.fig7_tls_only_loss(context).render(),
        traffic_experiments.fig8_subscriber_activity(context).render(),
        traffic_experiments.fig9_traffic_volume(context).render(),
        traffic_experiments.fig10_direction_ratio(context).render(),
        traffic_experiments.fig11_port_mix(context).render(),
        traffic_experiments.fig12_per_subscriber_volumes(context).render(),
        traffic_experiments.fig13_fig14_region_crossing(context).render(),
    ]
    return "\n\n".join(sections)


def _cmd_outage(context) -> str:
    result = disruption_experiments.fig15_fig16_outage(context)
    return result.render("15") + "\n\n" + result.render("16")


def _cmd_disruptions(context) -> str:
    return disruption_experiments.sec62_potential_disruptions(context).render()


def _cmd_ablations(context) -> str:
    return (
        disruption_experiments.ablation_portscan_baseline(context).render()
        + "\n\n"
        + disruption_experiments.ablation_vantage_points(context).render()
    )


_COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "patterns": _cmd_patterns,
    "discovery": _cmd_discovery,
    "sources": _cmd_sources,
    "stability": _cmd_stability,
    "validation": _cmd_validation,
    "traffic": _cmd_traffic,
    "outage": _cmd_outage,
    "disruptions": _cmd_disruptions,
    "ablations": _cmd_ablations,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="iot-backend-repro",
        description="Reproduction of 'Deep Dive into the IoT Backend Ecosystem' (IMC 2022).",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="experiment to run")
    parser.add_argument("--seed", type=int, default=7, help="scenario seed (default 7)")
    parser.add_argument("--small", action="store_true", help="use the small test scenario")
    parser.add_argument("--scale", type=float, default=None, help="provider deployment scale factor")
    parser.add_argument(
        "--subscriber-lines", type=int, default=None, help="number of ISP subscriber lines"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    config = _make_config(args)
    context = build_context(config)
    output = _COMMANDS[args.command](context)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
