"""Command-line interface.

``iot-backend-repro`` exposes the main experiments so results can be regenerated
without writing Python::

    iot-backend-repro table1            # provider characterization (Table 1)
    iot-backend-repro patterns          # regexes and queries (Table 2 / Appendix A)
    iot-backend-repro discovery         # end-to-end discovery summary (Figure 2)
    iot-backend-repro sources           # per-source contribution (Figure 3)
    iot-backend-repro stability         # IP-set stability (Figure 4)
    iot-backend-repro validation        # methodology validation (Section 3.4/3.5)
    iot-backend-repro traffic           # traffic analyses (Figures 5-14)
    iot-backend-repro outage            # AWS outage impact (Figures 15-16)
    iot-backend-repro disruptions       # BGP / blocklist exposure (Section 6.2)
    iot-backend-repro ablations         # portscan-only / vantage-point ablations

and the scenario-scale subsystem::

    iot-backend-repro sweep --axis sampling_ratio=1,10 --axis scale=0.01,0.02 \\
        --metrics traffic,outage --workers 4 --ledger sweep.jsonl
                                        # parallel multi-scenario campaign
    iot-backend-repro sweep --axis scale=0.01,0.02 --resume sweep.jsonl \\
        --retries 2 --timeout 600       # resume an interrupted campaign
    iot-backend-repro cache ls          # list the on-disk artifact store
    iot-backend-repro cache prune       # delete cached artifacts

Sweeps are fault tolerant: every scenario attempt is appended to the ledger
the moment it finishes (so a killed run loses nothing that completed),
``--retries N`` re-runs failed or timed-out scenarios with exponential
backoff (``--backoff``), ``--timeout SECONDS`` bounds each scenario's wall
clock, ``--max-failures N`` opens a circuit breaker after N consecutive
scenario failures, and ``--resume LEDGER`` skips every scenario the ledger
already records as ``ok`` and re-runs the rest — per-scenario metrics are
bit-identical to an uninterrupted run, only timing fields differ.

Common options select the scenario scale and seed; ``--store DIR`` attaches the
persistent artifact cache so repeated invocations warm-start from disk.  The
store covers both flow tables (``generated:*``, ``raw-export``, ``clean:*``
stages) and persisted discovery footprints (``discovery:<pattern
fingerprint>``), so warm ``discovery``/``table1``/``sources`` runs skip the
multi-source classification pipeline entirely; ``cache ls`` lists every stage.

``--gen-workers N`` generates the hours of a study period in N parallel
worker processes (hours draw from independent per-hour streams, so the flows
— and therefore every downstream result and artifact-store address — are
byte-identical at any worker count; only wall-clock changes).  Under ``sweep``
it composes with ``--workers``: each scenario worker runs its own clamped
generation pool, capped so the product never oversubscribes the machine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import build_context
from repro.experiments import characterization, disruption_experiments, traffic_experiments
from repro.simulation.config import ScenarioConfig


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _make_config(args: argparse.Namespace) -> ScenarioConfig:
    config = ScenarioConfig.small(seed=args.seed) if args.small else ScenarioConfig(seed=args.seed)
    # `is not None` (not truthiness): explicit values must always be applied, and
    # non-positive ones are rejected by the parser types above.
    if args.subscriber_lines is not None:
        config = config.with_overrides(n_subscriber_lines=args.subscriber_lines)
    if args.scale is not None:
        config = config.with_overrides(scale=args.scale)
    return config


def _make_store(args: argparse.Namespace):
    if getattr(args, "store", None) is None:
        return None
    from repro.store.artifacts import ArtifactStore

    return ArtifactStore(args.store)


def _cmd_table1(context) -> str:
    return characterization.table1_characterization(context).render()


def _cmd_patterns(context) -> str:
    return characterization.table2_regexes().render()


def _cmd_discovery(context) -> str:
    return characterization.pipeline_summary(context).render()


def _cmd_sources(context) -> str:
    return characterization.fig3_source_contribution(context).render()


def _cmd_stability(context) -> str:
    return characterization.fig4_stability(context).render()


def _cmd_validation(context) -> str:
    return characterization.sec34_validation(context).render()


def _cmd_traffic(context) -> str:
    sections = [
        traffic_experiments.fig5_scanner_threshold(context).render(),
        traffic_experiments.fig6_visibility(context).render(),
        traffic_experiments.fig7_tls_only_loss(context).render(),
        traffic_experiments.fig8_subscriber_activity(context).render(),
        traffic_experiments.fig9_traffic_volume(context).render(),
        traffic_experiments.fig10_direction_ratio(context).render(),
        traffic_experiments.fig11_port_mix(context).render(),
        traffic_experiments.fig12_per_subscriber_volumes(context).render(),
        traffic_experiments.fig13_fig14_region_crossing(context).render(),
    ]
    return "\n\n".join(sections)


def _cmd_outage(context) -> str:
    result = disruption_experiments.fig15_fig16_outage(context)
    return result.render("15") + "\n\n" + result.render("16")


def _cmd_disruptions(context) -> str:
    return disruption_experiments.sec62_potential_disruptions(context).render()


def _cmd_ablations(context) -> str:
    return (
        disruption_experiments.ablation_portscan_baseline(context).render()
        + "\n\n"
        + disruption_experiments.ablation_vantage_points(context).render()
    )


_COMMANDS: Dict[str, Callable] = {
    "table1": _cmd_table1,
    "patterns": _cmd_patterns,
    "discovery": _cmd_discovery,
    "sources": _cmd_sources,
    "stability": _cmd_stability,
    "validation": _cmd_validation,
    "traffic": _cmd_traffic,
    "outage": _cmd_outage,
    "disruptions": _cmd_disruptions,
    "ablations": _cmd_ablations,
}

_COMMAND_HELP = {
    "table1": "provider characterization (Table 1)",
    "patterns": "regexes and queries (Table 2 / Appendix A)",
    "discovery": "end-to-end discovery summary (Figure 2)",
    "sources": "per-source contribution (Figure 3)",
    "stability": "IP-set stability (Figure 4)",
    "validation": "methodology validation (Section 3.4/3.5)",
    "traffic": "traffic analyses (Figures 5-14)",
    "outage": "AWS outage impact (Figures 15-16)",
    "disruptions": "BGP / blocklist exposure (Section 6.2)",
    "ablations": "portscan-only / vantage-point ablations",
}


def _scenario_options() -> argparse.ArgumentParser:
    """Shared scenario options (a parents= parser for every subcommand)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=7, help="scenario seed (default 7)")
    common.add_argument("--small", action="store_true", help="use the small test scenario")
    common.add_argument(
        "--scale", type=_positive_float, default=None, help="provider deployment scale factor"
    )
    common.add_argument(
        "--subscriber-lines",
        type=_positive_int,
        default=None,
        help="number of ISP subscriber lines",
    )
    common.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory for persistent warm starts "
        "(default: no persistent cache)",
    )
    common.add_argument(
        "--gen-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="parallel worker processes for per-hour flow generation "
        "(byte-identical output at any count; default: serial)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="iot-backend-repro",
        description="Reproduction of 'Deep Dive into the IoT Backend Ecosystem' (IMC 2022).",
    )
    common = _scenario_options()
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="command")
    for name in sorted(_COMMANDS):
        subparsers.add_parser(name, parents=[common], help=_COMMAND_HELP[name])

    sweep = subparsers.add_parser(
        "sweep", parents=[common], help="run a grid of scenarios across workers"
    )
    sweep.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="FIELD=V1,V2,...",
        help="a swept ScenarioConfig field and its values (repeatable)",
    )
    sweep.add_argument(
        "--metrics",
        default="traffic",
        help="comma-separated metric sets to evaluate per scenario "
        "(traffic, discovery, outage; default: traffic)",
    )
    sweep.add_argument(
        "--workers", type=_positive_int, default=1, help="parallel worker processes (default 1)"
    )
    sweep.add_argument(
        "--ledger", default=None, metavar="PATH", help="write the JSONL results ledger here"
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="LEDGER",
        help="resume an interrupted campaign: skip scenarios this ledger records "
        "as ok, re-run the rest, append to it (or to --ledger when given)",
    )
    sweep.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="re-run a failed or timed-out scenario up to N times (default 0)",
    )
    sweep.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-scenario wall-clock limit, enforced inside the worker "
        "(default: unlimited)",
    )
    sweep.add_argument(
        "--backoff",
        type=_nonnegative_float,
        default=0.5,
        metavar="SECONDS",
        help="base delay before a retry, doubled per attempt (default 0.5)",
    )
    sweep.add_argument(
        "--max-failures",
        type=_positive_int,
        default=None,
        metavar="N",
        help="circuit breaker: stop submitting scenarios after N consecutive "
        "failures (in-flight work still drains; default: never)",
    )
    sweep.add_argument(
        "--pivot",
        default=None,
        metavar="METRIC",
        help="metric to pivot over the first one/two axes (default: first metric)",
    )

    cache = subparsers.add_parser("cache", help="inspect or prune the artifact store")
    cache.add_argument("action", choices=("ls", "prune"), help="what to do with the store")
    cache.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory (default: $IOT_REPRO_STORE or ~/.cache/iot-backend-repro)",
    )
    cache.add_argument(
        "--older-than-days",
        type=_positive_float,
        default=None,
        help="prune only artifacts older than this many days",
    )
    return parser


def _run_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> Tuple[str, int]:
    from repro.sweeps import LedgerError, ScenarioGrid, SweepRunner

    base = _make_config(args)
    try:
        grid = ScenarioGrid.from_strings(base, args.axis)
        grid.specs()  # expand eagerly so invalid axis *values* fail as parser errors too
        runner = SweepRunner(
            metrics=tuple(name.strip() for name in args.metrics.split(",") if name.strip()),
            workers=args.workers,
            store=args.store,
            ledger_path=args.ledger,
            gen_workers=args.gen_workers if args.gen_workers is not None else 1,
            retries=args.retries,
            timeout=args.timeout,
            backoff=args.backoff,
            max_consecutive_failures=args.max_failures,
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        result = runner.run(grid, resume=args.resume)
    except (FileNotFoundError, LedgerError) as error:
        parser.error(f"--resume: {error}")
    sections = [result.render_results()]
    pivot_metric = args.pivot or (result.metric_names()[0] if result.metric_names() else None)
    if pivot_metric is not None:
        axes = grid.axis_names
        col_axis = axes[1] if len(axes) > 1 else None
        sections.append(result.render_pivot(pivot_metric, axes[0], col_axis))
    if args.resume:
        sections.append(
            f"resumed from {args.resume}: {result.reused_count} scenario(s) reused, "
            f"{len(result) - result.reused_count} re-run"
        )
    ledger_target = args.ledger or args.resume
    if ledger_target:
        sections.append(f"ledger written to {ledger_target}")
    failures = result.failures()
    if failures:
        sections.append(
            f"{len(failures)} of {len(result)} scenarios FAILED:\n"
            + "\n".join(f"  {outcome.scenario_id}: {outcome.error}" for outcome in failures)
        )
    return "\n\n".join(sections), 1 if failures else 0


def _run_cache(args: argparse.Namespace) -> str:
    from repro.core.report import render_table
    from repro.store.artifacts import ArtifactStore

    store = ArtifactStore(args.store)
    if args.action == "prune":
        cutoff = args.older_than_days * 86400.0 if args.older_than_days is not None else None
        removed, freed = store.prune(older_than_seconds=cutoff)
        return f"pruned {removed} artifact(s), freed {freed / 1e6:.1f} MB from {store.root}"
    entries = store.entries()
    if not entries:
        return f"artifact store {store.root} is empty"
    rows = [
        [
            entry.digest[:12],
            entry.stage,
            entry.period,
            entry.rows,
            f"{entry.payload_bytes / 1e6:.1f} MB",
            f"{entry.age_seconds / 3600.0:.1f}h",
        ]
        for entry in entries
    ]
    total_bytes = sum(entry.payload_bytes for entry in entries)
    table = render_table(
        ["digest", "stage", "period", "rows", "size", "age"],
        rows,
        title=f"Artifact store {store.root} ({total_bytes / 1e6:.1f} MB)",
    )
    return table


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "sweep":
        output, exit_code = _run_sweep(args, parser)
        print(output)
        return exit_code
    if args.command == "cache":
        print(_run_cache(args))
        return 0
    config = _make_config(args)
    context = build_context(config, store=_make_store(args), gen_workers=args.gen_workers)
    output = _COMMANDS[args.command](context)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
