"""Minimal AMQP 1.0 connection-header model.

AMQP (over TLS, port 5671) is offered by Bosch IoT Hub and Microsoft Azure IoT Hub
in the study.  A scanner only needs the protocol header exchange to confirm that an
AMQP stack is listening: the client sends the 8-byte protocol header
``AMQP\\x00\\x01\\x00\\x00`` (or the SASL/TLS variants) and the server either echoes
a protocol header or closes the connection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class AmqpProtocolId(enum.IntEnum):
    """AMQP protocol ids carried in the protocol header."""

    AMQP = 0
    TLS = 2
    SASL = 3


@dataclass(frozen=True)
class ProtocolHeader:
    """The 8-byte AMQP protocol header."""

    protocol_id: AmqpProtocolId = AmqpProtocolId.AMQP
    major: int = 1
    minor: int = 0
    revision: int = 0

    MAGIC = b"AMQP"

    def encode(self) -> bytes:
        """Encode into the 8-byte wire representation."""
        return self.MAGIC + bytes([int(self.protocol_id), self.major, self.minor, self.revision])

    @classmethod
    def decode(cls, data: bytes) -> "ProtocolHeader":
        """Decode an 8-byte protocol header."""
        if len(data) < 8 or data[:4] != cls.MAGIC:
            raise ValueError("not an AMQP protocol header")
        return cls(
            protocol_id=AmqpProtocolId(data[4]),
            major=data[5],
            minor=data[6],
            revision=data[7],
        )


@dataclass
class AmqpServerBehaviour:
    """Server-side AMQP behaviour of a backend gateway.

    ``requires_sasl`` models brokers that insist on SASL authentication: they answer
    a plain AMQP header with a SASL header, which still confirms an AMQP listener.
    """

    requires_sasl: bool = True
    container_id: str = "iot-backend-amqp"

    def handle_header(self, header: ProtocolHeader) -> ProtocolHeader:
        """Return the protocol header the broker responds with."""
        if self.requires_sasl and header.protocol_id != AmqpProtocolId.SASL:
            return ProtocolHeader(protocol_id=AmqpProtocolId.SASL)
        return ProtocolHeader(protocol_id=header.protocol_id)


@dataclass(frozen=True)
class AmqpProbeResult:
    """Outcome of an AMQP probe."""

    responded: bool
    negotiated_protocol: Optional[AmqpProtocolId] = None
    container_id: Optional[str] = None

    @property
    def spoke_amqp(self) -> bool:
        """True when the endpoint answered with a valid AMQP protocol header."""
        return self.responded and self.negotiated_protocol is not None


def probe_server(behaviour: AmqpServerBehaviour) -> AmqpProbeResult:
    """Run the protocol-header exchange against a broker behaviour."""
    client_header = ProtocolHeader()
    decoded = ProtocolHeader.decode(client_header.encode())
    response = behaviour.handle_header(decoded)
    decoded_response = ProtocolHeader.decode(response.encode())
    return AmqpProbeResult(
        responded=True,
        negotiated_protocol=decoded_response.protocol_id,
        container_id=behaviour.container_id,
    )
