"""Application-layer protocol substrate.

These modules implement lightweight but faithful models of the protocols IoT
backends expose at their Internet-facing gateways: MQTT (including MQTT over TLS),
CoAP, AMQP, and HTTP(S).  The scanners in :mod:`repro.scan` speak these protocols
when probing addresses, and the flow workload generator tags flows with the port
of the protocol the device uses.
"""

from repro.protocols.ports import (
    IANA_PORT_SERVICES,
    PortService,
    STANDARD_IOT_PORTS,
    classify_port,
    describe_port,
    is_standard_iot_port,
    is_web_port,
)

__all__ = [
    "IANA_PORT_SERVICES",
    "PortService",
    "STANDARD_IOT_PORTS",
    "classify_port",
    "describe_port",
    "is_standard_iot_port",
    "is_web_port",
]
