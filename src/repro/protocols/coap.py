"""Minimal CoAP (RFC 7252) message model.

CoAP is one of the IoT protocols offered by several backends in the study (on the
standard ports 5683/5684 and on non-standard ports 5682/5686).  The scanners send a
confirmable GET for ``/.well-known/core`` and record whether a syntactically valid
CoAP response comes back.  The header encoding follows RFC 7252 so that encode /
decode round-trips can be property-tested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

COAP_VERSION = 1


class MessageType(enum.IntEnum):
    """CoAP message types."""

    CONFIRMABLE = 0
    NON_CONFIRMABLE = 1
    ACKNOWLEDGEMENT = 2
    RESET = 3


class Code(enum.IntEnum):
    """A subset of CoAP method and response codes (class.detail encoded as c*32+d)."""

    EMPTY = 0
    GET = 1
    POST = 2
    CONTENT = (2 << 5) | 5       # 2.05
    NOT_FOUND = (4 << 5) | 4     # 4.04
    UNAUTHORIZED = (4 << 5) | 1  # 4.01

    @property
    def code_class(self) -> int:
        """The class part of the code (e.g. 2 for 2.05)."""
        return int(self) >> 5

    @property
    def dotted(self) -> str:
        """Dotted representation, e.g. ``2.05``."""
        return f"{self.code_class}.{int(self) & 0x1F:02d}"


@dataclass(frozen=True)
class CoapMessage:
    """A CoAP message header plus an opaque payload."""

    message_type: MessageType
    code: Code
    message_id: int
    token: bytes = b""
    payload: bytes = b""

    def encode(self) -> bytes:
        """Encode into the RFC 7252 fixed header + token + payload marker layout."""
        if not 0 <= self.message_id <= 0xFFFF:
            raise ValueError("message id out of range")
        if len(self.token) > 8:
            raise ValueError("token longer than 8 bytes")
        first = (COAP_VERSION << 6) | (int(self.message_type) << 4) | len(self.token)
        header = bytes([first, int(self.code)]) + self.message_id.to_bytes(2, "big")
        body = self.token
        if self.payload:
            body += b"\xff" + self.payload
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "CoapMessage":
        """Decode a message from wire format."""
        if len(data) < 4:
            raise ValueError("truncated CoAP header")
        version = data[0] >> 6
        if version != COAP_VERSION:
            raise ValueError(f"unsupported CoAP version {version}")
        message_type = MessageType((data[0] >> 4) & 0x03)
        token_length = data[0] & 0x0F
        if token_length > 8:
            raise ValueError("invalid token length")
        code = Code(data[1])
        message_id = int.from_bytes(data[2:4], "big")
        token = data[4 : 4 + token_length]
        rest = data[4 + token_length :]
        payload = b""
        if rest:
            if rest[0] != 0xFF:
                raise ValueError("expected payload marker")
            payload = rest[1:]
        return cls(message_type, code, message_id, token, payload)


@dataclass
class CoapServerBehaviour:
    """Server-side CoAP behaviour of a backend gateway.

    ``requires_authentication`` models gateways that answer 4.01 Unauthorized to
    unauthenticated discovery requests; they still prove that a CoAP stack is
    listening, which is what the scanner records.
    """

    requires_authentication: bool = True
    resources: Tuple[str, ...] = ("/.well-known/core",)

    def handle(self, request: CoapMessage) -> CoapMessage:
        """Produce the response a server with this behaviour would send."""
        if request.code != Code.GET:
            return CoapMessage(MessageType.RESET, Code.EMPTY, request.message_id)
        if self.requires_authentication:
            return CoapMessage(
                MessageType.ACKNOWLEDGEMENT, Code.UNAUTHORIZED, request.message_id, request.token
            )
        body = ",".join(f"<{r}>" for r in self.resources).encode("ascii")
        return CoapMessage(
            MessageType.ACKNOWLEDGEMENT, Code.CONTENT, request.message_id, request.token, body
        )


@dataclass(frozen=True)
class CoapProbeResult:
    """Outcome of a CoAP probe."""

    responded: bool
    response_code: Optional[Code] = None

    @property
    def spoke_coap(self) -> bool:
        """True when a syntactically valid CoAP response was received."""
        return self.responded


def probe_server(behaviour: CoapServerBehaviour, message_id: int = 0x1234) -> CoapProbeResult:
    """Send a GET /.well-known/core style probe through the wire encoding."""
    request = CoapMessage(MessageType.CONFIRMABLE, Code.GET, message_id, token=b"\x01")
    decoded_request = CoapMessage.decode(request.encode())
    response = behaviour.handle(decoded_request)
    decoded_response = CoapMessage.decode(response.encode())
    return CoapProbeResult(responded=True, response_code=decoded_response.code)
