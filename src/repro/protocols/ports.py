"""IANA-style port registry and port classification.

The paper highlights that IoT backend providers use a mix of standard IoT ports
(MQTT 1883/8883, CoAP 5683/5684, AMQP 5671), Web ports (80/443), and non-standard
ports (e.g. MQTT on 1884 or 443, CoAP on 5682/5686, ActiveMQ on 61616).  The port
mix per provider is the subject of Figure 11, and the inadequacy of probing only
standard IoT ports is one of the paper's take-aways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

TCP = "tcp"
UDP = "udp"


@dataclass(frozen=True)
class PortService:
    """A (transport, port) pair together with its registered service name."""

    transport: str
    port: int
    service: str
    description: str = ""

    @property
    def label(self) -> str:
        """Label used in figures, e.g. ``TCP/8883 (MQTTS)``."""
        return f"{self.transport.upper()}/{self.port} ({self.service})"


# Port numbers referenced by the paper.
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_HTTPS_ALT = 8443
PORT_MQTT = 1883
PORT_MQTT_ALT = 1884
PORT_MQTTS = 8883
PORT_AMQPS = 5671
PORT_COAP = 5683
PORT_COAPS = 5684
PORT_COAP_ALT = 5682
PORT_COAP_ALT2 = 5686
PORT_HUAWEI_HTTPS = 8943
PORT_ACTIVEMQ = 61616
PORT_CISCO_KINETIC_A = 9123
PORT_CISCO_KINETIC_B = 9124
PORT_OPC_UA = 4840

#: Registered (IANA or conventional) services for the ports appearing in the study.
IANA_PORT_SERVICES: Dict[Tuple[str, int], PortService] = {
    (TCP, PORT_HTTP): PortService(TCP, PORT_HTTP, "HTTP", "Hypertext Transfer Protocol"),
    (TCP, PORT_HTTPS): PortService(TCP, PORT_HTTPS, "HTTPS", "HTTP over TLS"),
    (TCP, PORT_HTTPS_ALT): PortService(TCP, PORT_HTTPS_ALT, "HTTPS-alt", "Alternative HTTPS"),
    (TCP, PORT_MQTT): PortService(TCP, PORT_MQTT, "MQTT", "Message Queuing Telemetry Transport"),
    (TCP, PORT_MQTTS): PortService(TCP, PORT_MQTTS, "MQTTS", "MQTT over TLS"),
    (TCP, PORT_AMQPS): PortService(TCP, PORT_AMQPS, "AMQPS", "AMQP over TLS"),
    (UDP, PORT_COAP): PortService(UDP, PORT_COAP, "CoAP", "Constrained Application Protocol"),
    (UDP, PORT_COAPS): PortService(UDP, PORT_COAPS, "CoAPS", "CoAP over DTLS"),
    (TCP, PORT_ACTIVEMQ): PortService(TCP, PORT_ACTIVEMQ, "ActiveMQ", "Apache ActiveMQ messaging"),
    (TCP, PORT_OPC_UA): PortService(TCP, PORT_OPC_UA, "OPC-UA", "OPC Unified Architecture"),
}

#: Ports a naive scanner would treat as "IoT" (standard assignments only).
STANDARD_IOT_PORTS: Tuple[Tuple[str, int], ...] = (
    (TCP, PORT_MQTT),
    (TCP, PORT_MQTTS),
    (TCP, PORT_AMQPS),
    (UDP, PORT_COAP),
    (UDP, PORT_COAPS),
)

#: Ports considered generic Web ports.
WEB_PORTS: Tuple[Tuple[str, int], ...] = ((TCP, PORT_HTTP), (TCP, PORT_HTTPS))


def classify_port(transport: str, port: int) -> str:
    """Return a coarse class for a (transport, port) pair.

    Classes: ``iot-standard`` (IANA-assigned IoT protocol port), ``web`` (80/443),
    ``iot-nonstandard`` (ports documented by providers for IoT protocols but not
    IANA-assigned to them), and ``other``.
    """
    transport = transport.lower()
    key = (transport, port)
    if key in STANDARD_IOT_PORTS:
        return "iot-standard"
    if key in WEB_PORTS:
        return "web"
    if port in (
        PORT_MQTT_ALT,
        PORT_COAP_ALT,
        PORT_COAP_ALT2,
        PORT_HTTPS_ALT,
        PORT_HUAWEI_HTTPS,
        PORT_ACTIVEMQ,
        PORT_CISCO_KINETIC_A,
        PORT_CISCO_KINETIC_B,
        PORT_OPC_UA,
    ):
        return "iot-nonstandard"
    return "other"


def describe_port(transport: str, port: int) -> PortService:
    """Return the :class:`PortService` for a pair, synthesising one if unknown."""
    key = (transport.lower(), port)
    if key in IANA_PORT_SERVICES:
        return IANA_PORT_SERVICES[key]
    return PortService(transport.lower(), port, f"port-{port}", "unregistered")


def is_standard_iot_port(transport: str, port: int) -> bool:
    """Return True if the pair is one of the IANA-assigned IoT protocol ports."""
    return (transport.lower(), port) in STANDARD_IOT_PORTS


def is_web_port(transport: str, port: int) -> bool:
    """Return True if the pair is a generic Web port (HTTP/HTTPS)."""
    return (transport.lower(), port) in WEB_PORTS


def port_label(transport: str, port: int) -> str:
    """Return the figure label for a pair, e.g. ``TCP/8883 (MQTTS)``."""
    service = describe_port(transport, port)
    known = (transport.lower(), port) in IANA_PORT_SERVICES
    if known:
        return service.label
    return f"{transport.upper()}/{port}"
