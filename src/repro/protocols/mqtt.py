"""Minimal MQTT 3.1.1 model: CONNECT/CONNACK encoding and broker behaviour.

The scanners (:mod:`repro.scan.zgrab`) open MQTT connections to candidate backend
servers exactly like ZGrab2 with the MQTT module the authors added: perform the TLS
handshake where applicable and then send a CONNECT packet.  Providers that require
client certificates (e.g. Amazon's IoT MQTT endpoints) fail at the TLS layer;
providers that require credentials reject the CONNECT with a non-zero CONNACK
return code but still reveal their TLS certificate, which is all the methodology
needs.

Only the packet types required by the study are modelled (CONNECT, CONNACK,
PUBLISH, SUBSCRIBE headers), but the encodings follow the MQTT 3.1.1 wire format so
round-trip property tests are meaningful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

PROTOCOL_NAME = "MQTT"
PROTOCOL_LEVEL_311 = 4


class PacketType(enum.IntEnum):
    """MQTT control packet types (high nibble of the fixed header)."""

    CONNECT = 1
    CONNACK = 2
    PUBLISH = 3
    SUBSCRIBE = 8
    SUBACK = 9
    PINGREQ = 12
    PINGRESP = 13
    DISCONNECT = 14


class ConnectReturnCode(enum.IntEnum):
    """CONNACK return codes defined by MQTT 3.1.1."""

    ACCEPTED = 0
    UNACCEPTABLE_PROTOCOL_VERSION = 1
    IDENTIFIER_REJECTED = 2
    SERVER_UNAVAILABLE = 3
    BAD_USERNAME_OR_PASSWORD = 4
    NOT_AUTHORIZED = 5


def encode_remaining_length(length: int) -> bytes:
    """Encode the MQTT variable-length "remaining length" field."""
    if length < 0 or length > 268_435_455:
        raise ValueError(f"remaining length {length} out of range")
    encoded = bytearray()
    while True:
        digit = length % 128
        length //= 128
        if length > 0:
            digit |= 0x80
        encoded.append(digit)
        if length == 0:
            return bytes(encoded)


def decode_remaining_length(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a remaining-length field; return (value, bytes consumed)."""
    multiplier = 1
    value = 0
    consumed = 0
    while True:
        if offset + consumed >= len(data):
            raise ValueError("truncated remaining length")
        digit = data[offset + consumed]
        consumed += 1
        value += (digit & 0x7F) * multiplier
        if not digit & 0x80:
            return value, consumed
        multiplier *= 128
        if multiplier > 128**3:
            raise ValueError("malformed remaining length")


def _encode_utf8(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ValueError("string too long for MQTT UTF-8 field")
    return len(raw).to_bytes(2, "big") + raw


def _decode_utf8(data: bytes, offset: int) -> Tuple[str, int]:
    if offset + 2 > len(data):
        raise ValueError("truncated UTF-8 length prefix")
    length = int.from_bytes(data[offset : offset + 2], "big")
    end = offset + 2 + length
    if end > len(data):
        raise ValueError("truncated UTF-8 string")
    return data[offset + 2 : end].decode("utf-8"), end


@dataclass(frozen=True)
class ConnectPacket:
    """An MQTT CONNECT packet (the subset of fields the scanners use)."""

    client_id: str
    clean_session: bool = True
    keep_alive: int = 60
    username: Optional[str] = None
    password: Optional[str] = None
    protocol_level: int = PROTOCOL_LEVEL_311

    def encode(self) -> bytes:
        """Encode the packet into MQTT 3.1.1 wire format."""
        flags = 0x02 if self.clean_session else 0x00
        payload = _encode_utf8(self.client_id)
        if self.username is not None:
            flags |= 0x80
            payload += _encode_utf8(self.username)
        if self.password is not None:
            if self.username is None:
                raise ValueError("MQTT 3.1.1 forbids a password without a username")
            flags |= 0x40
            payload += _encode_utf8(self.password)
        variable_header = (
            _encode_utf8(PROTOCOL_NAME)
            + bytes([self.protocol_level, flags])
            + self.keep_alive.to_bytes(2, "big")
        )
        body = variable_header + payload
        fixed_header = bytes([PacketType.CONNECT << 4]) + encode_remaining_length(len(body))
        return fixed_header + body

    @classmethod
    def decode(cls, data: bytes) -> "ConnectPacket":
        """Decode a CONNECT packet from wire format."""
        if not data or (data[0] >> 4) != PacketType.CONNECT:
            raise ValueError("not a CONNECT packet")
        remaining, consumed = decode_remaining_length(data, 1)
        body = data[1 + consumed : 1 + consumed + remaining]
        if len(body) != remaining:
            raise ValueError("truncated CONNECT packet")
        protocol_name, offset = _decode_utf8(body, 0)
        if protocol_name != PROTOCOL_NAME:
            raise ValueError(f"unexpected protocol name {protocol_name!r}")
        protocol_level = body[offset]
        flags = body[offset + 1]
        keep_alive = int.from_bytes(body[offset + 2 : offset + 4], "big")
        client_id, offset = _decode_utf8(body, offset + 4)
        username = password = None
        if flags & 0x80:
            username, offset = _decode_utf8(body, offset)
        if flags & 0x40:
            password, offset = _decode_utf8(body, offset)
        return cls(
            client_id=client_id,
            clean_session=bool(flags & 0x02),
            keep_alive=keep_alive,
            username=username,
            password=password,
            protocol_level=protocol_level,
        )


@dataclass(frozen=True)
class ConnackPacket:
    """An MQTT CONNACK packet."""

    return_code: ConnectReturnCode
    session_present: bool = False

    def encode(self) -> bytes:
        """Encode the packet into MQTT 3.1.1 wire format."""
        body = bytes([0x01 if self.session_present else 0x00, int(self.return_code)])
        return bytes([PacketType.CONNACK << 4]) + encode_remaining_length(len(body)) + body

    @classmethod
    def decode(cls, data: bytes) -> "ConnackPacket":
        """Decode a CONNACK packet from wire format."""
        if not data or (data[0] >> 4) != PacketType.CONNACK:
            raise ValueError("not a CONNACK packet")
        remaining, consumed = decode_remaining_length(data, 1)
        body = data[1 + consumed : 1 + consumed + remaining]
        if len(body) < 2:
            raise ValueError("truncated CONNACK packet")
        return cls(
            return_code=ConnectReturnCode(body[1]),
            session_present=bool(body[0] & 0x01),
        )

    @property
    def accepted(self) -> bool:
        """True when the broker accepted the connection."""
        return self.return_code == ConnectReturnCode.ACCEPTED


@dataclass
class MqttBrokerBehaviour:
    """Server-side MQTT behaviour of a backend gateway.

    Parameters
    ----------
    requires_authentication:
        When True, CONNECT packets without credentials receive
        ``NOT_AUTHORIZED``; with credentials they receive
        ``BAD_USERNAME_OR_PASSWORD`` (the scanner never has valid credentials).
    banner:
        Free-text string identifying the broker software, exposed to banner grabs.
    """

    requires_authentication: bool = True
    banner: str = "generic-mqtt-broker"
    accepted_protocol_levels: Tuple[int, ...] = (PROTOCOL_LEVEL_311,)

    def handle_connect(self, packet: ConnectPacket) -> ConnackPacket:
        """Produce the CONNACK a broker with this behaviour would send."""
        if packet.protocol_level not in self.accepted_protocol_levels:
            return ConnackPacket(ConnectReturnCode.UNACCEPTABLE_PROTOCOL_VERSION)
        if not packet.client_id:
            return ConnackPacket(ConnectReturnCode.IDENTIFIER_REJECTED)
        if self.requires_authentication:
            if packet.username is None:
                return ConnackPacket(ConnectReturnCode.NOT_AUTHORIZED)
            return ConnackPacket(ConnectReturnCode.BAD_USERNAME_OR_PASSWORD)
        return ConnackPacket(ConnectReturnCode.ACCEPTED)


@dataclass(frozen=True)
class MqttProbeResult:
    """Outcome of an application-layer MQTT probe (after any TLS handshake)."""

    connected: bool
    return_code: Optional[ConnectReturnCode] = None
    banner: Optional[str] = None

    @property
    def spoke_mqtt(self) -> bool:
        """True when the endpoint answered with a valid CONNACK at all."""
        return self.return_code is not None


def probe_broker(behaviour: MqttBrokerBehaviour, client_id: str = "zgrab-probe") -> MqttProbeResult:
    """Run the scanner-side MQTT handshake against a broker behaviour.

    The probe encodes a real CONNECT packet, lets the behaviour decode and answer
    it, and decodes the CONNACK, mirroring what ZGrab2's MQTT module does on the
    wire.
    """
    connect = ConnectPacket(client_id=client_id)
    wire_connect = connect.encode()
    decoded = ConnectPacket.decode(wire_connect)
    connack = behaviour.handle_connect(decoded)
    wire_connack = connack.encode()
    decoded_connack = ConnackPacket.decode(wire_connack)
    return MqttProbeResult(
        connected=decoded_connack.accepted,
        return_code=decoded_connack.return_code,
        banner=behaviour.banner,
    )
