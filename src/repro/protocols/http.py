"""Minimal HTTP/1.1 request/response model used by the scanning substrate.

Backend gateways commonly expose HTTPS endpoints (device provisioning, REST data
ingestion).  The scanner issues a ``GET /`` and records the status line and the
``Server`` header; when the gateway fronts a non-Web IoT service the typical answer
is a 4xx, which is still enough to confirm an HTTP stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

CRLF = "\r\n"


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP/1.1 request (request line + headers, no body)."""

    method: str = "GET"
    path: str = "/"
    host: str = ""
    headers: Tuple[Tuple[str, str], ...] = ()

    def encode(self) -> str:
        """Serialize the request into HTTP/1.1 text form."""
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        if self.host:
            lines.append(f"Host: {self.host}")
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        return CRLF.join(lines) + CRLF + CRLF

    @classmethod
    def decode(cls, text: str) -> "HttpRequest":
        """Parse an HTTP/1.1 request from text form."""
        head = text.split(CRLF + CRLF, 1)[0]
        lines = head.split(CRLF)
        try:
            method, path, version = lines[0].split(" ", 2)
        except ValueError as exc:
            raise ValueError("malformed request line") from exc
        if not version.startswith("HTTP/"):
            raise ValueError("malformed request line")
        host = ""
        headers = []
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            value = value.strip()
            if name.lower() == "host":
                host = value
            else:
                headers.append((name, value))
        return cls(method=method, path=path, host=host, headers=tuple(headers))


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP/1.1 response (status line + headers + optional short body)."""

    status_code: int
    reason: str = ""
    headers: Tuple[Tuple[str, str], ...] = ()
    body: str = ""

    def encode(self) -> str:
        """Serialize the response into HTTP/1.1 text form."""
        lines = [f"HTTP/1.1 {self.status_code} {self.reason}".rstrip()]
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        return CRLF.join(lines) + CRLF + CRLF + self.body

    @classmethod
    def decode(cls, text: str) -> "HttpResponse":
        """Parse an HTTP/1.1 response from text form."""
        head, _, body = text.partition(CRLF + CRLF)
        lines = head.split(CRLF)
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ValueError("malformed status line")
        status_code = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers = []
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers.append((name, value.strip()))
        return cls(status_code=status_code, reason=reason, headers=tuple(headers), body=body)

    def header(self, name: str) -> Optional[str]:
        """Return the first header with the given (case-insensitive) name."""
        lowered = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == lowered:
                return value
        return None


@dataclass
class HttpServerBehaviour:
    """Server-side HTTP behaviour of a backend gateway."""

    server_header: str = "iot-gateway"
    status_for_unknown_host: int = 404
    status_for_known_host: int = 401
    known_hosts: Tuple[str, ...] = ()

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Produce the response a gateway with this behaviour would send."""
        known = not self.known_hosts or request.host in self.known_hosts
        status = self.status_for_known_host if known else self.status_for_unknown_host
        reason = {200: "OK", 401: "Unauthorized", 404: "Not Found", 403: "Forbidden"}.get(
            status, "Unknown"
        )
        return HttpResponse(
            status_code=status,
            reason=reason,
            headers=(("Server", self.server_header), ("Connection", "close")),
        )


@dataclass(frozen=True)
class HttpProbeResult:
    """Outcome of an HTTP probe."""

    status_code: int
    server_header: Optional[str]

    @property
    def spoke_http(self) -> bool:
        """True when a syntactically valid HTTP response came back."""
        return 100 <= self.status_code <= 599


def probe_server(behaviour: HttpServerBehaviour, host: str = "") -> HttpProbeResult:
    """Issue a ``GET /`` through the text encoding and parse the response."""
    request = HttpRequest(host=host)
    decoded_request = HttpRequest.decode(request.encode())
    response = behaviour.handle(decoded_request)
    decoded_response = HttpResponse.decode(response.encode())
    return HttpProbeResult(
        status_code=decoded_response.status_code,
        server_header=decoded_response.header("Server"),
    )
