"""Authoritative DNS answering with vantage-point-dependent responses.

Real IoT backends answer DNS queries with a *subset* of their server addresses, and
the subset depends on the resolver's location (geo-DNS) and on load-balancer
rotation (round robin).  This is why the paper performs active resolutions from
three vantage points (two in Europe, one in the US) and observes a ≈17% increase in
address coverage over a single location (Section 3.3).

:class:`AuthoritativeNameServer` models this behaviour: each owner name maps to a
set of address records annotated with the location of the server behind them, plus
an answer policy deciding which subset a particular query sees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.netmodel.geo import Location
from repro.dns.zone import RTYPE_A, RTYPE_AAAA, normalize_name


class AnswerPolicy(enum.Enum):
    """How an authoritative server selects the records returned for a query."""

    #: Return every record for the name (small record sets).
    ALL = "all"
    #: Return a fixed-size window that rotates with the query counter.
    ROUND_ROBIN = "round-robin"
    #: Return only records whose server location is on the client's continent,
    #: falling back to all records when there is none.
    GEO = "geo"


@dataclass(frozen=True)
class AuthoritativeRecord:
    """One address record owned by the authoritative server."""

    name: str
    rtype: str
    address: str
    location: Optional[Location] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.rtype not in (RTYPE_A, RTYPE_AAAA):
            raise ValueError(f"authoritative records must be A or AAAA, got {self.rtype}")


@dataclass
class _NameEntry:
    policy: AnswerPolicy
    records: List[AuthoritativeRecord] = field(default_factory=list)
    window: int = 4
    query_counter: int = 0


class AuthoritativeNameServer:
    """The authoritative server for all backend domain names in the simulation."""

    def __init__(self, default_policy: AnswerPolicy = AnswerPolicy.ALL, window: int = 4) -> None:
        self._entries: Dict[Tuple[str, str], _NameEntry] = {}
        self._default_policy = default_policy
        self._default_window = window

    def register(
        self,
        record: AuthoritativeRecord,
        policy: Optional[AnswerPolicy] = None,
        window: Optional[int] = None,
    ) -> None:
        """Register an address record, optionally configuring the name's policy."""
        key = (record.name, record.rtype)
        entry = self._entries.get(key)
        if entry is None:
            entry = _NameEntry(
                policy=policy or self._default_policy,
                window=window or self._default_window,
            )
            self._entries[key] = entry
        elif policy is not None:
            entry.policy = policy
        if window is not None:
            entry.window = window
        if record not in entry.records:
            entry.records.append(record)

    def register_many(
        self,
        records: Iterable[AuthoritativeRecord],
        policy: Optional[AnswerPolicy] = None,
        window: Optional[int] = None,
    ) -> None:
        """Register several records under the same policy."""
        for record in records:
            self.register(record, policy=policy, window=window)

    def names(self) -> List[str]:
        """Return every owner name with at least one record."""
        return sorted({name for name, _ in self._entries})

    def record_count(self) -> int:
        """Total number of registered records."""
        return sum(len(entry.records) for entry in self._entries.values())

    def all_records(self, name: str, rtype: str) -> List[AuthoritativeRecord]:
        """Return every record for (name, rtype) regardless of policy."""
        entry = self._entries.get((normalize_name(name), rtype))
        return list(entry.records) if entry else []

    def query(
        self,
        name: str,
        rtype: str,
        client_location: Optional[Location] = None,
    ) -> List[AuthoritativeRecord]:
        """Answer a query as seen from a resolver at ``client_location``.

        The answer depends on the name's policy:

        * ``ALL``: every record.
        * ``ROUND_ROBIN``: a window of records that advances by one on every query,
          so repeated resolutions gradually reveal the full set.
        * ``GEO``: only records on the client's continent (falling back to the full
          set when the provider has no presence there), so resolvers at different
          vantage points see different subsets.
        """
        key = (normalize_name(name), rtype)
        entry = self._entries.get(key)
        if entry is None:
            return []
        records = entry.records
        if entry.policy == AnswerPolicy.ALL or len(records) <= 1:
            return list(records)
        if entry.policy == AnswerPolicy.ROUND_ROBIN:
            start = entry.query_counter % len(records)
            entry.query_counter += 1
            window = entry.window
            rotated = records[start:] + records[:start]
            return rotated[:window]
        if entry.policy == AnswerPolicy.GEO:
            if client_location is None:
                return list(records[: entry.window])
            local = [
                record
                for record in records
                if record.location is not None
                and record.location.continent == client_location.continent
            ]
            if not local:
                return list(records[: entry.window])
            # Within the continent, still rotate to model load balancing.
            start = entry.query_counter % len(local)
            entry.query_counter += 1
            rotated = local[start:] + local[:start]
            return rotated[: entry.window]
        raise AssertionError(f"unhandled answer policy {entry.policy}")
