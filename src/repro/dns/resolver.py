"""Recursive stub resolver and measurement vantage points.

The paper performs daily active DNS resolutions for all domains identified via
passive DNS, from three vantage points (two in Europe, one in the US), respecting a
rate limit (Section 3.3, 3.7).  The resolver here queries the authoritative server
with the vantage point's location so geo-DNS answers differ across vantage points,
and repeats queries to progressively uncover round-robin record sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dns.authoritative import AuthoritativeNameServer
from repro.dns.zone import RTYPE_A, RTYPE_AAAA, normalize_name
from repro.netmodel.geo import Location


@dataclass(frozen=True)
class VantagePoint:
    """A measurement location from which active resolutions are performed."""

    name: str
    location: Location

    def __str__(self) -> str:
        return f"{self.name} ({self.location.city})"


@dataclass
class ResolutionAnswer:
    """The outcome of resolving one name from one vantage point."""

    name: str
    rtype: str
    addresses: Tuple[str, ...]
    vantage_point: str


class StubResolver:
    """A stub resolver bound to a vantage point.

    Parameters
    ----------
    authoritative:
        The authoritative server holding all backend names.
    vantage_point:
        Where the resolver is located; forwarded to the authoritative server so
        geo-DNS policies apply.
    retries:
        Number of times a query is repeated per resolution; each retry can surface
        additional round-robin records.  The paper's ten-second pacing between
        queries is a rate-limiting concern without functional impact and is
        represented by ``query_delay_seconds`` for documentation purposes only.
    """

    def __init__(
        self,
        authoritative: AuthoritativeNameServer,
        vantage_point: VantagePoint,
        retries: int = 2,
        query_delay_seconds: float = 10.0,
    ) -> None:
        if retries < 1:
            raise ValueError("retries must be at least 1")
        self._authoritative = authoritative
        self.vantage_point = vantage_point
        self.retries = retries
        self.query_delay_seconds = query_delay_seconds
        self.queries_issued = 0

    def resolve(self, name: str, rtype: str = RTYPE_A) -> ResolutionAnswer:
        """Resolve a single name, merging the answers of all retries."""
        addresses: List[str] = []
        for _ in range(self.retries):
            self.queries_issued += 1
            answer = self._authoritative.query(
                name, rtype, client_location=self.vantage_point.location
            )
            for record in answer:
                if record.address not in addresses:
                    addresses.append(record.address)
        return ResolutionAnswer(
            name=normalize_name(name),
            rtype=rtype,
            addresses=tuple(addresses),
            vantage_point=self.vantage_point.name,
        )

    def resolve_all(self, name: str) -> List[ResolutionAnswer]:
        """Resolve both A and AAAA records for a name."""
        return [self.resolve(name, RTYPE_A), self.resolve(name, RTYPE_AAAA)]


def resolve_from_vantage_points(
    authoritative: AuthoritativeNameServer,
    vantage_points: Sequence[VantagePoint],
    names: Iterable[str],
    rtypes: Sequence[str] = (RTYPE_A, RTYPE_AAAA),
    retries: int = 2,
) -> Dict[str, Set[str]]:
    """Resolve every name from every vantage point and merge the answers.

    Returns a mapping from name to the union of all addresses observed.  Using
    several vantage points increases coverage for providers with geo-dependent
    answers, which is exactly the effect quantified in Section 3.3.
    """
    merged: Dict[str, Set[str]] = {}
    resolvers = [StubResolver(authoritative, vp, retries=retries) for vp in vantage_points]
    for name in names:
        key = normalize_name(name)
        bucket = merged.setdefault(key, set())
        for resolver in resolvers:
            for rtype in rtypes:
                answer = resolver.resolve(name, rtype)
                bucket.update(answer.addresses)
    return merged
