"""Provider domain-naming schemes and FQDN construction.

Section 3.2 of the paper observes that IoT backend domains typically follow the
structure ``<subdomain>.<region>.<second-level-domain>``, where the subdomain is
either a per-customer identifier (a hash or tenant name), a service label that may
embed the protocol (``iot-mqtts``, ``iot-as-http``), or absent; the region part is a
city, airport code, or cloud region code; and a few providers (Google) use fixed
FQDNs shared by all customers.

:class:`DomainNamingScheme` captures this structure for one provider.  The world
builder uses it to generate the ground-truth domain names of backend servers, and
the pattern builder (:mod:`repro.core.patterns`) uses the *same* structural
knowledge — as the authors obtained it from documentation — to generate regular
expressions.  This mirrors the paper's setup where the naming scheme is public
while the concrete customer identifiers are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: The subdomain carries a per-customer identifier (hash or tenant name).
SUBDOMAIN_CUSTOMER = "customer"
#: The subdomain is one of a fixed set of service labels (may embed the protocol).
SUBDOMAIN_SERVICE = "service"
#: The provider uses fixed, fully-qualified domain names for all customers.
SUBDOMAIN_FIXED = "fixed"

#: The region label is a cloud-style region code (``eu-central-1``).
REGION_STYLE_CODE = "region-code"
#: The region label is an airport code (``fra``).
REGION_STYLE_AIRPORT = "airport"
#: The region label is a short city or zone name (``eu1``).
REGION_STYLE_ZONE = "zone"
#: No region label appears in the name.
REGION_STYLE_NONE = "none"


@dataclass(frozen=True)
class DomainNamingScheme:
    """The documented domain-name structure of one IoT backend provider.

    Attributes
    ----------
    second_level_domain:
        The registrable suffix under which backend names live
        (e.g. ``amazonaws.com``, ``azure-devices.net``).
    subdomain_kind:
        One of :data:`SUBDOMAIN_CUSTOMER`, :data:`SUBDOMAIN_SERVICE`,
        :data:`SUBDOMAIN_FIXED`.
    service_labels:
        The service labels used when ``subdomain_kind`` involves services, or the
        infix labels inserted between customer id and region (e.g. ``iot``).
    region_style:
        How the region appears in names.
    fixed_fqdns:
        For :data:`SUBDOMAIN_FIXED` schemes, the complete FQDNs.
    zone_labels:
        For :data:`REGION_STYLE_ZONE`, the zone labels used by the provider
        (e.g. ``eu1``, ``na``).
    """

    second_level_domain: str
    subdomain_kind: str = SUBDOMAIN_CUSTOMER
    service_labels: Tuple[str, ...] = ("iot",)
    region_style: str = REGION_STYLE_CODE
    fixed_fqdns: Tuple[str, ...] = ()
    zone_labels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.subdomain_kind not in (SUBDOMAIN_CUSTOMER, SUBDOMAIN_SERVICE, SUBDOMAIN_FIXED):
            raise ValueError(f"unknown subdomain kind {self.subdomain_kind!r}")
        if self.region_style not in (
            REGION_STYLE_CODE,
            REGION_STYLE_AIRPORT,
            REGION_STYLE_ZONE,
            REGION_STYLE_NONE,
        ):
            raise ValueError(f"unknown region style {self.region_style!r}")
        if self.subdomain_kind == SUBDOMAIN_FIXED and not self.fixed_fqdns:
            raise ValueError("fixed naming schemes must list their FQDNs")


def region_label(scheme: DomainNamingScheme, region_code: str, airport_code: str,
                 zone_index: int = 0) -> Optional[str]:
    """Return the label a provider would embed for a given location, or None."""
    if scheme.region_style == REGION_STYLE_CODE:
        return region_code
    if scheme.region_style == REGION_STYLE_AIRPORT:
        return airport_code
    if scheme.region_style == REGION_STYLE_ZONE:
        if not scheme.zone_labels:
            return None
        return scheme.zone_labels[zone_index % len(scheme.zone_labels)]
    return None


def build_fqdn(
    scheme: DomainNamingScheme,
    customer_id: Optional[str] = None,
    service_label: Optional[str] = None,
    region: Optional[str] = None,
) -> str:
    """Construct a fully-qualified backend domain name for a provider.

    The structure follows Section 3.2: ``<subdomain>.<region>.<second-level-domain>``
    where individual parts may be absent depending on the provider's scheme.

    Parameters
    ----------
    scheme:
        The provider's naming scheme.
    customer_id:
        The per-customer identifier (required for customer-style schemes).
    service_label:
        Overrides the service label; defaults to the scheme's first label.
    region:
        The already-formatted region label (see :func:`region_label`), or None.
    """
    if scheme.subdomain_kind == SUBDOMAIN_FIXED:
        return scheme.fixed_fqdns[0]
    label = service_label or (scheme.service_labels[0] if scheme.service_labels else None)
    parts: List[str] = []
    if scheme.subdomain_kind == SUBDOMAIN_CUSTOMER:
        if not customer_id:
            raise ValueError("customer-style naming schemes require a customer id")
        parts.append(customer_id)
        if label:
            parts.append(label)
    elif scheme.subdomain_kind == SUBDOMAIN_SERVICE:
        if label is None:
            raise ValueError("service-style naming schemes require a service label")
        if customer_id:
            parts.append(customer_id)
        parts.append(label)
    if region:
        parts.append(region)
    parts.append(scheme.second_level_domain)
    return ".".join(part.strip(".") for part in parts if part)


def registrable_suffix(fqdn: str, scheme: DomainNamingScheme) -> bool:
    """Return True when the FQDN belongs to the scheme's second-level domain."""
    fqdn = fqdn.rstrip(".").lower()
    suffix = scheme.second_level_domain.rstrip(".").lower()
    return fqdn == suffix or fqdn.endswith("." + suffix)
