"""A DNSDB-like passive DNS database.

Farsight's DNSDB aggregates DNS answers observed by sensors at resolvers around the
globe.  Two query interfaces matter for the paper (Appendix A): *flexible search*
(regular expressions over owner names, with time-range filters) and *basic search*
(left-hand wildcard name patterns).  The database also supports inverse queries
(which names resolve to a given address), which the validation step uses to decide
whether an address hosts non-IoT services (Section 3.4).

Coverage is intentionally partial: the world builder inserts observations only for
a configurable fraction of (name, address) pairs, mirroring DNSDB's incomplete view
of global DNS traffic (a limitation the paper notes in Section 3.6).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dns.zone import RTYPE_A, RTYPE_AAAA, normalize_name


@dataclass(frozen=True)
class PassiveDnsRecord:
    """One aggregated passive DNS observation (an rrset member)."""

    rrname: str
    rrtype: str
    rdata: str
    time_first: date
    time_last: date
    count: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "rrname", normalize_name(self.rrname))
        object.__setattr__(self, "rdata", self.rdata.strip().rstrip("."))
        if self.time_last < self.time_first:
            raise ValueError("time_last must not precede time_first")

    def overlaps(self, since: Optional[date], until: Optional[date]) -> bool:
        """Return True when the observation interval intersects [since, until]."""
        if since is not None and self.time_last < since:
            return False
        if until is not None and self.time_first > until:
            return False
        return True


class PassiveDnsDatabase:
    """An in-memory passive DNS store with DNSDB-style query methods."""

    def __init__(self) -> None:
        self._records: List[PassiveDnsRecord] = []
        self._by_name: Dict[str, List[int]] = {}
        self._by_rdata: Dict[str, List[int]] = {}

    # -- ingestion ------------------------------------------------------------------

    def add(self, record: PassiveDnsRecord) -> None:
        """Add an observation to the database."""
        index = len(self._records)
        self._records.append(record)
        self._by_name.setdefault(record.rrname, []).append(index)
        self._by_rdata.setdefault(record.rdata, []).append(index)

    def add_observation(
        self,
        rrname: str,
        rdata: str,
        first_seen: date,
        last_seen: Optional[date] = None,
        count: int = 1,
        rrtype: Optional[str] = None,
    ) -> PassiveDnsRecord:
        """Convenience helper building the record and inferring the rrtype."""
        if rrtype is None:
            rrtype = RTYPE_AAAA if ":" in rdata else RTYPE_A
        record = PassiveDnsRecord(
            rrname=rrname,
            rrtype=rrtype,
            rdata=rdata,
            time_first=first_seen,
            time_last=last_seen or first_seen,
            count=count,
        )
        self.add(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[PassiveDnsRecord]:
        """Return every stored observation."""
        return list(self._records)

    def iter_names(self) -> Iterable[Tuple[str, List[PassiveDnsRecord]]]:
        """Iterate ``(owner name, observations)`` pairs, one per distinct name.

        This is the bulk-classification entry point: consumers that attribute
        names to providers (the discovery layer) classify each distinct owner
        name exactly once instead of regex-scanning the full record list per
        pattern.  Names are yielded in insertion order of their first record.
        """
        for name, indices in self._by_name.items():
            yield name, [self._records[index] for index in indices]

    # -- DNSDB-style queries ----------------------------------------------------------

    def flex_search(
        self,
        name_regex: str,
        rrtype: Optional[str] = None,
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> List[PassiveDnsRecord]:
        """Flexible search: regex over owner names plus optional filters.

        The regex follows DNSDB conventions where names are matched with a trailing
        dot; this implementation accepts patterns written either way by matching
        against both forms.  The regex is evaluated once per *distinct* owner
        name (names repeat heavily in aggregated passive DNS data); results come
        back in insertion order, as before.
        """
        pattern = re.compile(name_regex)
        matched_indices: List[int] = []
        for name, indices in self._by_name.items():
            if pattern.search(name) or pattern.search(name + "."):
                matched_indices.extend(indices)
        results = []
        for index in sorted(matched_indices):
            record = self._records[index]
            if rrtype is not None and record.rrtype != rrtype:
                continue
            if not record.overlaps(since, until):
                continue
            results.append(record)
        return results

    def basic_search(
        self,
        name_pattern: str,
        rrtype: Optional[str] = None,
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> List[PassiveDnsRecord]:
        """Basic search: exact owner name or a left-hand wildcard (``*.example.com``)."""
        results = []
        if name_pattern.startswith("*."):
            suffix = normalize_name(name_pattern[2:])

            def matcher(name: str) -> bool:
                return name == suffix or name.endswith("." + suffix)

        else:
            exact = normalize_name(name_pattern)

            def matcher(name: str) -> bool:
                return name == exact

        for record in self._records:
            if not matcher(record.rrname):
                continue
            if rrtype is not None and record.rrtype != rrtype:
                continue
            if not record.overlaps(since, until):
                continue
            results.append(record)
        return results

    def inverse_search(
        self,
        rdata: str,
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> List[PassiveDnsRecord]:
        """Inverse query: every observation whose answer is the given address."""
        rdata = rdata.strip().rstrip(".")
        results = []
        for index in self._by_rdata.get(rdata, []):
            record = self._records[index]
            if record.overlaps(since, until):
                results.append(record)
        return results

    def domains_for_ip(
        self,
        address: str,
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> Set[str]:
        """Return the distinct owner names observed resolving to an address."""
        return {record.rrname for record in self.inverse_search(address, since, until)}

    def names(self) -> List[str]:
        """Return every distinct owner name present in the database."""
        return sorted(self._by_name)
