"""DNS zones and resource records.

A deliberately small model covering what the study needs: A, AAAA, CNAME, and PTR
records with fully-qualified owner names.  Zones are containers keyed by
``(owner name, record type)`` and are consumed by the authoritative name server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

RTYPE_A = "A"
RTYPE_AAAA = "AAAA"
RTYPE_CNAME = "CNAME"
RTYPE_PTR = "PTR"

_VALID_RTYPES = (RTYPE_A, RTYPE_AAAA, RTYPE_CNAME, RTYPE_PTR)


def normalize_name(name: str) -> str:
    """Normalise an owner name: lower-case, no trailing dot."""
    return name.strip().rstrip(".").lower()


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: str
    rtype: str
    rdata: str
    ttl: int = 300

    def __post_init__(self) -> None:
        if self.rtype not in _VALID_RTYPES:
            raise ValueError(f"unsupported record type {self.rtype!r}")
        object.__setattr__(self, "name", normalize_name(self.name))
        object.__setattr__(self, "rdata", self.rdata.strip().rstrip("."))

    @property
    def key(self) -> Tuple[str, str]:
        """The (owner name, record type) pair identifying the record set."""
        return (self.name, self.rtype)


class Zone:
    """A DNS zone: a collection of records under a common origin."""

    def __init__(self, origin: str) -> None:
        self.origin = normalize_name(origin)
        self._records: Dict[Tuple[str, str], List[ResourceRecord]] = {}

    def add(self, record: ResourceRecord) -> None:
        """Add a record; the owner name must be at or below the zone origin."""
        if not self.contains_name(record.name):
            raise ValueError(f"{record.name} is not within zone {self.origin}")
        bucket = self._records.setdefault(record.key, [])
        if record not in bucket:
            bucket.append(record)

    def add_address(self, name: str, address: str) -> ResourceRecord:
        """Convenience helper: add an A or AAAA record depending on the address."""
        rtype = RTYPE_AAAA if ":" in address else RTYPE_A
        record = ResourceRecord(name, rtype, address)
        self.add(record)
        return record

    def contains_name(self, name: str) -> bool:
        """Return True when the owner name belongs to this zone."""
        name = normalize_name(name)
        return name == self.origin or name.endswith("." + self.origin)

    def lookup(self, name: str, rtype: str) -> List[ResourceRecord]:
        """Return the record set for (name, rtype); empty when absent."""
        return list(self._records.get((normalize_name(name), rtype), []))

    def names(self) -> List[str]:
        """Return every distinct owner name in the zone, sorted."""
        return sorted({name for name, _ in self._records})

    def records(self) -> List[ResourceRecord]:
        """Return every record in the zone."""
        result: List[ResourceRecord] = []
        for bucket in self._records.values():
            result.extend(bucket)
        return result

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._records.values())


class ZoneSet:
    """A collection of zones with longest-suffix zone selection."""

    def __init__(self, zones: Optional[Iterable[Zone]] = None) -> None:
        self._zones: Dict[str, Zone] = {}
        for zone in zones or ():
            self.add_zone(zone)

    def add_zone(self, zone: Zone) -> None:
        """Register a zone; replaces any existing zone with the same origin."""
        self._zones[zone.origin] = zone

    def zone_for(self, name: str) -> Optional[Zone]:
        """Return the most specific zone containing the owner name, if any."""
        name = normalize_name(name)
        best: Optional[Zone] = None
        for origin, zone in self._zones.items():
            if name == origin or name.endswith("." + origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    def zones(self) -> List[Zone]:
        """Return every registered zone, sorted by origin."""
        return [self._zones[origin] for origin in sorted(self._zones)]

    def lookup(self, name: str, rtype: str) -> List[ResourceRecord]:
        """Look up (name, rtype) in the responsible zone."""
        zone = self.zone_for(name)
        if zone is None:
            return []
        return zone.lookup(name, rtype)

    def all_names(self) -> List[str]:
        """Return every owner name across all zones."""
        names: set[str] = set()
        for zone in self._zones.values():
            names.update(zone.names())
        return sorted(names)
