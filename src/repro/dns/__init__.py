"""DNS substrate: zones and records, provider naming schemes, authoritative
answering with vantage-point-dependent responses, a recursive stub resolver, and a
DNSDB-like passive DNS database."""

from repro.dns.zone import RTYPE_A, RTYPE_AAAA, RTYPE_CNAME, ResourceRecord, Zone
from repro.dns.names import DomainNamingScheme, build_fqdn
from repro.dns.authoritative import AnswerPolicy, AuthoritativeNameServer, AuthoritativeRecord
from repro.dns.resolver import StubResolver, VantagePoint
from repro.dns.passive_db import PassiveDnsDatabase, PassiveDnsRecord

__all__ = [
    "RTYPE_A",
    "RTYPE_AAAA",
    "RTYPE_CNAME",
    "ResourceRecord",
    "Zone",
    "DomainNamingScheme",
    "build_fqdn",
    "AnswerPolicy",
    "AuthoritativeNameServer",
    "AuthoritativeRecord",
    "StubResolver",
    "VantagePoint",
    "PassiveDnsDatabase",
    "PassiveDnsRecord",
]
