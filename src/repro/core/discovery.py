"""Multi-source discovery of IoT backend server IPs (Section 3.3).

Four complementary sources feed the discovery, mirroring Figure 2:

* **TLS certificates** from Internet-wide IPv4 scans (Censys snapshots): every
  certificate whose DNS names match a provider's domain patterns attributes the
  scanned address to that provider.
* **IPv6 scans** (ZGrab2-style probing of IPv6 hitlist addresses) contribute the
  IPv6 equivalent.
* **Passive DNS** (DNSDB flexible search with the same regular expressions and a
  time-range filter) contributes addresses observed in DNS answers.
* **Active DNS** resolution of every domain identified via passive DNS, performed
  from multiple vantage points, contributes addresses the passive view missed.

Each discovered address keeps the set of sources that found it, which feeds the
per-source contribution analysis (Section 3.5 / Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.patterns import PatternSet
from repro.obs import metrics as obs_metrics
from repro.dns.passive_db import PassiveDnsDatabase, PassiveDnsRecord
from repro.dns.resolver import StubResolver, VantagePoint
from repro.dns.zone import RTYPE_A, RTYPE_AAAA
from repro.dns.authoritative import AuthoritativeNameServer
from repro.netmodel.addressing import is_ipv6
from repro.scan.censys import CensysSnapshot
from repro.scan.zgrab import ZGrabResult

#: Source labels (used for Figure 3).
SOURCE_TLS = "tls-certificates"
SOURCE_IPV6_SCAN = "ipv6-scan"
SOURCE_PASSIVE_DNS = "passive-dns"
SOURCE_ACTIVE_DNS = "active-dns"

ALL_SOURCES = (SOURCE_TLS, SOURCE_IPV6_SCAN, SOURCE_PASSIVE_DNS, SOURCE_ACTIVE_DNS)


@dataclass
class DiscoveredIP:
    """One backend address attributed to a provider, with provenance."""

    ip: str
    provider_key: str
    sources: Set[str] = field(default_factory=set)
    domains: Set[str] = field(default_factory=set)

    @property
    def is_ipv6(self) -> bool:
        """True for IPv6 addresses."""
        return is_ipv6(self.ip)

    def merge(self, other: "DiscoveredIP") -> None:
        """Fold another observation of the same (ip, provider) into this one."""
        if other.ip != self.ip or other.provider_key != self.provider_key:
            raise ValueError("can only merge observations of the same ip and provider")
        self.sources.update(other.sources)
        self.domains.update(other.domains)


@dataclass
class DiscoveryResult:
    """The set of discovered backend addresses, per provider."""

    per_provider: Dict[str, Dict[str, DiscoveredIP]] = field(default_factory=dict)
    day: Optional[date] = None

    def add(self, record: DiscoveredIP) -> DiscoveredIP:
        """Add (or merge) one discovered address."""
        bucket = self.per_provider.setdefault(record.provider_key, {})
        existing = bucket.get(record.ip)
        if existing is None:
            bucket[record.ip] = record
            return record
        existing.merge(record)
        return existing

    def providers(self) -> List[str]:
        """Provider keys with at least one discovered address."""
        return sorted(self.per_provider)

    def records(self, provider_key: Optional[str] = None) -> List[DiscoveredIP]:
        """Return discovered records for one provider (or all providers)."""
        if provider_key is not None:
            return list(self.per_provider.get(provider_key, {}).values())
        result: List[DiscoveredIP] = []
        for key in self.providers():
            result.extend(self.per_provider[key].values())
        return result

    def ips(self, provider_key: Optional[str] = None) -> Set[str]:
        """Return the discovered addresses of one provider (or all)."""
        return {record.ip for record in self.records(provider_key)}

    def ipv4_ips(self, provider_key: Optional[str] = None) -> Set[str]:
        """IPv4 subset of :meth:`ips`."""
        return {r.ip for r in self.records(provider_key) if not r.is_ipv6}

    def ipv6_ips(self, provider_key: Optional[str] = None) -> Set[str]:
        """IPv6 subset of :meth:`ips`."""
        return {r.ip for r in self.records(provider_key) if r.is_ipv6}

    def domains(self, provider_key: Optional[str] = None) -> Set[str]:
        """Return every domain name associated with discovered addresses."""
        names: Set[str] = set()
        for record in self.records(provider_key):
            names.update(record.domains)
        return names

    def provider_of(self, ip: str) -> Optional[str]:
        """Return the provider an address was attributed to, if any."""
        for provider_key, bucket in self.per_provider.items():
            if ip in bucket:
                return provider_key
        return None

    def merge(self, other: "DiscoveryResult") -> "DiscoveryResult":
        """Merge another result into this one (in place); returns self."""
        for record in other.records():
            self.add(
                DiscoveredIP(
                    ip=record.ip,
                    provider_key=record.provider_key,
                    sources=set(record.sources),
                    domains=set(record.domains),
                )
            )
        return self

    def copy(self) -> "DiscoveryResult":
        """Return a deep-enough copy of the result."""
        clone = DiscoveryResult(day=self.day)
        clone.merge(self)
        return clone

    def restrict_to(self, ips: Iterable[str]) -> "DiscoveryResult":
        """Return a new result containing only the given addresses."""
        allowed = set(ips)
        filtered = DiscoveryResult(day=self.day)
        for record in self.records():
            if record.ip in allowed:
                filtered.add(
                    DiscoveredIP(record.ip, record.provider_key, set(record.sources), set(record.domains))
                )
        return filtered

    def total_count(self) -> int:
        """Total number of discovered (provider, ip) attributions."""
        return sum(len(bucket) for bucket in self.per_provider.values())


class HostClassificationCache:
    """Per-host certificate-classification memo shared across daily snapshots.

    Daily Censys snapshots overlap heavily — most hosts present the same
    certificates on day N+1 as on day N — so re-classifying every certificate
    name every day is wasted work.  The cache keys each host observation on
    ``(ip, certificate identity)`` (see
    :meth:`repro.scan.censys.CensysHostRecord.certificate_identity`) and stores
    the *verdicts* of the classification: the ``(provider_key, domain)`` pairs
    the host contributes to a discovery result.  A host whose certificates
    changed gets a new key and is re-classified; everything else replays its
    verdicts with one dictionary probe.

    The cache is guarded by the **identity of the compiled pattern engine**: a
    verdict is only valid for the exact
    :class:`~repro.core.matcher.CompiledPatternSet` that produced it.
    :meth:`PatternSet.engine` rebuilds the engine whenever the pattern
    collection changes, so a changed pattern set yields a new engine object and
    :meth:`validate` drops every memoized verdict.
    """

    def __init__(self) -> None:
        # Keyed by address; the value pairs the certificate identity (the
        # host's certificate tuple) the verdicts were computed under with the
        # verdicts themselves, grouped per provider —
        # ((provider_key, (domain, ...)), ...) — so replay materializes one
        # record per (host, provider) without merge churn.  Keeping one slot
        # per address (rather than per (ip, identity) pair) means a rotated
        # certificate simply overwrites the stale entry.
        self.by_ip: Dict[
            str, Tuple[Tuple, Tuple[Tuple[str, Tuple[str, ...]], ...]]
        ] = {}
        self._engine_token: Optional[object] = None
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.by_ip)

    def validate(self, engine: object) -> None:
        """Drop all verdicts unless they were produced by this exact engine."""
        if engine is not self._engine_token:
            self.by_ip.clear()
            self._engine_token = engine

    def get(
        self, key: Tuple[str, Tuple]
    ) -> Optional[Tuple[Tuple[str, Tuple[str, ...]], ...]]:
        """The memoized verdicts of one host observation, or None.

        ``key`` is ``(ip, certificate identity)``; an entry recorded under a
        different identity (the host rotated its certificate) is a miss.
        """
        ip, identity = key
        cached = self.by_ip.get(ip)
        if cached is not None and cached[0] == identity:
            self.hits += 1
            return cached[1]
        self.misses += 1
        return None

    def put(
        self,
        key: Tuple[str, Tuple],
        verdicts: Tuple[Tuple[str, Tuple[str, ...]], ...],
    ) -> None:
        """Memoize the verdicts of one host observation."""
        ip, identity = key
        self.by_ip[ip] = (identity, verdicts)

    def clear(self) -> None:
        """Drop every verdict (the engine token survives)."""
        self.by_ip.clear()


def _match_certificate_name(pattern_set, name: str) -> Optional[str]:
    """Match a certificate DNS name (possibly a wildcard) against the pattern set.

    Accepts a :class:`PatternSet` or its compiled engine (anything with ``match``).
    """
    candidate = name.lower().rstrip(".")
    if candidate.startswith("*."):
        candidate = "wildcard." + candidate[2:]
    return pattern_set.match(candidate)


class BackendDiscovery:
    """Implements the four discovery sources against the measurement services.

    All name classification goes through the pattern set's suffix-indexed
    compiled engine (:meth:`PatternSet.engine`), and every source iterates
    *distinct* names (certificate-name index, passive-DNS owner-name index)
    so each name is classified exactly once per snapshot/database.

    Censys discovery is additionally **incremental across days**: the instance
    owns a :class:`HostClassificationCache`, so consecutive snapshots only
    re-classify hosts whose certificate material changed.  The cached path
    yields a result identical to the uncached one — it replays the exact
    ``(provider, domain)`` verdicts the classification produced.
    """

    def __init__(self, pattern_set: Optional[PatternSet] = None) -> None:
        self.pattern_set = pattern_set or PatternSet.for_providers()
        self.host_cache = HostClassificationCache()

    # -- TLS certificates (Censys, IPv4) ---------------------------------------------

    def discover_from_censys(
        self, snapshot: CensysSnapshot, use_cache: bool = True
    ) -> DiscoveryResult:
        """Attribute scanned IPv4 hosts to providers via their certificates.

        With ``use_cache`` (the default) each host observation is keyed on
        ``(ip, certificate identity)`` in :attr:`host_cache`; overlapping daily
        snapshots then replay prior-day verdicts instead of re-classifying.
        ``use_cache=False`` runs the stateless name-index path (one
        classification per distinct certificate name in the snapshot) — both
        paths produce the same result.
        """
        result = DiscoveryResult(day=snapshot.snapshot_date)
        engine = self.pattern_set.engine()
        if use_cache:
            cache = self.host_cache
            cache.validate(engine)
            per_provider = result.per_provider
            lookup = cache.by_ip
            make_record = DiscoveredIP
            hits = misses = 0
            # Snapshot records are keyed by address, so each host appears once
            # per day; replaying grouped verdicts therefore builds each
            # (provider, ip) record in a single step instead of add+merge
            # per certificate name.  The hit path inlines
            # HostClassificationCache.get (one dict probe plus a
            # certificate-tuple compare, which short-circuits on object
            # identity for unchanged certificates) to stay call-free per host
            # — keep it in sync with that method.
            for ip, record in snapshot.records.items():
                identity = record.certificates
                cached = lookup.get(ip)
                if cached is not None and cached[0] == identity:
                    hits += 1
                    verdicts = cached[1]
                else:
                    misses += 1
                    grouped: Dict[str, List[str]] = {}
                    for name in record.certificate_names():
                        provider_key = _match_certificate_name(engine, name)
                        if provider_key is not None:
                            grouped.setdefault(provider_key, []).append(
                                name.lower().rstrip(".")
                            )
                    verdicts = tuple(
                        (provider_key, tuple(domains))
                        for provider_key, domains in grouped.items()
                    )
                    cache.put((ip, identity), verdicts)
                for provider_key, domains in verdicts:
                    bucket = per_provider.setdefault(provider_key, {})
                    existing = bucket.get(ip)
                    if existing is None:
                        bucket[ip] = make_record(
                            ip, provider_key, {SOURCE_TLS}, set(domains)
                        )
                    else:
                        existing.sources.add(SOURCE_TLS)
                        existing.domains.update(domains)
            cache.hits += hits
            cache.misses += misses
            obs_metrics.inc("discovery.verdict_cache.hits", float(hits))
            obs_metrics.inc("discovery.verdict_cache.misses", float(misses))
            return result
        for name, ips in snapshot.certificate_name_index().items():
            provider_key = _match_certificate_name(engine, name)
            if provider_key is None:
                continue
            domain = name.lower().rstrip(".")
            for ip in ips:
                result.add(
                    DiscoveredIP(
                        ip=ip,
                        provider_key=provider_key,
                        sources={SOURCE_TLS},
                        domains={domain},
                    )
                )
        return result

    # -- IPv6 application-layer scans --------------------------------------------------

    def discover_from_ipv6_scan(self, scan_results: Sequence[ZGrabResult]) -> DiscoveryResult:
        """Attribute IPv6 hitlist hosts to providers via scan certificates."""
        result = DiscoveryResult()
        engine = self.pattern_set.engine()
        for scan in scan_results:
            if scan.certificate is None:
                continue
            for name in scan.certificate.all_dns_names():
                provider_key = _match_certificate_name(engine, name)
                if provider_key is None:
                    continue
                result.add(
                    DiscoveredIP(
                        ip=scan.ip,
                        provider_key=provider_key,
                        sources={SOURCE_IPV6_SCAN},
                        domains={name.lower().rstrip(".")},
                    )
                )
        return result

    # -- passive DNS --------------------------------------------------------------------

    def passive_dns_observations(
        self,
        database: PassiveDnsDatabase,
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> List[Tuple[str, PassiveDnsRecord]]:
        """Provider-attributed passive-DNS observations for a time window.

        Each distinct owner name in the database is classified once against the
        compiled pattern engine; every observation of a matching name that
        overlaps the window yields one ``(provider_key, record)`` pair (one per
        matching provider, mirroring the legacy per-provider flex searches).
        The pairs can be re-filtered to any sub-window with
        :meth:`result_from_passive_observations` without re-matching names --
        the daily pipeline slices the period-wide result this way.
        """
        engine = self.pattern_set.engine()
        observations: List[Tuple[str, PassiveDnsRecord]] = []
        for name, records in database.iter_names():
            providers = engine.match_all(name)
            if not providers:
                continue
            for record in records:
                if not record.overlaps(since, until):
                    continue
                for provider_key in providers:
                    observations.append((provider_key, record))
        return observations

    def result_from_passive_observations(
        self,
        observations: Iterable[Tuple[str, PassiveDnsRecord]],
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> DiscoveryResult:
        """Build a discovery result from attributed observations, optionally sliced."""
        result = DiscoveryResult()
        for provider_key, record in observations:
            if not record.overlaps(since, until):
                continue
            result.add(
                DiscoveredIP(
                    ip=record.rdata,
                    provider_key=provider_key,
                    sources={SOURCE_PASSIVE_DNS},
                    domains={record.rrname},
                )
            )
        return result

    def discover_from_passive_dns(
        self,
        database: PassiveDnsDatabase,
        since: Optional[date] = None,
        until: Optional[date] = None,
    ) -> DiscoveryResult:
        """Attribute addresses observed in passive DNS to providers."""
        return self.result_from_passive_observations(
            self.passive_dns_observations(database, since=since, until=until)
        )

    # -- active DNS ---------------------------------------------------------------------

    def discover_from_active_dns(
        self,
        authoritative: AuthoritativeNameServer,
        vantage_points: Sequence[VantagePoint],
        domains: Iterable[str],
        retries: int = 2,
    ) -> DiscoveryResult:
        """Resolve the given domains from every vantage point and attribute answers."""
        result = DiscoveryResult()
        engine = self.pattern_set.engine()
        resolvers = [StubResolver(authoritative, vp, retries=retries) for vp in vantage_points]
        for domain in sorted(set(domains)):
            provider_key = engine.match(domain)
            if provider_key is None:
                continue
            for resolver in resolvers:
                for rtype in (RTYPE_A, RTYPE_AAAA):
                    answer = resolver.resolve(domain, rtype)
                    for address in answer.addresses:
                        result.add(
                            DiscoveredIP(
                                ip=address,
                                provider_key=provider_key,
                                sources={SOURCE_ACTIVE_DNS},
                                domains={domain},
                            )
                        )
        return result

    # -- combined ------------------------------------------------------------------------

    def combine(self, results: Iterable[DiscoveryResult], day: Optional[date] = None) -> DiscoveryResult:
        """Union several per-source results into one."""
        combined = DiscoveryResult(day=day)
        for result in results:
            combined.merge(result)
        return combined
