"""End-to-end orchestration of the discovery methodology (Figure 2).

The pipeline runs, for every day of the study period:

1. pattern generation from the provider catalog (documentation),
2. certificate-based discovery on the day's Censys snapshot (IPv4),
3. application-layer IPv6 scans over the hitlist,
4. passive DNS discovery restricted to the day,
5. active DNS resolution (from all vantage points) of every domain identified via
   passive DNS during the period,

then combines the daily results, validates the combined set (shared vs. dedicated
addresses, ground-truth ranges), and characterizes every provider's footprint.

Daily certificate discovery is **incremental**: the pipeline's
:class:`~repro.core.discovery.BackendDiscovery` keeps a
:class:`~repro.core.discovery.HostClassificationCache`, so day N+1 only
re-classifies Censys hosts whose certificate material changed since day N
(daily snapshots overlap heavily).  The finished
:class:`PipelineResult` can additionally be persisted in an
:class:`~repro.store.artifacts.ArtifactStore` (see
``repro.store.codec.dump_pipeline_result``), which makes warm starts of
``discovery``/``table1`` skip classification entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.discovery import BackendDiscovery, DiscoveryResult
from repro.core.footprint import FootprintReport, characterize_all
from repro.core.patterns import PatternSet
from repro.core.providers import PROVIDERS, ProviderSpec, get_provider
from repro.core.validation import (
    GroundTruthReport,
    SharedIpClassification,
    classify_shared_ips,
    validate_against_ground_truth,
)
from repro.obs.trace import span
from repro.scan.zgrab import ZGrabScanner
from repro.simulation.clock import StudyPeriod

if TYPE_CHECKING:  # pragma: no cover - only needed by type checkers
    from repro.simulation.world import World


@dataclass
class PipelineResult:
    """Everything the discovery pipeline produced for one study period."""

    period: StudyPeriod
    pattern_set: PatternSet
    daily_results: Dict[date, DiscoveryResult]
    combined: DiscoveryResult
    validation: SharedIpClassification
    footprints: Dict[str, FootprintReport]
    ground_truth: Dict[str, GroundTruthReport]

    @property
    def dedicated(self) -> DiscoveryResult:
        """The validated, dedicated-IoT discovery result (input to traffic analyses)."""
        return self.validation.dedicated

    def table1_rows(self, providers: Sequence[ProviderSpec] = PROVIDERS) -> List[Dict[str, object]]:
        """Return Table-1 style rows (one per provider, alphabetical)."""
        rows: List[Dict[str, object]] = []
        for spec in sorted(providers, key=lambda s: s.name):
            report = self.footprints.get(spec.key)
            if report is None:
                continue
            rows.append(
                {
                    "provider": spec.name,
                    "as_count": report.as_count,
                    "ipv4_slash24": report.slash24_count,
                    "ipv6_slash56": report.slash56_count,
                    "locations": report.location_count,
                    "countries": report.country_count,
                    "protocols": ", ".join(report.documented_protocols),
                    "strategy": report.strategy,
                    "anycast": report.uses_anycast,
                }
            )
        return rows


class DiscoveryPipeline:
    """Runs the full methodology against a synthetic world."""

    def __init__(self, world: "World", pattern_set: Optional[PatternSet] = None) -> None:
        self.world = world
        self.pattern_set = pattern_set or PatternSet.for_providers()
        self.discovery = BackendDiscovery(self.pattern_set)

    @property
    def host_cache(self):
        """The per-host classification cache shared by all daily TLS runs."""
        return self.discovery.host_cache

    # -- per-source steps -----------------------------------------------------------

    def discover_tls(self, day: date) -> DiscoveryResult:
        """Certificate-based discovery on the day's IPv4 scan snapshot.

        Consecutive days share the pipeline's host-classification cache: only
        hosts whose certificates changed since the previous call are
        re-classified.
        """
        snapshot = self.world.censys.snapshot(day)
        return self.discovery.discover_from_censys(snapshot)

    def discover_ipv6(self, day: date) -> DiscoveryResult:
        """Application-layer IPv6 scans over the hitlist."""
        scanner = ZGrabScanner()
        servers_by_ip = {s.ip: s for s in self.world.active_servers(day)}
        results = scanner.scan(day, self.world.hitlist, servers_by_ip)
        return self.discovery.discover_from_ipv6_scan(results)

    def discover_passive_dns(self, since: date, until: date) -> DiscoveryResult:
        """Passive DNS discovery for a time window."""
        return self.discovery.discover_from_passive_dns(
            self.world.passive_dns, since=since, until=until
        )

    def discover_active_dns(self, domains: Sequence[str]) -> DiscoveryResult:
        """Active resolution of the given domains from every vantage point."""
        return self.discovery.discover_from_active_dns(
            self.world.authoritative, self.world.vantage_points, domains
        )

    # -- daily and period runs --------------------------------------------------------

    def discover_day(
        self,
        day: date,
        active_dns_domains: Optional[Sequence[str]] = None,
        passive_observations: Optional[Sequence] = None,
    ) -> DiscoveryResult:
        """Run all four sources for one day and combine them.

        When the caller has already classified the period's passive-DNS
        observations (see :meth:`BackendDiscovery.passive_dns_observations`),
        pass them via ``passive_observations``: the day's passive result is then
        a cheap time-slice of the period result instead of a full re-query.
        """
        day_attr = day.isoformat()
        with span("discovery.passive_dns", day=day_attr):
            if passive_observations is None:
                passive = self.discover_passive_dns(day, day)
            else:
                passive = self.discovery.result_from_passive_observations(
                    passive_observations, since=day, until=day
                )
        if active_dns_domains is None:
            active_dns_domains = sorted(passive.domains())
        with span("discovery.tls", day=day_attr):
            tls = self.discover_tls(day)
        with span("discovery.ipv6", day=day_attr):
            ipv6 = self.discover_ipv6(day)
        with span("discovery.active_dns", day=day_attr):
            active = self.discover_active_dns(active_dns_domains)
        return self.discovery.combine([tls, ipv6, passive, active], day=day)

    def run(self, period: Optional[StudyPeriod] = None) -> PipelineResult:
        """Run the methodology for a whole study period.

        Passive DNS is queried (and every owner name classified) once for the
        whole period; the per-day passive results are overlap-filtered slices of
        those period observations.
        """
        period = period or self.world.config.study_period
        with span("discovery.run", start=period.start.isoformat(), end=period.end.isoformat()):
            with span("discovery.passive_dns", day="period"):
                period_observations = self.discovery.passive_dns_observations(
                    self.world.passive_dns, since=period.start, until=period.end
                )
                period_passive = self.discovery.result_from_passive_observations(
                    period_observations
                )
            active_domains = sorted(period_passive.domains())
            daily_results: Dict[date, DiscoveryResult] = {}
            for day in period.days():
                daily_results[day] = self.discover_day(
                    day,
                    active_dns_domains=active_domains,
                    passive_observations=period_observations,
                )
            combined = DiscoveryResult()
            for day in sorted(daily_results):
                combined.merge(daily_results[day])
            combined.merge(period_passive)
            with span("discovery.validate"):
                validation = classify_shared_ips(
                    combined,
                    self.world.passive_dns,
                    self.pattern_set,
                    threshold=self.world.config.shared_ip_domain_threshold,
                    since=period.start,
                    until=period.end,
                )
            with span("discovery.characterize"):
                reference_snapshot = self.world.censys.snapshot(period.start)
                footprints = characterize_all(
                    validation.dedicated,
                    self.world.routing_table,
                    self.world.as_registry,
                    self.world.geo_database,
                    censys_snapshot=reference_snapshot,
                )
            ground_truth: Dict[str, GroundTruthReport] = {}
            for provider_key, prefixes in self.world.published_ranges.items():
                ground_truth[provider_key] = validate_against_ground_truth(
                    combined, provider_key, prefixes
                )
        return PipelineResult(
            period=period,
            pattern_set=self.pattern_set,
            daily_results=daily_results,
            combined=combined,
            validation=validation,
            footprints=footprints,
            ground_truth=ground_truth,
        )
