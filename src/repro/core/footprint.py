"""Footprint characterization of IoT backend deployments (Sections 4.2--4.4, Table 1).

For every provider, the discovered addresses are

* **geolocated** by combining location hints embedded in the domain names (cloud
  region codes, airport codes), geolocation metadata from the scan snapshots, and
  the location of the prefix announcement, resolved by majority vote when sources
  disagree;
* mapped to **prefixes and origin ASes** via the routing table to quantify network
  diversity and to infer the **deployment strategy**: dedicated infrastructure (DI)
  when all addresses are announced by ASes of the provider itself, public cloud /
  CDN resources (PR) when they are announced by cloud or CDN organisations, and
  DI+PR for mixtures;
* summarised into the Table-1 style row: number of ASes, /24 (IPv4) and /56 (IPv6)
  blocks, locations, countries, protocols, and strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.discovery import DiscoveryResult
from repro.core.providers import (
    PROVIDERS,
    STRATEGY_DI,
    STRATEGY_DI_PR,
    STRATEGY_PR,
    ProviderSpec,
    get_provider,
)
from repro.netmodel.addressing import count_slash24, count_slash56
from repro.netmodel.asn import AsKind, AsRegistry
from repro.netmodel.geo import GeoDatabase, Location, LocationVote, majority_vote
from repro.routing.bgp import RoutingTable
from repro.scan.censys import CensysSnapshot


@dataclass(frozen=True)
class GeolocatedIP:
    """One discovered address with its resolved location and provenance of votes."""

    ip: str
    location: Optional[Location]
    votes: Tuple[LocationVote, ...]
    disagreement: bool


def location_hint_from_domain(domain: str, geo_database: GeoDatabase) -> Optional[Location]:
    """Extract a location hint embedded in a backend domain name.

    Providers embed cloud region codes (``eu-central-1``), airport codes, or zone
    labels in their names; any label that resolves in the geolocation database is
    accepted.
    """
    for label in domain.lower().rstrip(".").split("."):
        by_region = geo_database.lookup_region_code(label)
        if by_region is not None:
            return by_region
        if len(label) == 3:
            by_airport = geo_database.lookup_airport_code(label)
            if by_airport is not None:
                return by_airport
    return None


def geolocate_ip(
    ip: str,
    domains: Iterable[str],
    geo_database: GeoDatabase,
    censys_snapshot: Optional[CensysSnapshot] = None,
) -> GeolocatedIP:
    """Geolocate one address by majority vote over all available hints."""
    votes: List[LocationVote] = []
    for domain in sorted(set(domains)):
        hint = location_hint_from_domain(domain, geo_database)
        if hint is not None:
            votes.append(LocationVote(source=f"domain:{domain}", location=hint))
            break  # One domain hint is enough; further domains repeat the same region.
    if censys_snapshot is not None:
        record = censys_snapshot.get(ip)
        if record is not None and record.location is not None:
            votes.append(LocationVote(source="censys", location=record.location))
    announced = geo_database.lookup_ip(ip)
    if announced is not None:
        votes.append(LocationVote(source="prefix-announcement", location=announced))
    resolved = majority_vote(votes)
    regions = {vote.location.region_code for vote in votes}
    return GeolocatedIP(ip=ip, location=resolved, votes=tuple(votes), disagreement=len(regions) > 1)


@dataclass
class FootprintReport:
    """The Table-1 style characterization of one provider's backend."""

    provider_key: str
    provider_name: str
    as_count: int
    prefix_count: int
    ipv4_count: int
    ipv6_count: int
    slash24_count: int
    slash56_count: int
    location_count: int
    country_count: int
    continents: Tuple[str, ...]
    countries: Tuple[str, ...]
    strategy: str
    documented_protocols: Tuple[str, ...]
    uses_anycast: bool
    locations_by_ip: Dict[str, Optional[Location]] = field(default_factory=dict)
    geolocation_disagreements: int = 0

    @property
    def multi_country(self) -> bool:
        """True when the footprint spans more than one country."""
        return self.country_count > 1

    def servers_per_continent(self) -> Dict[str, int]:
        """Count geolocated addresses per continent."""
        counts: Dict[str, int] = {}
        for location in self.locations_by_ip.values():
            if location is None:
                continue
            counts[location.continent] = counts.get(location.continent, 0) + 1
        return counts


def infer_strategy(
    origin_organizations: Mapping[str, Set[str]],
    provider_organization: str,
    as_registry: AsRegistry,
    asns: Iterable[int],
) -> str:
    """Infer DI / PR / DI+PR from the organisations announcing the discovered space."""
    own = False
    foreign = False
    for asn in asns:
        autonomous_system = as_registry.get(asn)
        if autonomous_system is None:
            continue
        if autonomous_system.organization == provider_organization:
            own = True
        elif autonomous_system.is_cloud_or_cdn():
            foreign = True
        else:
            foreign = True
    if own and foreign:
        return STRATEGY_DI_PR
    if foreign and not own:
        return STRATEGY_PR
    return STRATEGY_DI


def characterize_provider(
    provider_key: str,
    result: DiscoveryResult,
    routing_table: RoutingTable,
    as_registry: AsRegistry,
    geo_database: GeoDatabase,
    censys_snapshot: Optional[CensysSnapshot] = None,
) -> FootprintReport:
    """Produce the footprint report of one provider from its discovered addresses."""
    spec = get_provider(provider_key)
    records = result.records(provider_key)
    ipv4 = [r for r in records if not r.is_ipv6]
    ipv6 = [r for r in records if r.is_ipv6]
    asns: Set[int] = set()
    prefixes: Set[str] = set()
    for record in records:
        announcement = routing_table.lookup(record.ip)
        if announcement is not None:
            asns.add(announcement.origin_asn)
            prefixes.add(announcement.prefix)
    locations_by_ip: Dict[str, Optional[Location]] = {}
    disagreements = 0
    for record in records:
        geolocated = geolocate_ip(record.ip, record.domains, geo_database, censys_snapshot)
        locations_by_ip[record.ip] = geolocated.location
        if geolocated.disagreement:
            disagreements += 1
    located = [loc for loc in locations_by_ip.values() if loc is not None]
    strategy = infer_strategy({}, spec.organization, as_registry, asns)
    return FootprintReport(
        provider_key=provider_key,
        provider_name=spec.name,
        as_count=len(asns),
        prefix_count=len(prefixes),
        ipv4_count=len(ipv4),
        ipv6_count=len(ipv6),
        slash24_count=count_slash24(r.ip for r in ipv4),
        slash56_count=count_slash56(r.ip for r in ipv6),
        location_count=len({loc.region_code for loc in located}),
        country_count=len({loc.country for loc in located}),
        continents=tuple(sorted({loc.continent for loc in located})),
        countries=tuple(sorted({loc.country for loc in located})),
        strategy=strategy,
        documented_protocols=tuple(
            offering.label for offering in spec.protocols
        ),
        uses_anycast=spec.uses_anycast,
        locations_by_ip=locations_by_ip,
        geolocation_disagreements=disagreements,
    )


def characterize_all(
    result: DiscoveryResult,
    routing_table: RoutingTable,
    as_registry: AsRegistry,
    geo_database: GeoDatabase,
    censys_snapshot: Optional[CensysSnapshot] = None,
    providers: Sequence[ProviderSpec] = PROVIDERS,
) -> Dict[str, FootprintReport]:
    """Produce footprint reports for every provider with discovered addresses."""
    reports: Dict[str, FootprintReport] = {}
    for spec in providers:
        if spec.key not in result.providers():
            continue
        reports[spec.key] = characterize_provider(
            spec.key, result, routing_table, as_registry, geo_database, censys_snapshot
        )
    return reports


def continent_distribution(reports: Mapping[str, FootprintReport]) -> Dict[str, float]:
    """Fraction of all geolocated backend servers per continent (Figure 13, right side)."""
    counts: Dict[str, int] = {}
    for report in reports.values():
        for continent, count in report.servers_per_continent().items():
            counts[continent] = counts.get(continent, 0) + count
    total = sum(counts.values())
    if total == 0:
        return {}
    return {continent: counts[continent] / total for continent in sorted(counts)}
