"""Catalog of the IoT backend providers studied by the paper (Table 1).

Each :class:`ProviderSpec` collects two kinds of information:

* **Documented characteristics** the paper's methodology extracts from public
  documentation: the domain naming scheme, supported protocols and ports, the
  deployment strategy, whether the provider publishes its IP ranges, SNI and
  client-certificate requirements.  The pattern builder and the discovery pipeline
  consume only this part.

* **Scenario parameters** used by the world builder to instantiate a synthetic
  deployment whose *shape* matches the paper's findings (relative IP counts per
  Figure 3, location/country spread per Table 1, discoverability per data source,
  traffic behaviour per Section 5).  The discovery pipeline never reads these
  directly; they only shape the ground truth it is measured against.

The absolute IP counts are those reported in Figure 3 of the paper; the world
builder scales them down with ``ScenarioConfig.scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.names import (
    REGION_STYLE_AIRPORT,
    REGION_STYLE_CODE,
    REGION_STYLE_NONE,
    REGION_STYLE_ZONE,
    SUBDOMAIN_CUSTOMER,
    SUBDOMAIN_FIXED,
    SUBDOMAIN_SERVICE,
    DomainNamingScheme,
)

#: Deployment strategies (Table 1): Dedicated Infrastructure, Public cloud Resources.
STRATEGY_DI = "DI"
STRATEGY_PR = "PR"
STRATEGY_DI_PR = "DI+PR"

#: Anonymization groups used for the ISP traffic analyses (Section 5).
GROUP_TOP4 = "top4"
GROUP_CLOUD = "cloud"
GROUP_OTHER = "other"


@dataclass(frozen=True)
class ProtocolOffering:
    """One documented (protocol, transport, port) offering of a provider."""

    protocol: str
    transport: str
    port: int

    @property
    def label(self) -> str:
        """Short human-readable label, e.g. ``MQTT(8883)``."""
        return f"{self.protocol}({self.port})"


@dataclass(frozen=True)
class TrafficProfile:
    """Traffic behaviour of the devices using a provider, as seen from the ISP.

    Attributes
    ----------
    application:
        Name of the diurnal-activity profile (see :mod:`repro.flows.devices`).
    subscriber_share:
        Fraction of the ISP's IoT-hosting subscriber lines with at least one device
        of this provider.
    mean_daily_down_kb / mean_daily_up_kb:
        Mean daily traffic per active device, in kilobytes (the paper reports <10 MB
        per day for >99% of lines).
    eu_share:
        Fraction of a device's flows served from the provider's European servers
        (when the provider has any); the rest goes to the nearest other continent.
    """

    application: str
    subscriber_share: float
    mean_daily_down_kb: float
    mean_daily_up_kb: float
    eu_share: float = 0.75


@dataclass(frozen=True)
class ProviderSpec:
    """One IoT backend provider of the study."""

    # Identity
    name: str
    key: str
    organization: str
    revenue_rank: int

    # Documented characteristics (inputs to the methodology)
    naming: DomainNamingScheme
    protocols: Tuple[ProtocolOffering, ...]
    strategy: str
    cloud_hosts: Tuple[str, ...] = ()
    publishes_ip_ranges: bool = False
    uses_sni: bool = False
    client_cert_ports: Tuple[int, ...] = ()
    uses_anycast: bool = False
    ipv6_supported: bool = True

    # Scenario parameters (ground-truth shape; hidden from the methodology)
    base_ipv4_servers: int = 50
    base_ipv6_servers: int = 0
    n_ases: int = 1
    n_locations: int = 2
    n_countries: int = 1
    restrict_continents: Tuple[str, ...] = ()
    restrict_countries: Tuple[str, ...] = ()
    censys_visibility: float = 1.0
    passive_dns_coverage: float = 0.6
    stale_dns_fraction: float = 0.10
    active_dns_extra: float = 0.15
    shared_web_fraction: float = 0.0
    ipv6_hitlist_coverage: float = 0.7
    churn_rate: float = 0.0
    traffic: TrafficProfile = TrafficProfile("constant_telemetry", 0.05, 2000, 1500)
    is_top4: bool = False

    def __post_init__(self) -> None:
        if self.strategy not in (STRATEGY_DI, STRATEGY_PR, STRATEGY_DI_PR):
            raise ValueError(f"unknown strategy {self.strategy!r} for {self.name}")
        if self.strategy in (STRATEGY_PR, STRATEGY_DI_PR) and not self.cloud_hosts:
            raise ValueError(f"{self.name}: PR strategies must name their cloud hosts")

    @property
    def group(self) -> str:
        """Anonymization group: top-4 / public-cloud dependent / other."""
        if self.is_top4:
            return GROUP_TOP4
        if self.strategy == STRATEGY_PR:
            return GROUP_CLOUD
        return GROUP_OTHER

    def documented_ports(self) -> List[Tuple[str, int]]:
        """Return the documented (transport, port) pairs."""
        return sorted({(p.transport, p.port) for p in self.protocols})

    def documented_protocol_names(self) -> List[str]:
        """Return the distinct protocol names offered."""
        return sorted({p.protocol for p in self.protocols})


def _mqtt(port: int) -> ProtocolOffering:
    return ProtocolOffering("MQTT" if port in (1883, 1884) else "MQTTS", "tcp", port)


def _https(port: int = 443) -> ProtocolOffering:
    return ProtocolOffering("HTTPS", "tcp", port)


def _http(port: int = 80) -> ProtocolOffering:
    return ProtocolOffering("HTTP", "tcp", port)


def _coap(port: int) -> ProtocolOffering:
    return ProtocolOffering("CoAPS" if port in (5684, 5686) else "CoAP", "udp", port)


def _amqps(port: int = 5671) -> ProtocolOffering:
    return ProtocolOffering("AMQPS", "tcp", port)


#: Cloud hosting organisations referenced by the deployments.
CLOUD_AWS = "Amazon Web Services"
CLOUD_AZURE = "Microsoft Azure"
CLOUD_ALIBABA = "Alibaba Cloud"
CDN_AKAMAI = "Akamai"

#: All public-cloud organisations (announce prefixes from cloud ASes).
CLOUD_ORGS = (CLOUD_AWS, CLOUD_AZURE, CLOUD_ALIBABA)
#: CDN organisations (announce prefixes from CDN ASes).
CLOUD_AKAMAI_ORGS = (CDN_AKAMAI,)


PROVIDERS: Tuple[ProviderSpec, ...] = (
    ProviderSpec(
        name="Alibaba IoT",
        key="alibaba",
        organization="Alibaba",
        revenue_rank=4,
        naming=DomainNamingScheme(
            second_level_domain="aliyuncs.com",
            subdomain_kind=SUBDOMAIN_SERVICE,
            service_labels=("iot-as-mqtt", "iot-as-http", "iot-amqp", "iot-coap"),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(1883), _https(443), _coap(5682)),
        strategy=STRATEGY_DI,
        n_ases=2,
        base_ipv4_servers=134,
        base_ipv6_servers=2,
        n_locations=27,
        n_countries=13,
        censys_visibility=0.35,
        passive_dns_coverage=0.55,
        stale_dns_fraction=0.25,
        active_dns_extra=0.25,
        ipv6_hitlist_coverage=1.0,
        traffic=TrafficProfile("prime_time", 0.08, 2000, 800, eu_share=0.55),
        is_top4=True,
    ),
    ProviderSpec(
        name="Amazon IoT",
        key="amazon",
        organization="Amazon",
        revenue_rank=1,
        naming=DomainNamingScheme(
            second_level_domain="amazonaws.com",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("iot",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(8883), ProtocolOffering("MQTT", "tcp", 443), _https(443), _https(8443)),
        strategy=STRATEGY_DI,
        client_cert_ports=(8883,),
        uses_anycast=True,
        n_ases=4,
        base_ipv4_servers=8620,
        base_ipv6_servers=4680,
        n_locations=18,
        n_countries=15,
        censys_visibility=0.65,
        passive_dns_coverage=0.55,
        stale_dns_fraction=0.15,
        active_dns_extra=0.20,
        ipv6_hitlist_coverage=0.55,
        churn_rate=0.08,
        traffic=TrafficProfile("prime_time", 0.45, 3500, 1200, eu_share=0.58),
        is_top4=True,
    ),
    ProviderSpec(
        name="Baidu IoT",
        key="baidu",
        organization="Baidu",
        revenue_rank=13,
        naming=DomainNamingScheme(
            second_level_domain="baidubce.com",
            subdomain_kind=SUBDOMAIN_SERVICE,
            service_labels=("iot",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(
            _mqtt(1883),
            ProtocolOffering("MQTT", "tcp", 1884),
            ProtocolOffering("MQTT", "tcp", 443),
            _http(80),
            _https(443),
            _coap(5682),
            _coap(5683),
        ),
        strategy=STRATEGY_DI,
        n_ases=2,
        base_ipv4_servers=60,
        base_ipv6_servers=1,
        n_locations=2,
        n_countries=1,
        restrict_continents=("AS",),
        restrict_countries=("CN",),
        censys_visibility=0.85,
        passive_dns_coverage=0.55,
        ipv6_hitlist_coverage=1.0,
        traffic=TrafficProfile("constant_telemetry", 0.001, 500, 400, eu_share=0.0),
    ),
    ProviderSpec(
        name="Bosch IoT Hub",
        key="bosch",
        organization="Bosch",
        revenue_rank=9,
        naming=DomainNamingScheme(
            second_level_domain="bosch-iot-hub.com",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("hub",),
            region_style=REGION_STYLE_NONE,
        ),
        protocols=(_mqtt(8883), _https(443), _amqps(5671), _coap(5684)),
        strategy=STRATEGY_PR,
        cloud_hosts=(CLOUD_AWS,),
        ipv6_supported=False,
        n_ases=1,
        base_ipv4_servers=162,
        base_ipv6_servers=0,
        n_locations=1,
        n_countries=1,
        restrict_continents=("EU",),
        censys_visibility=0.70,
        passive_dns_coverage=0.55,
        active_dns_extra=0.22,
        churn_rate=0.10,
        traffic=TrafficProfile("business_hours", 0.02, 3000, 2800, eu_share=0.95),
    ),
    ProviderSpec(
        name="Cisco Kinetic",
        key="cisco",
        organization="Cisco",
        revenue_rank=11,
        naming=DomainNamingScheme(
            second_level_domain="ciscokinetic.io",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("gmm",),
            region_style=REGION_STYLE_NONE,
        ),
        protocols=(
            _mqtt(8883),
            ProtocolOffering("MQTT", "tcp", 443),
            ProtocolOffering("Kinetic", "tcp", 9123),
            ProtocolOffering("Kinetic", "tcp", 9124),
        ),
        strategy=STRATEGY_PR,
        cloud_hosts=(CLOUD_AWS,),
        publishes_ip_ranges=True,
        ipv6_supported=False,
        n_ases=2,
        base_ipv4_servers=20,
        base_ipv6_servers=0,
        n_locations=4,
        n_countries=2,
        censys_visibility=0.75,
        passive_dns_coverage=0.55,
        active_dns_extra=0.22,
        traffic=TrafficProfile("business_hours", 0.01, 1500, 1800, eu_share=0.80),
    ),
    ProviderSpec(
        name="Fujitsu IoT",
        key="fujitsu",
        organization="Fujitsu",
        revenue_rank=16,
        naming=DomainNamingScheme(
            second_level_domain="paas.cloud.global.fujitsu.com",
            subdomain_kind=SUBDOMAIN_SERVICE,
            service_labels=("iot",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(8883), _https(443)),
        strategy=STRATEGY_DI,
        ipv6_supported=False,
        n_ases=1,
        base_ipv4_servers=5,
        base_ipv6_servers=0,
        n_locations=2,
        n_countries=1,
        restrict_continents=("AS",),
        restrict_countries=("JP",),
        censys_visibility=0.90,
        passive_dns_coverage=0.60,
        traffic=TrafficProfile("constant_telemetry", 0.004, 800, 700, eu_share=0.0),
    ),
    ProviderSpec(
        name="Google IoT Core",
        key="google",
        organization="Google",
        revenue_rank=3,
        naming=DomainNamingScheme(
            second_level_domain="googleapis.com",
            subdomain_kind=SUBDOMAIN_FIXED,
            fixed_fqdns=("mqtt.googleapis.com", "cloudiotdevice.googleapis.com"),
            region_style=REGION_STYLE_NONE,
        ),
        protocols=(_mqtt(8883), ProtocolOffering("MQTT", "tcp", 443), _https(443)),
        strategy=STRATEGY_DI,
        uses_sni=True,
        n_ases=1,
        base_ipv4_servers=219,
        base_ipv6_servers=90,
        n_locations=77,
        n_countries=14,
        censys_visibility=0.02,
        passive_dns_coverage=0.80,
        stale_dns_fraction=0.40,
        active_dns_extra=0.15,
        shared_web_fraction=0.35,
        ipv6_hitlist_coverage=0.60,
        traffic=TrafficProfile("daytime", 0.20, 1200, 900, eu_share=0.60),
        is_top4=True,
    ),
    ProviderSpec(
        name="Huawei IoT",
        key="huawei",
        organization="Huawei",
        revenue_rank=12,
        naming=DomainNamingScheme(
            second_level_domain="myhuaweicloud.com",
            subdomain_kind=SUBDOMAIN_SERVICE,
            service_labels=("iot-mqtts", "iot-coaps", "iot-https", "iot-amqps", "iot-api", "iot-da"),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(8883), ProtocolOffering("MQTT", "tcp", 443), _https(8943), _coap(5684)),
        strategy=STRATEGY_DI,
        ipv6_supported=False,
        n_ases=1,
        base_ipv4_servers=26,
        base_ipv6_servers=0,
        n_locations=2,
        n_countries=1,
        restrict_continents=("AS",),
        restrict_countries=("CN",),
        censys_visibility=0.70,
        passive_dns_coverage=0.50,
        active_dns_extra=0.25,
        traffic=TrafficProfile("constant_telemetry", 0.001, 600, 500, eu_share=0.0),
    ),
    ProviderSpec(
        name="IBM Watson IoT",
        key="ibm",
        organization="IBM",
        revenue_rank=7,
        naming=DomainNamingScheme(
            second_level_domain="internetofthings.ibmcloud.com",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("messaging",),
            region_style=REGION_STYLE_NONE,
        ),
        protocols=(_mqtt(8883), _mqtt(1883), _http(80), _https(443)),
        strategy=STRATEGY_DI,
        ipv6_supported=False,
        n_ases=2,
        base_ipv4_servers=250,
        base_ipv6_servers=0,
        n_locations=12,
        n_countries=8,
        censys_visibility=0.70,
        passive_dns_coverage=0.55,
        active_dns_extra=0.22,
        traffic=TrafficProfile("business_hours", 0.03, 2000, 2400, eu_share=0.70),
    ),
    ProviderSpec(
        name="Microsoft Azure IoT Hub",
        key="microsoft",
        organization="Microsoft",
        revenue_rank=2,
        naming=DomainNamingScheme(
            second_level_domain="azure-devices.net",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=(),
            region_style=REGION_STYLE_NONE,
        ),
        protocols=(_mqtt(8883), _https(443), _amqps(5671)),
        strategy=STRATEGY_DI,
        publishes_ip_ranges=True,
        ipv6_supported=False,
        n_ases=1,
        base_ipv4_servers=484,
        base_ipv6_servers=0,
        n_locations=39,
        n_countries=16,
        restrict_continents=("EU", "NA"),
        censys_visibility=1.0,
        passive_dns_coverage=0.20,
        stale_dns_fraction=0.02,
        active_dns_extra=0.05,
        traffic=TrafficProfile("constant_telemetry", 0.12, 2500, 2000, eu_share=0.65),
        is_top4=True,
    ),
    ProviderSpec(
        name="Oracle IoT",
        key="oracle",
        organization="Oracle",
        revenue_rank=10,
        naming=DomainNamingScheme(
            second_level_domain="oraclecloud.com",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("iot",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(8883), _https(443)),
        strategy=STRATEGY_DI_PR,
        cloud_hosts=(CDN_AKAMAI,),
        ipv6_supported=False,
        n_ases=3,
        base_ipv4_servers=502,
        base_ipv6_servers=0,
        n_locations=10,
        n_countries=8,
        censys_visibility=0.80,
        passive_dns_coverage=0.55,
        active_dns_extra=0.15,
        shared_web_fraction=0.15,
        traffic=TrafficProfile("business_hours", 0.02, 1800, 1500, eu_share=0.55),
    ),
    ProviderSpec(
        name="PTC ThingWorx",
        key="ptc",
        organization="PTC",
        revenue_rank=5,
        naming=DomainNamingScheme(
            second_level_domain="thingworx.io",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("twx",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(ProtocolOffering("Agnostic", "tcp", 443), ProtocolOffering("ActiveMQ", "tcp", 61616)),
        strategy=STRATEGY_PR,
        cloud_hosts=(CLOUD_AWS, CLOUD_AZURE),
        ipv6_supported=False,
        n_ases=3,
        base_ipv4_servers=917,
        base_ipv6_servers=0,
        n_locations=10,
        n_countries=8,
        censys_visibility=0.60,
        passive_dns_coverage=0.50,
        active_dns_extra=0.22,
        churn_rate=0.02,
        traffic=TrafficProfile("business_hours", 0.05, 3500, 2200, eu_share=0.50),
    ),
    ProviderSpec(
        name="SAP IoT",
        key="sap",
        organization="SAP",
        revenue_rank=8,
        naming=DomainNamingScheme(
            second_level_domain="iot.sap",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("device-connectivity",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(8883), _https(443), _amqps(5671)),
        strategy=STRATEGY_PR,
        cloud_hosts=(CLOUD_AWS, CLOUD_AZURE, CLOUD_ALIBABA),
        ipv6_supported=False,
        n_ases=6,
        base_ipv4_servers=3030,
        base_ipv6_servers=0,
        n_locations=7,
        n_countries=5,
        censys_visibility=1.0,
        passive_dns_coverage=0.20,
        stale_dns_fraction=0.03,
        active_dns_extra=0.05,
        churn_rate=0.10,
        traffic=TrafficProfile("amqp_bulk", 0.03, 45000, 9000, eu_share=0.85),
    ),
    ProviderSpec(
        name="Siemens MindSphere",
        key="siemens",
        organization="Siemens",
        revenue_rank=6,
        naming=DomainNamingScheme(
            second_level_domain="mindsphere.io",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("mindconnect",),
            region_style=REGION_STYLE_ZONE,
            zone_labels=("eu1", "eu2", "cn1"),
        ),
        protocols=(_mqtt(8883), _https(443), ProtocolOffering("OPC-UA", "tcp", 4840)),
        strategy=STRATEGY_PR,
        cloud_hosts=(CLOUD_AWS, CLOUD_AZURE, CLOUD_ALIBABA),
        publishes_ip_ranges=True,
        uses_anycast=True,
        n_ases=4,
        base_ipv4_servers=112,
        base_ipv6_servers=46,
        n_locations=3,
        n_countries=3,
        censys_visibility=0.55,
        passive_dns_coverage=0.70,
        stale_dns_fraction=0.30,
        active_dns_extra=0.22,
        churn_rate=0.10,
        ipv6_hitlist_coverage=0.60,
        traffic=TrafficProfile("business_hours", 0.02, 2500, 3000, eu_share=0.90),
    ),
    ProviderSpec(
        name="Sierra Wireless AirVantage",
        key="sierra",
        organization="Sierra Wireless",
        revenue_rank=15,
        naming=DomainNamingScheme(
            second_level_domain="airvantage.net",
            subdomain_kind=SUBDOMAIN_SERVICE,
            service_labels=("na", "eu"),
            region_style=REGION_STYLE_NONE,
        ),
        protocols=(_mqtt(8883), _mqtt(1883), _http(80), _https(443), _coap(5682), _coap(5686)),
        strategy=STRATEGY_PR,
        cloud_hosts=(CLOUD_AWS,),
        n_ases=4,
        base_ipv4_servers=12,
        base_ipv6_servers=13,
        n_locations=4,
        n_countries=4,
        censys_visibility=0.35,
        passive_dns_coverage=0.70,
        stale_dns_fraction=0.30,
        active_dns_extra=0.25,
        ipv6_hitlist_coverage=0.70,
        traffic=TrafficProfile("constant_telemetry", 0.01, 900, 1100, eu_share=0.75),
    ),
    ProviderSpec(
        name="Tencent IoT Hub",
        key="tencent",
        organization="Tencent",
        revenue_rank=14,
        naming=DomainNamingScheme(
            second_level_domain="tencentdevices.com",
            subdomain_kind=SUBDOMAIN_CUSTOMER,
            service_labels=("iotcloud",),
            region_style=REGION_STYLE_CODE,
        ),
        protocols=(_mqtt(8883), _mqtt(1883), _http(80), _https(443), _coap(5684)),
        strategy=STRATEGY_DI,
        n_ases=5,
        base_ipv4_servers=53,
        base_ipv6_servers=2,
        n_locations=5,
        n_countries=4,
        censys_visibility=1.0,
        passive_dns_coverage=0.20,
        stale_dns_fraction=0.02,
        active_dns_extra=0.05,
        ipv6_hitlist_coverage=1.0,
        traffic=TrafficProfile("surveillance_upload", 0.015, 1500, 9000, eu_share=0.45),
    ),
)


_PROVIDERS_BY_KEY: Dict[str, ProviderSpec] = {spec.key: spec for spec in PROVIDERS}
_PROVIDERS_BY_NAME: Dict[str, ProviderSpec] = {spec.name: spec for spec in PROVIDERS}


def get_provider(key_or_name: str) -> ProviderSpec:
    """Return a provider by key (``amazon``) or full name (``Amazon IoT``)."""
    if key_or_name in _PROVIDERS_BY_KEY:
        return _PROVIDERS_BY_KEY[key_or_name]
    if key_or_name in _PROVIDERS_BY_NAME:
        return _PROVIDERS_BY_NAME[key_or_name]
    raise KeyError(f"unknown provider {key_or_name!r}")


def provider_names() -> List[str]:
    """Return the provider names in alphabetical order (as in Table 1)."""
    return sorted(spec.name for spec in PROVIDERS)


def provider_keys() -> List[str]:
    """Return the provider keys in alphabetical order."""
    return sorted(spec.key for spec in PROVIDERS)


def top4_providers() -> List[ProviderSpec]:
    """Return the top-4 providers by estimated revenue."""
    return sorted((s for s in PROVIDERS if s.is_top4), key=lambda s: s.revenue_rank)


def cloud_dependent_providers() -> List[ProviderSpec]:
    """Return the providers relying purely on public cloud resources (PR strategy)."""
    return sorted((s for s in PROVIDERS if s.group == GROUP_CLOUD), key=lambda s: s.key)


def other_providers() -> List[ProviderSpec]:
    """Return the remaining providers (neither top-4 nor purely cloud-hosted)."""
    return sorted((s for s in PROVIDERS if s.group == GROUP_OTHER), key=lambda s: s.key)
