"""ISP traffic-flow analyses (Section 5, Figures 5--14).

All analyses operate on :class:`~repro.flows.netflow.FlowRecord` sequences exported
by the ISP's NetFlow collector and on the set of backend addresses produced by the
discovery pipeline.  Provider names are anonymized with an
:class:`~repro.flows.anonymize.AnonymizationMap` before any per-provider numbers
are reported, mirroring the paper's data-sharing agreement.

Every analysis accepts either a plain record sequence or a columnar
:class:`~repro.flows.flowtable.FlowTable`; inputs are converted once via
:meth:`FlowTable.ensure` and all grouping/filtering runs on the table's
dictionary-encoded columns instead of repeated linear passes over dataclass
instances.  Callers that run several analyses over the same flows (the
``repro.experiments`` layer) should pass a shared ``FlowTable`` so the
conversion happens once.

The module provides, in paper order:

* scanner identification and exclusion (Figure 5),
* backend visibility per provider (Figure 6),
* the subscriber-line undercount when only TLS-certificate data is used (Figure 7),
* subscriber-line activity and downstream-volume time series (Figures 8, 9),
* downstream/upstream ratios (Figure 10),
* the port mix per provider (Figure 11),
* per-subscriber daily-volume distributions (Figure 12),
* continent-crossing statistics (Figures 13, 14).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.discovery import DiscoveryResult
from repro.flows.anonymize import AnonymizationMap
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import FlowRecord
from repro.netmodel.geo import (
    CONTINENT_ASIA,
    CONTINENT_EUROPE,
    CONTINENT_NORTH_AMERICA,
)
from repro.protocols.ports import port_label

#: Default scanner threshold adopted by the paper after the sensitivity analysis.
DEFAULT_SCANNER_THRESHOLD = 100

#: Analyses accept plain record sequences or an already-built columnar table.
Flows = Union[FlowTable, Sequence[FlowRecord]]


# ---------------------------------------------------------------------------------
# Empirical distributions (used by the ECDF figures)
# ---------------------------------------------------------------------------------


@dataclass
class EmpiricalDistribution:
    """A simple empirical distribution over non-negative values."""

    values: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.values = sorted(float(v) for v in self.values)

    def __len__(self) -> int:
        return len(self.values)

    def quantile(self, q: float) -> float:
        """Return the q-quantile (0 <= q <= 1) of the observed values."""
        if not self.values:
            raise ValueError("empty distribution has no quantiles")
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        index = min(len(self.values) - 1, max(0, int(round(q * (len(self.values) - 1)))))
        return self.values[index]

    def fraction_below(self, threshold: float) -> float:
        """Return the fraction of values strictly below the threshold."""
        if not self.values:
            return 0.0
        return bisect.bisect_left(self.values, threshold) / len(self.values)

    def fraction_between(self, low: float, high: float) -> float:
        """Return the fraction of values in [low, high)."""
        return max(0.0, self.fraction_below(high) - self.fraction_below(low))


# ---------------------------------------------------------------------------------
# Scanner identification and exclusion (Section 5.2, Figure 5)
# ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class ScannerThresholdPoint:
    """One point of the scanner-threshold sensitivity sweep."""

    threshold: int
    scanner_line_count: int
    server_coverage_fraction: float


class ScannerExclusion:
    """Identifies subscriber lines hosting scanners from their backend fan-out.

    ``mask`` optionally restricts the analysis to a row subset of a table
    (e.g. one study day) without materializing a filtered copy.
    """

    def __init__(
        self,
        flows: Flows,
        backend_ips: Set[str],
        mask: Optional[Sequence[int]] = None,
    ) -> None:
        self.backend_ips = set(backend_ips)
        table = FlowTable.ensure(flows)
        ip_pool = table.pool("server_ip")
        is_backend = bytearray(len(ip_pool))
        for code, ip in enumerate(ip_pool):
            if ip in self.backend_ips:
                is_backend[code] = 1
        codes = table.codes("server_ip")
        if mask is None:
            row_mask = bytearray(map(is_backend.__getitem__, codes))
        else:
            row_mask = bytearray(
                1 if keep and is_backend[code] else 0
                for keep, code in zip(mask, codes)
            )
        self._contacts: Dict[int, Set[str]] = table.group_distinct(
            ("subscriber_id",), "server_ip", mask=row_mask
        )

    def contacts_per_line(self) -> Dict[int, int]:
        """Number of distinct backend addresses contacted per subscriber line."""
        return {line: len(ips) for line, ips in self._contacts.items()}

    def scanner_lines(self, threshold: int = DEFAULT_SCANNER_THRESHOLD) -> Set[int]:
        """Lines contacting more than ``threshold`` distinct backend addresses."""
        return {line for line, ips in self._contacts.items() if len(ips) > threshold}

    def server_coverage(self, threshold: int = DEFAULT_SCANNER_THRESHOLD) -> float:
        """Fraction of backend addresses contacted by non-scanner lines."""
        if not self.backend_ips:
            return 0.0
        scanners = self.scanner_lines(threshold)
        covered: Set[str] = set()
        for line, ips in self._contacts.items():
            if line not in scanners:
                covered.update(ips)
        return len(covered) / len(self.backend_ips)

    def sweep(self, thresholds: Sequence[int]) -> List[ScannerThresholdPoint]:
        """Evaluate scanner count and server coverage for several thresholds."""
        points = []
        for threshold in thresholds:
            points.append(
                ScannerThresholdPoint(
                    threshold=threshold,
                    scanner_line_count=len(self.scanner_lines(threshold)),
                    server_coverage_fraction=self.server_coverage(threshold),
                )
            )
        return points


def exclude_scanner_flows(flows: Flows, scanner_lines: Set[int]) -> Flows:
    """Drop all flows of the given scanner lines.

    Returns the same container kind it was given: a filtered ``FlowTable`` for
    table input, a list of records otherwise.
    """
    if isinstance(flows, FlowTable):
        return flows.exclude_subscribers(scanner_lines)
    return [flow for flow in flows if flow.subscriber_id not in scanner_lines]


def identify_and_exclude_scanners(
    flows: Flows,
    backend_ips: Set[str],
    threshold: int = DEFAULT_SCANNER_THRESHOLD,
) -> Tuple[Flows, Set[int]]:
    """Convenience helper: identify scanners and return (clean flows, scanner lines)."""
    exclusion = ScannerExclusion(flows, backend_ips)
    scanners = exclusion.scanner_lines(threshold)
    return exclude_scanner_flows(flows, scanners), scanners


# ---------------------------------------------------------------------------------
# Backend visibility (Section 5.2, Figure 6)
# ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class VisibilityRow:
    """Share of a provider's discovered addresses contacted from the ISP."""

    label: str
    ipv4_visible: int
    ipv4_total: int
    ipv6_visible: int
    ipv6_total: int

    @property
    def ipv4_fraction(self) -> float:
        """Visible fraction of the provider's IPv4 addresses."""
        return self.ipv4_visible / self.ipv4_total if self.ipv4_total else 0.0

    @property
    def ipv6_fraction(self) -> float:
        """Visible fraction of the provider's IPv6 addresses."""
        return self.ipv6_visible / self.ipv6_total if self.ipv6_total else 0.0


def visibility_per_provider(
    flows: Flows,
    result: DiscoveryResult,
    anonymization: AnonymizationMap,
) -> List[VisibilityRow]:
    """Compute, per provider, the fraction of discovered addresses seen in traffic."""
    table = FlowTable.ensure(flows)
    contacted = table.group_distinct(("provider_key",), "server_ip")
    rows: List[VisibilityRow] = []
    for provider_key in result.providers():
        ipv4_total = result.ipv4_ips(provider_key)
        ipv6_total = result.ipv6_ips(provider_key)
        seen = contacted.get(provider_key, set())
        rows.append(
            VisibilityRow(
                label=anonymization.label(provider_key),
                ipv4_visible=len(ipv4_total & seen),
                ipv4_total=len(ipv4_total),
                ipv6_visible=len(ipv6_total & seen),
                ipv6_total=len(ipv6_total),
            )
        )
    return sorted(rows, key=lambda row: _label_sort_key(row.label))


def overall_visibility(flows: Flows, result: DiscoveryResult, ip_version: int) -> float:
    """Overall fraction of discovered addresses of a family seen in traffic."""
    total = result.ipv4_ips() if ip_version == 4 else result.ipv6_ips()
    if not total:
        return 0.0
    table = FlowTable.ensure(flows)
    contacted = {ip for ip in table.distinct("server_ip") if ip in total}
    return len(contacted) / len(total)


# ---------------------------------------------------------------------------------
# Subscriber lines visible per data source (Section 5.3, Figure 7)
# ---------------------------------------------------------------------------------


@dataclass(frozen=True)
class SubscriberLossRow:
    """Decrease in detectable IoT subscriber lines when only TLS data is used."""

    label: str
    ip_version: int
    lines_full: int
    lines_tls_only: int

    @property
    def decrease_fraction(self) -> float:
        """Relative decrease in detected subscriber lines."""
        if self.lines_full == 0:
            return 0.0
        return 1.0 - (self.lines_tls_only / self.lines_full)


def subscriber_lines_per_provider(
    flows: Flows, backend_ips: Set[str]
) -> Dict[Tuple[str, int], Set[int]]:
    """Return, per (provider, family), the subscriber lines whose flows touch the given addresses."""
    table = FlowTable.ensure(flows)
    mask = table.mask_server_ips(backend_ips)
    return table.group_distinct(("provider_key", "ip_version"), "subscriber_id", mask=mask)


def tls_only_subscriber_loss(
    flows: Flows,
    full_result: DiscoveryResult,
    tls_only_result: DiscoveryResult,
    anonymization: AnonymizationMap,
) -> List[SubscriberLossRow]:
    """Quantify the loss in visible IoT subscriber lines with TLS-only discovery."""
    table = FlowTable.ensure(flows)
    full_lines = subscriber_lines_per_provider(table, full_result.ips())
    tls_lines = subscriber_lines_per_provider(table, tls_only_result.ips())
    rows: List[SubscriberLossRow] = []
    for provider_key in full_result.providers():
        for ip_version in (4, 6):
            full = full_lines.get((provider_key, ip_version), set())
            if not full:
                continue
            tls = tls_lines.get((provider_key, ip_version), set())
            rows.append(
                SubscriberLossRow(
                    label=anonymization.label(provider_key),
                    ip_version=ip_version,
                    lines_full=len(full),
                    lines_tls_only=len(tls),
                )
            )
    return sorted(rows, key=lambda row: (_label_sort_key(row.label), row.ip_version))


# ---------------------------------------------------------------------------------
# Activity and volume time series (Section 5.3--5.4, Figures 8--10)
# ---------------------------------------------------------------------------------


def activity_timeseries(
    flows: Flows,
    anonymization: AnonymizationMap,
    min_lines_per_hour: int = 0,
) -> Dict[str, Dict[datetime, int]]:
    """Hourly number of active subscriber lines per (anonymized) provider."""
    table = FlowTable.ensure(flows)
    grouped = table.group_distinct(("provider_key", "timestamp"), "subscriber_id")
    lines: Dict[str, Dict[datetime, Set[int]]] = defaultdict(dict)
    for (provider_key, timestamp), subscribers in grouped.items():
        per_hour = lines[anonymization.label(provider_key)]
        existing = per_hour.get(timestamp)
        if existing is None:
            # group_distinct returns fresh sets; adopt them instead of copying.
            per_hour[timestamp] = subscribers
        else:
            existing.update(subscribers)
    series: Dict[str, Dict[datetime, int]] = {}
    for label, per_hour in lines.items():
        counted = {timestamp: len(ids) for timestamp, ids in per_hour.items()}
        if min_lines_per_hour and max(counted.values(), default=0) < min_lines_per_hour:
            continue
        series[label] = dict(sorted(counted.items()))
    return dict(sorted(series.items(), key=lambda item: _label_sort_key(item[0])))


def volume_timeseries(
    flows: Flows,
    anonymization: AnonymizationMap,
    sampling_ratio: int = 1,
    direction: str = "down",
) -> Dict[str, Dict[datetime, float]]:
    """Hourly (estimated) traffic volume per provider, downstream by default."""
    if direction not in ("down", "up"):
        raise ValueError("direction must be 'down' or 'up'")
    table = FlowTable.ensure(flows)
    value_column = "bytes_down" if direction == "down" else "bytes_up"
    grouped = table.group_sum(("provider_key", "timestamp"), value_column)
    series: Dict[str, Dict[datetime, float]] = defaultdict(lambda: defaultdict(float))
    for (provider_key, timestamp), volume in grouped.items():
        series[anonymization.label(provider_key)][timestamp] += volume * sampling_ratio
    return {
        label: dict(sorted(per_hour.items()))
        for label, per_hour in sorted(series.items(), key=lambda item: _label_sort_key(item[0]))
    }


def direction_ratio_timeseries(
    flows: Flows, anonymization: AnonymizationMap
) -> Dict[str, Dict[datetime, float]]:
    """Hourly downstream/upstream byte ratio per provider (Figure 10)."""
    table = FlowTable.ensure(flows)
    down = volume_timeseries(table, anonymization, direction="down")
    up = volume_timeseries(table, anonymization, direction="up")
    ratios: Dict[str, Dict[datetime, float]] = {}
    for label, per_hour in down.items():
        ratios[label] = {}
        for timestamp, downstream in per_hour.items():
            upstream = up.get(label, {}).get(timestamp, 0.0)
            if upstream > 0:
                ratios[label][timestamp] = downstream / upstream
    return ratios


def mean_direction_ratio(flows: Flows, anonymization: AnonymizationMap) -> Dict[str, float]:
    """Overall downstream/upstream ratio per provider across the whole input."""
    table = FlowTable.ensure(flows)
    grouped = table.group_sums(("provider_key",), ("bytes_down", "bytes_up"))
    down: Dict[str, float] = defaultdict(float)
    up: Dict[str, float] = defaultdict(float)
    for provider_key, (down_bytes, up_bytes) in grouped.items():
        label = anonymization.label(provider_key)
        down[label] += down_bytes
        up[label] += up_bytes
    return {
        label: (down[label] / up[label]) if up[label] > 0 else float("inf")
        for label in sorted(down, key=_label_sort_key)
    }


# ---------------------------------------------------------------------------------
# Port usage (Section 5.5, Figure 11)
# ---------------------------------------------------------------------------------


def port_mix(flows: Flows, anonymization: AnonymizationMap) -> Dict[str, Dict[str, float]]:
    """Share of each provider's traffic volume per (transport, port)."""
    table = FlowTable.ensure(flows)
    grouped = table.group_sums(("provider_key", "transport", "port"), ("bytes_down", "bytes_up"))
    volume: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for (provider_key, transport, port), (down, up) in grouped.items():
        volume[anonymization.label(provider_key)][port_label(transport, port)] += down + up
    mix: Dict[str, Dict[str, float]] = {}
    for label, per_port in volume.items():
        total = sum(per_port.values())
        if total <= 0:
            continue
        mix[label] = {
            port: per_port[port] / total
            for port in sorted(per_port, key=lambda p: -per_port[p])
        }
    return dict(sorted(mix.items(), key=lambda item: _label_sort_key(item[0])))


def top_ports_by_volume(
    flows: Flows, top_n: int = 7, mask: Optional[Sequence[int]] = None
) -> List[str]:
    """Return the ``top_n`` port labels by total downstream volume."""
    table = FlowTable.ensure(flows)
    grouped = table.group_sum(("transport", "port"), "bytes_down", mask=mask)
    volume: Dict[str, float] = defaultdict(float)
    for (transport, port), down in grouped.items():
        volume[port_label(transport, port)] += down
    return [label for label, _ in sorted(volume.items(), key=lambda item: -item[1])[:top_n]]


# ---------------------------------------------------------------------------------
# Per-subscriber daily volumes (Section 5.6, Figure 12)
# ---------------------------------------------------------------------------------


def per_subscriber_daily_volume(
    flows: Flows,
    day: date,
    sampling_ratio: int = 1,
) -> Tuple[EmpiricalDistribution, EmpiricalDistribution]:
    """Figure 12a: daily (downstream, upstream) volume per subscriber line."""
    table = FlowTable.ensure(flows)
    grouped = table.group_sums(
        ("subscriber_id",), ("bytes_down", "bytes_up"), mask=table.mask_day(day)
    )
    down = [sums[0] * sampling_ratio for sums in grouped.values()]
    up = [sums[1] * sampling_ratio for sums in grouped.values()]
    return EmpiricalDistribution(down), EmpiricalDistribution(up)


def per_subscriber_daily_volume_by_provider(
    flows: Flows,
    day: date,
    anonymization: AnonymizationMap,
    sampling_ratio: int = 1,
    direction: str = "down",
) -> Dict[str, EmpiricalDistribution]:
    """Figure 12b: per-provider daily volume per subscriber line."""
    table = FlowTable.ensure(flows)
    value_column = "bytes_down" if direction == "down" else "bytes_up"
    grouped = table.group_sum(
        ("provider_key", "subscriber_id"), value_column, mask=table.mask_day(day)
    )
    per_provider: Dict[str, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
    for (provider_key, subscriber_id), volume in grouped.items():
        label = anonymization.label(provider_key)
        per_provider[label][subscriber_id] += volume * sampling_ratio
    return {
        label: EmpiricalDistribution(list(values.values()))
        for label, values in sorted(per_provider.items(), key=lambda item: _label_sort_key(item[0]))
    }


def per_subscriber_daily_volume_by_port(
    flows: Flows,
    day: date,
    sampling_ratio: int = 1,
    top_n: int = 7,
) -> Dict[str, EmpiricalDistribution]:
    """Figure 12c: per-port daily downstream volume per subscriber line.

    The ``top_n`` ports by downstream volume get their own distribution; all other
    ports are aggregated under ``Other``.
    """
    table = FlowTable.ensure(flows)
    day_mask = table.mask_day(day)
    top = set(top_ports_by_volume(table, top_n, mask=day_mask))
    grouped = table.group_sum(
        ("transport", "port", "subscriber_id"), "bytes_down", mask=day_mask
    )
    per_port: Dict[str, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
    for (transport, port, subscriber_id), volume in grouped.items():
        label = port_label(transport, port)
        if label not in top:
            label = "Other"
        per_port[label][subscriber_id] += volume * sampling_ratio
    return {
        label: EmpiricalDistribution(list(values.values()))
        for label, values in per_port.items()
    }


# ---------------------------------------------------------------------------------
# Crossing region borders (Section 5.7, Figures 13 and 14)
# ---------------------------------------------------------------------------------

REGION_EUROPE_ONLY = "Europe only"
REGION_US_ONLY = "US only"
REGION_EU_US = "EU & US"
REGION_ASIA = "Asia"
REGION_OTHER = "Other"

REGION_CATEGORIES = (REGION_EUROPE_ONLY, REGION_US_ONLY, REGION_EU_US, REGION_ASIA, REGION_OTHER)


@dataclass
class RegionCrossingReport:
    """Continent-crossing statistics for subscriber lines and traffic."""

    line_categories: Dict[str, float]
    traffic_by_continent: Dict[str, float]
    lines_total: int

    def category_fraction(self, category: str) -> float:
        """Fraction of IoT-hosting lines in a category."""
        return self.line_categories.get(category, 0.0)

    def traffic_fraction(self, continent: str) -> float:
        """Fraction of traffic exchanged with servers on a continent."""
        return self.traffic_by_continent.get(continent, 0.0)


def _categorize_continents(continents: Set[str]) -> str:
    europe = CONTINENT_EUROPE in continents
    america = CONTINENT_NORTH_AMERICA in continents
    asia = CONTINENT_ASIA in continents
    others = continents - {CONTINENT_EUROPE, CONTINENT_NORTH_AMERICA, CONTINENT_ASIA}
    if europe and not america and not asia and not others:
        return REGION_EUROPE_ONLY
    if america and not europe and not asia and not others:
        return REGION_US_ONLY
    if europe and america and not asia and not others:
        return REGION_EU_US
    if asia and not europe and not america and not others:
        return REGION_ASIA
    return REGION_OTHER


def region_crossing(flows: Flows) -> RegionCrossingReport:
    """Compute Figure 13 (lines) and Figure 14 (traffic) statistics."""
    table = FlowTable.ensure(flows)
    continents_per_line = table.group_distinct(("subscriber_id",), "server_continent")
    grouped_traffic = table.group_sums(("server_continent",), ("bytes_down", "bytes_up"))
    traffic_by_continent = {
        continent: down + up for continent, (down, up) in grouped_traffic.items()
    }
    total_lines = len(continents_per_line)
    categories: Dict[str, int] = defaultdict(int)
    for continents in continents_per_line.values():
        categories[_categorize_continents(continents)] += 1
    total_traffic = sum(traffic_by_continent.values())
    return RegionCrossingReport(
        line_categories={
            category: (categories.get(category, 0) / total_lines if total_lines else 0.0)
            for category in REGION_CATEGORIES
        },
        traffic_by_continent={
            continent: (volume / total_traffic if total_traffic else 0.0)
            for continent, volume in sorted(traffic_by_continent.items())
        },
        lines_total=total_lines,
    )


# ---------------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------------


def _label_sort_key(label: str) -> Tuple[int, int]:
    """Sort anonymized labels: T group first, then D, then O, numerically."""
    order = {"T": 0, "D": 1, "O": 2}
    prefix = label[0] if label else "Z"
    try:
        index = int(label[1:])
    except (ValueError, IndexError):
        index = 0
    return (order.get(prefix, 3), index)


def daily_active_lines(flows: Flows, ip_version: Optional[int] = None) -> Dict[date, int]:
    """Number of distinct subscriber lines with IoT activity per day."""
    table = FlowTable.ensure(flows)
    mask = table.mask_ip_version(ip_version) if ip_version is not None else None
    per_day: Dict[date, Set[int]] = defaultdict(set)
    grouped = table.group_distinct(("timestamp",), "subscriber_id", mask=mask)
    for timestamp, lines in grouped.items():
        per_day[timestamp.date()].update(lines)
    return {day: len(lines) for day, lines in sorted(per_day.items())}
