"""Per-source contribution of discovered addresses (Section 3.5, Figure 3).

For every provider, every discovered address is attributed to the data source that
found it — TLS certificates (Censys / IPv6 scans), passive DNS, active DNS — or to
"multiple sources" when more than one method found it.  The paper plots the
fraction (and absolute number) of addresses per source, separately for IPv4 and
IPv6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.discovery import (
    SOURCE_ACTIVE_DNS,
    SOURCE_IPV6_SCAN,
    SOURCE_PASSIVE_DNS,
    SOURCE_TLS,
    DiscoveryResult,
)

#: Category labels used in Figure 3.
CATEGORY_SCAN = "Censys/Active Meas."
CATEGORY_PASSIVE_DNS = "Passive DNS"
CATEGORY_ACTIVE_DNS = "DNS Res."
CATEGORY_MULTIPLE = "Multiple Sources"

CATEGORIES = (CATEGORY_SCAN, CATEGORY_PASSIVE_DNS, CATEGORY_ACTIVE_DNS, CATEGORY_MULTIPLE)

_SOURCE_TO_CATEGORY = {
    SOURCE_TLS: CATEGORY_SCAN,
    SOURCE_IPV6_SCAN: CATEGORY_SCAN,
    SOURCE_PASSIVE_DNS: CATEGORY_PASSIVE_DNS,
    SOURCE_ACTIVE_DNS: CATEGORY_ACTIVE_DNS,
}


@dataclass
class SourceBreakdown:
    """Counts of discovered addresses per source category for one provider/family."""

    provider_key: str
    ip_version: int
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total number of discovered addresses."""
        return sum(self.counts.values())

    def fraction(self, category: str) -> float:
        """Fraction of addresses attributed to a category (0 when empty)."""
        if self.total == 0:
            return 0.0
        return self.counts.get(category, 0) / self.total


def source_breakdown(
    result: DiscoveryResult, provider_key: str, ip_version: int
) -> SourceBreakdown:
    """Compute the Figure-3 breakdown for one provider and address family."""
    breakdown = SourceBreakdown(provider_key=provider_key, ip_version=ip_version)
    counts = {category: 0 for category in CATEGORIES}
    for record in result.records(provider_key):
        if (record.is_ipv6 and ip_version != 6) or (not record.is_ipv6 and ip_version != 4):
            continue
        categories = {_SOURCE_TO_CATEGORY[s] for s in record.sources if s in _SOURCE_TO_CATEGORY}
        if len(categories) > 1:
            counts[CATEGORY_MULTIPLE] += 1
        elif categories:
            counts[next(iter(categories))] += 1
    breakdown.counts = counts
    return breakdown


def contribution_table(result: DiscoveryResult) -> List[SourceBreakdown]:
    """Compute breakdowns for every provider and both address families."""
    rows: List[SourceBreakdown] = []
    for provider_key in result.providers():
        for ip_version in (4, 6):
            breakdown = source_breakdown(result, provider_key, ip_version)
            if breakdown.total > 0 or ip_version == 4:
                rows.append(breakdown)
    return rows
