"""The paper's core contribution: IoT backend discovery methodology and analyses.

Modules
-------
``providers``
    Catalog of the 16 IoT backend providers (Table 1) and their documented
    characteristics.
``patterns``
    Domain-pattern model and regular-expression generation (Section 3.2, Appendix A).
``discovery``
    Multi-source IP discovery: TLS certificates, IPv6 scans, passive DNS, active DNS
    (Section 3.3).
``validation``
    Shared-vs-dedicated classification and ground-truth validation (Section 3.4).
``source_attribution``
    Per-source contribution of discovered IPs (Section 3.5, Figure 3).
``stability``
    Day-over-day churn of discovered IP sets (Section 4.1, Figure 4).
``footprint``
    Geolocation, AS/prefix diversity, deployment strategy, protocol support
    (Sections 4.2--4.4, Table 1).
``traffic``
    ISP traffic-flow analyses (Section 5, Figures 5--14).
``disruption``
    Outage, BGP-event, and blocklist analyses (Section 6, Figures 15--16).
``pipeline``
    End-to-end orchestration of the methodology (Figure 2).
``report``
    Table/figure data structures and text rendering.
"""

from repro.core.providers import PROVIDERS, ProviderSpec, get_provider, provider_names
from repro.core.pipeline import DiscoveryPipeline, PipelineResult

__all__ = [
    "PROVIDERS",
    "ProviderSpec",
    "get_provider",
    "provider_names",
    "DiscoveryPipeline",
    "PipelineResult",
]
