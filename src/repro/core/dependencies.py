"""Inter-provider dependencies and cascade exposure (Sections 4.2, 6, and 7).

Six of the sixteen IoT backend providers rely on other IoT backend providers or
public clouds for their Internet-facing gateways (Bosch, Cisco, PTC, SAP, Siemens,
Sierra Wireless), and Oracle leases part of its footprint from a CDN.  The paper
points out that outages of a hosting provider can therefore cascade to the IoT
backends built on top of it.

This module quantifies that exposure from the *measured* footprint: every
discovered backend address is attributed to the organisation announcing its prefix,
which yields (a) a hosting-dependency graph between IoT backend providers and
hosting organisations and (b) the fraction of each provider's backend that a
complete outage of one hosting organisation would take down.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.core.discovery import DiscoveryResult
from repro.core.providers import get_provider
from repro.netmodel.asn import AsRegistry
from repro.routing.bgp import RoutingTable


@dataclass
class HostingDependency:
    """How one provider's discovered backend splits across hosting organisations."""

    provider_key: str
    addresses_by_organization: Dict[str, int] = field(default_factory=dict)

    @property
    def total_addresses(self) -> int:
        """Total number of attributed addresses."""
        return sum(self.addresses_by_organization.values())

    def organizations(self) -> List[str]:
        """Hosting organisations, largest share first."""
        return sorted(
            self.addresses_by_organization,
            key=lambda org: (-self.addresses_by_organization[org], org),
        )

    def share(self, organization: str) -> float:
        """Fraction of the provider's addresses announced by an organisation."""
        if self.total_addresses == 0:
            return 0.0
        return self.addresses_by_organization.get(organization, 0) / self.total_addresses

    @property
    def relies_on_third_party(self) -> bool:
        """True when any address is announced by an organisation other than the provider."""
        own = get_provider(self.provider_key).organization
        return any(org != own for org in self.addresses_by_organization)


def hosting_dependencies(
    result: DiscoveryResult,
    routing_table: RoutingTable,
    as_registry: AsRegistry,
) -> Dict[str, HostingDependency]:
    """Attribute every discovered address to the organisation announcing its prefix."""
    dependencies: Dict[str, HostingDependency] = {}
    for provider_key in result.providers():
        dependency = HostingDependency(provider_key=provider_key)
        counts: Dict[str, int] = defaultdict(int)
        for ip in sorted(result.ips(provider_key)):
            announcement = routing_table.lookup(ip)
            if announcement is None:
                continue
            autonomous_system = as_registry.get(announcement.origin_asn)
            organization = (
                autonomous_system.organization if autonomous_system else announcement.origin_organization
            )
            if organization:
                counts[organization] += 1
        dependency.addresses_by_organization = dict(counts)
        dependencies[provider_key] = dependency
    return dependencies


def shared_hosting_organizations(
    dependencies: Mapping[str, HostingDependency],
) -> Dict[str, List[str]]:
    """Return hosting organisations serving more than one provider's backend.

    These are the points where an outage, misconfiguration, or attack could cascade
    across IoT backend providers (Section 7).
    """
    providers_per_org: Dict[str, Set[str]] = defaultdict(set)
    for provider_key, dependency in dependencies.items():
        own = get_provider(provider_key).organization
        for organization in dependency.addresses_by_organization:
            if organization != own:
                providers_per_org[organization].add(provider_key)
    return {
        organization: sorted(providers)
        for organization, providers in providers_per_org.items()
        if len(providers) >= 2
    }


@dataclass(frozen=True)
class CascadeImpact:
    """Impact of a full outage of one hosting organisation on one provider."""

    provider_key: str
    organization: str
    affected_addresses: int
    total_addresses: int

    @property
    def affected_fraction(self) -> float:
        """Fraction of the provider's backend hosted by the failed organisation."""
        if self.total_addresses == 0:
            return 0.0
        return self.affected_addresses / self.total_addresses


def cascade_exposure(
    dependencies: Mapping[str, HostingDependency],
    organization: str,
    minimum_fraction: float = 0.0,
) -> List[CascadeImpact]:
    """Return the per-provider impact of a complete outage of one organisation."""
    impacts: List[CascadeImpact] = []
    for provider_key, dependency in sorted(dependencies.items()):
        affected = dependency.addresses_by_organization.get(organization, 0)
        impact = CascadeImpact(
            provider_key=provider_key,
            organization=organization,
            affected_addresses=affected,
            total_addresses=dependency.total_addresses,
        )
        if impact.affected_fraction > minimum_fraction:
            impacts.append(impact)
    return impacts


def most_critical_organization(
    dependencies: Mapping[str, HostingDependency],
    exclude_own: bool = True,
) -> Optional[str]:
    """Return the hosting organisation whose outage would affect the most providers."""
    candidates: Dict[str, int] = defaultdict(int)
    for provider_key, dependency in dependencies.items():
        own = get_provider(provider_key).organization
        for organization in dependency.addresses_by_organization:
            if exclude_own and organization == own:
                continue
            candidates[organization] += 1
    if not candidates:
        return None
    return sorted(candidates, key=lambda org: (-candidates[org], org))[0]
