"""Table/figure rendering helpers.

The benchmark harness regenerates every table and figure of the paper as plain
text; these helpers keep the formatting in one place so benches and examples stay
small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_count(value: float) -> str:
    """Human-readable count: 8.62K, 3.03M, else the plain integer."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if value >= 1_000:
        return f"{value / 1_000:.2f}K"
    return str(int(value))


def format_bytes(value: float) -> str:
    """Human-readable byte volume."""
    units = ["B", "KB", "MB", "GB", "TB"]
    magnitude = float(value)
    for unit in units:
        if magnitude < 1024 or unit == units[-1]:
            return f"{magnitude:.1f}{unit}"
        magnitude /= 1024
    return f"{magnitude:.1f}TB"


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage."""
    return f"{fraction * 100:.{digits}f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            " | ".join(
                cell.ljust(widths[i]) if i < len(widths) else cell for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_series(series: Mapping[str, Mapping[object, float]], value_format=format_count, title: str = "") -> str:
    """Render a set of named time series as compact text (one line per series)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name in series:
        values = list(series[name].values())
        if not values:
            lines.append(f"{name}: (empty)")
            continue
        lines.append(
            f"{name}: n={len(values)} min={value_format(min(values))} "
            f"max={value_format(max(values))} mean={value_format(sum(values) / len(values))}"
        )
    return "\n".join(lines)


def render_distribution_summary(
    distributions: Mapping[str, "object"], quantiles: Sequence[float] = (0.5, 0.9, 0.99)
) -> str:
    """Render quantile summaries for a mapping of named empirical distributions."""
    headers = ["series", "n"] + [f"p{int(q * 100)}" for q in quantiles]
    rows = []
    for name, distribution in distributions.items():
        if len(distribution) == 0:
            rows.append([name, 0] + ["-" for _ in quantiles])
            continue
        rows.append(
            [name, len(distribution)]
            + [format_bytes(distribution.quantile(q)) for q in quantiles]
        )
    return render_table(headers, rows)
