"""Suffix-indexed pattern-matching engine for provider domain classification.

Classifying FQDNs against the 16 providers' domain regexes (Section 3.2 /
Appendix A) is the hottest operation of the reproduction: every certificate
name, every passive-DNS owner name, and every actively resolved domain goes
through it, and production-scale corpora (DNSDB, Censys) contain hundreds of
millions of names.  The naive path evaluates O(providers x patterns) regexes
per name, recompiling each one on every call.

:class:`CompiledPatternSet` removes both costs:

* **Compile once.**  Every regex is compiled exactly once when the engine is
  built.
* **Suffix index.**  All of the paper's patterns are anchored on a literal
  registrable second-level domain (``amazonaws.com``, ``azure-devices.net``,
  ``iot.sap``, ...).  The engine indexes patterns by the last two labels of
  that literal suffix, so a lookup slices the FQDN's two-label tail (two
  ``rfind`` calls, one substring), probes the index with one dict lookup, and
  evaluates only the pattern(s) registered under that tail -- at most one
  anchored regex evaluation in the common case, and none at all for the vast
  majority of non-matching names.  Because every regex is end-anchored on its
  full literal suffix, the regex itself verifies longer suffixes and exact
  fixed FQDNs (Google); a tail collision can cause a wasted evaluation but
  never a wrong result.
* **Fallback list.**  Hand-built patterns whose regex is not anchored on a
  literal suffix are kept in a small linear-scan list, preserving the legacy
  semantics for arbitrary regexes.
* **LRU cache + bulk API.**  Single lookups are memoized
  (:func:`functools.lru_cache`) because real corpora repeat names heavily;
  :meth:`CompiledPatternSet.match_many` amortizes normalization and cache
  probing over an entire iterable and returns a ``name -> provider`` dict.

The engine is behaviour-compatible with the legacy
:meth:`repro.core.patterns.PatternSet.match` path: when several providers'
patterns match one name, the alphabetically first provider key wins, exactly
like the legacy sorted iteration.
"""

from __future__ import annotations

import re
import time
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics

#: Default size of the per-engine single-lookup LRU cache.
DEFAULT_LRU_SIZE = 65536

#: Characters that keep their literal meaning outside a character class.
_REGEX_METACHARS = frozenset("()[]{}|?*+^$")

#: Valid characters of an (indexable) literal domain suffix.
_DOMAIN_SUFFIX_RE = re.compile(r"[a-z0-9][a-z0-9.-]*")


def _has_top_level_alternation(regex: str) -> bool:
    """True when the regex has an unparenthesized ``|`` (multiple branches)."""
    depth = 0
    in_class = False
    escaped = False
    for ch in regex:
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
        elif in_class:
            if ch == "]":
                in_class = False
        elif ch == "[":
            in_class = True
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "|" and depth == 0:
            return True
    return False


def _parse_literal_suffix(regex: str) -> Tuple[Optional[str], bool]:
    """Extract the literal domain suffix a regex is end-anchored on.

    Returns ``(suffix, exact)``: ``exact`` is True when the regex matches one
    complete literal FQDN (``^name\\.?$``).  Returns ``(None, False)`` when no
    trailing literal run can be extracted safely; such patterns fall back to a
    linear scan.  The parser walks the regex backwards from the ``$`` anchor,
    unescaping ``\\.``/``\\-`` and stopping at the first metacharacter; when
    the literal does not start at a label boundary, the (possibly partial)
    first label is dropped.
    """
    if not regex.endswith("$"):
        return None, False
    if _has_top_level_alternation(regex):
        # Only the last alternative's suffix would be extracted; names matching
        # the other branches would never be probed.  Linear scan instead.
        return None, False
    body = regex[:-1]
    for optional_tail in (r"\.?", r"\."):
        if body.endswith(optional_tail):
            body = body[: -len(optional_tail)]
            break
    chars: List[str] = []
    i = len(body)
    while i > 0:
        ch = body[i - 1]
        backslashes = 0
        j = i - 1
        while j > 0 and body[j - 1] == "\\":
            backslashes += 1
            j -= 1
        if backslashes % 2 == 1:
            if ch in ".-":
                chars.append(ch)
                i -= 2
                continue
            break
        if ch == "\\" or ch == "." or ch in _REGEX_METACHARS:
            break
        chars.append(ch)
        i -= 1
    literal = "".join(reversed(chars)).lower()
    if not literal:
        return None, False
    if i == 1 and body[0] == "^":
        name = literal.lstrip(".")
        if _DOMAIN_SUFFIX_RE.fullmatch(name):
            return name, True
        return None, False
    if literal.startswith("."):
        suffix = literal[1:]
    else:
        # The first label may be a partial literal (e.g. a fixed label tail
        # following a wildcard term): only the labels after it are safe.
        dot = literal.find(".")
        if dot < 0:
            return None, False
        suffix = literal[dot + 1 :]
    if suffix and _DOMAIN_SUFFIX_RE.fullmatch(suffix):
        return suffix, False
    return None, False


class _CompiledEntry:
    """One compiled pattern plus its owning provider.

    ``dotted`` marks regexes that keep the legacy dual search (retry with
    ``name + "."`` after a miss).  Only the generated shape -- ending in the
    optional-dot construct ``\\.?$`` -- provably never needs the retry; any
    hand-built regex (DNSDB-style ``\\.$``, ``[.]$``, plain ``$``, ...) gets
    it, exactly as the legacy per-pattern scan did.
    """

    __slots__ = ("provider_key", "pattern", "regex", "dotted")

    def __init__(self, provider_key: str, regex: str) -> None:
        self.provider_key = provider_key
        self.regex = regex
        self.pattern = re.compile(regex, re.IGNORECASE)
        self.dotted = not regex.endswith(r"\.?$")


def _normalize(fqdn: str) -> str:
    return fqdn.rstrip(".").lower()


def _last_two_labels(suffix: str) -> str:
    """The last two labels of a domain suffix (the whole suffix if shorter)."""
    parts = suffix.rsplit(".", 2)
    if len(parts) <= 2:
        return suffix
    return parts[-2] + "." + parts[-1]


class CompiledPatternSet:
    """Compile-once, suffix-indexed matcher over a provider pattern collection.

    Build it from any mapping of ``provider_key -> [DomainPattern]`` (objects
    exposing ``provider_key`` and ``regex``) via :meth:`from_patterns`, or from
    a :class:`~repro.core.patterns.PatternSet` via :meth:`from_pattern_set`.
    """

    def __init__(
        self,
        patterns: Mapping[str, Sequence[object]],
        lru_size: int = DEFAULT_LRU_SIZE,
    ) -> None:
        self._by_provider: Dict[str, List[_CompiledEntry]] = {}
        self._by_tail: Dict[str, List[_CompiledEntry]] = {}
        self._fallback: List[_CompiledEntry] = []
        self._suffixes: Dict[str, bool] = {}
        for provider_key in sorted(patterns):
            compiled_list = self._by_provider.setdefault(provider_key, [])
            for spec in patterns[provider_key]:
                entry = _CompiledEntry(provider_key, spec.regex)
                compiled_list.append(entry)
                suffix, exact = self._index_key(spec)
                if suffix is None or (not exact and "." not in suffix):
                    # No literal suffix, or a single-label suffix the two-label
                    # tail probe could never reach: linear-scan fallback.
                    self._fallback.append(entry)
                else:
                    # The index is keyed on the suffix's last two labels; any
                    # name matching the (end-anchored) regex necessarily ends
                    # with the full suffix, so it shares that tail.  The regex
                    # itself verifies the full suffix, so rare tail collisions
                    # cost one extra anchored evaluation, never a wrong match.
                    self._by_tail.setdefault(_last_two_labels(suffix), []).append(entry)
                    self._suffixes[suffix] = exact
        self._providers: Tuple[str, ...] = tuple(sorted(self._by_provider))
        self._match_all_cached = lru_cache(maxsize=lru_size)(self._match_all_normalized)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_patterns(
        cls, patterns: Mapping[str, Sequence[object]], lru_size: int = DEFAULT_LRU_SIZE
    ) -> "CompiledPatternSet":
        """Build an engine from a ``provider_key -> [DomainPattern]`` mapping."""
        return cls(patterns, lru_size=lru_size)

    @classmethod
    def from_pattern_set(cls, pattern_set, lru_size: int = DEFAULT_LRU_SIZE) -> "CompiledPatternSet":
        """Build an engine from a :class:`~repro.core.patterns.PatternSet`."""
        return cls(pattern_set.patterns, lru_size=lru_size)

    @classmethod
    def for_providers(cls, providers=None) -> "CompiledPatternSet":
        """Build the engine for the given provider specs (all 16 by default)."""
        from repro.core.patterns import PatternSet

        if providers is None:
            return cls.from_pattern_set(PatternSet.for_providers())
        return cls.from_pattern_set(PatternSet.for_providers(providers))

    @staticmethod
    def _index_key(spec: object) -> Tuple[Optional[str], bool]:
        """Return the (suffix, exact) index key for one pattern spec.

        Generated patterns carry explicit hints (``suffix_hint``/``exact_hint``);
        hand-built patterns are parsed from their regex tail.
        """
        hint = getattr(spec, "suffix_hint", "")
        if hint:
            return _normalize(hint), bool(getattr(spec, "exact_hint", False))
        return _parse_literal_suffix(getattr(spec, "regex"))

    # -- inspection --------------------------------------------------------------

    def providers(self) -> List[str]:
        """Provider keys covered by the engine (sorted)."""
        return list(self._providers)

    def pattern_count(self) -> int:
        """Total number of compiled patterns."""
        return sum(len(entries) for entries in self._by_provider.values())

    def indexed_suffixes(self) -> List[str]:
        """The literal suffixes the index covers (diagnostics)."""
        return sorted(self._suffixes)

    def cache_info(self):
        """The LRU statistics of the single-lookup cache."""
        return self._match_all_cached.cache_info()

    # -- matching ----------------------------------------------------------------

    _EMPTY: Tuple[str, ...] = ()

    def _match_all_normalized(self, name: str) -> Tuple[str, ...]:
        """All provider keys matching an already-normalized name (sorted).

        One lookup = slice the name's last two labels, probe the tail index,
        evaluate the (typically one) anchored regex registered there.
        """
        last_dot = name.rfind(".")
        if last_dot == -1:
            tail = name
        else:
            second_dot = name.rfind(".", 0, last_dot)
            tail = name if second_dot == -1 else name[second_dot + 1 :]
        bucket = self._by_tail.get(tail)
        found: Optional[List[str]] = None
        if bucket is not None:
            for entry in bucket:
                if entry.pattern.search(name) or (
                    entry.dotted and entry.pattern.search(name + ".")
                ):
                    if found is None:
                        found = [entry.provider_key]
                    elif entry.provider_key not in found:
                        found.append(entry.provider_key)
        if self._fallback:
            for entry in self._fallback:
                if entry.pattern.search(name) or (
                    entry.dotted and entry.pattern.search(name + ".")
                ):
                    if found is None:
                        found = [entry.provider_key]
                    elif entry.provider_key not in found:
                        found.append(entry.provider_key)
        if found is None:
            return self._EMPTY
        if len(found) > 1:
            found.sort()
        return tuple(found)

    def match_all(self, fqdn: str) -> Tuple[str, ...]:
        """Every provider whose patterns match the FQDN (sorted keys)."""
        return self._match_all_cached(_normalize(fqdn))

    def match(self, fqdn: str) -> Optional[str]:
        """The first (alphabetical) provider matching the FQDN, or None."""
        matched = self._match_all_cached(_normalize(fqdn))
        return matched[0] if matched else None

    def matches_any(self, fqdn: str) -> bool:
        """True when any provider's pattern matches the FQDN."""
        return bool(self._match_all_cached(_normalize(fqdn)))

    def matches_provider(self, fqdn: str, provider_key: str) -> bool:
        """True when the FQDN matches any pattern of one provider."""
        name = _normalize(fqdn)
        return any(
            entry.pattern.search(name) or (entry.dotted and entry.pattern.search(name + "."))
            for entry in self._by_provider.get(provider_key, ())
        )

    def match_many(self, fqdns: Iterable[str]) -> Dict[str, Optional[str]]:
        """Classify an iterable of FQDNs in bulk.

        Returns ``{input name -> provider key or None}`` with one entry per
        distinct input string.  Normalization and cache probing are shared
        across duplicates, which dominate real corpora.

        Instrumentation is per *bulk call*, not per name: when metrics are
        enabled the call records ``matcher.bulk_lookups`` / ``matcher.bulk_names``
        counters and a ``matcher.bulk_seconds`` observation — two dict updates
        amortized over the whole iterable, invisible next to the regex work.
        """
        if not obs_metrics.enabled():
            return self._match_many_impl(fqdns)
        start = time.perf_counter()
        results = self._match_many_impl(fqdns)
        obs_metrics.inc("matcher.bulk_lookups")
        obs_metrics.inc("matcher.bulk_names", float(len(results)))
        obs_metrics.observe("matcher.bulk_seconds", time.perf_counter() - start)
        return results

    def _match_many_impl(self, fqdns: Iterable[str]) -> Dict[str, Optional[str]]:
        results: Dict[str, Optional[str]] = {}
        normalized_memo: Dict[str, Optional[str]] = {}
        # The bulk path keeps its own memo for the whole iterable, so it calls
        # the raw implementation directly instead of going through (and
        # churning) the bounded LRU of the single-lookup path.
        impl = self._match_all_normalized
        for raw in fqdns:
            if raw in results:
                continue
            name = raw.rstrip(".").lower()
            if name in normalized_memo:
                results[raw] = normalized_memo[name]
                continue
            matched = impl(name)
            value = matched[0] if matched else None
            normalized_memo[name] = value
            results[raw] = value
        return results
