"""Stability of the discovered backend IP sets across days (Section 4.1, Figure 4).

Daily discovery runs yield one IP set per provider per day.  Taking the first day
as the reference, the comparison against a later day splits the union of both sets
into addresses present in both, addresses only in the later snapshot (newly
discovered), and addresses only in the reference.  The paper compares the reference
(Feb 28) against the next day, three days later, and six days later and finds
meaningful churn only for providers that (partly) rely on shared public cloud
infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.core.discovery import DiscoveryResult


@dataclass(frozen=True)
class StabilityComparison:
    """Comparison of one provider's IP sets between the reference day and another day."""

    provider_key: str
    reference_day: date
    compared_day: date
    in_both: int
    only_current: int
    only_reference: int

    @property
    def union_size(self) -> int:
        """Size of the union of both sets."""
        return self.in_both + self.only_current + self.only_reference

    @property
    def stable_fraction(self) -> float:
        """Fraction of the union present in both snapshots."""
        if self.union_size == 0:
            return 1.0
        return self.in_both / self.union_size

    @property
    def churn_fraction(self) -> float:
        """Fraction of the union that changed (1 - stable fraction)."""
        return 1.0 - self.stable_fraction


def compare_days(
    provider_key: str,
    reference: DiscoveryResult,
    current: DiscoveryResult,
) -> StabilityComparison:
    """Compare one provider's discovered set between two daily results."""
    reference_ips = reference.ips(provider_key)
    current_ips = current.ips(provider_key)
    return StabilityComparison(
        provider_key=provider_key,
        reference_day=reference.day or date.min,
        compared_day=current.day or date.min,
        in_both=len(reference_ips & current_ips),
        only_current=len(current_ips - reference_ips),
        only_reference=len(reference_ips - current_ips),
    )


def stability_analysis(
    daily_results: Mapping[date, DiscoveryResult],
    offsets: Sequence[int] = (1, 3, 6),
    providers: Optional[Iterable[str]] = None,
) -> List[StabilityComparison]:
    """Compare the first day against the days at the given offsets, per provider.

    Offsets that fall outside the available days are skipped, so shorter test
    scenarios still produce a (shorter) analysis.
    """
    if not daily_results:
        return []
    days = sorted(daily_results)
    reference_day = days[0]
    reference = daily_results[reference_day]
    if providers is None:
        provider_keys: Set[str] = set(reference.providers())
        for result in daily_results.values():
            provider_keys.update(result.providers())
    else:
        provider_keys = set(providers)
    comparisons: List[StabilityComparison] = []
    for offset in offsets:
        if offset >= len(days):
            continue
        current = daily_results[days[offset]]
        for provider_key in sorted(provider_keys):
            comparisons.append(compare_days(provider_key, reference, current))
    return comparisons


def max_churn_by_provider(comparisons: Iterable[StabilityComparison]) -> Dict[str, float]:
    """Return the maximum churn fraction observed per provider."""
    churn: Dict[str, float] = {}
    for comparison in comparisons:
        current = churn.get(comparison.provider_key, 0.0)
        churn[comparison.provider_key] = max(current, comparison.churn_fraction)
    return churn
