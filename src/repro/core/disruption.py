"""Disruption analyses (Section 6, Figures 15 and 16).

Three questions are answered:

* **What did the AWS us-east-1 outage do to IoT traffic?**  For the affected
  provider, the downstream volume and the number of active subscriber lines are
  split by serving region group (all regions / US-east regions / EU regions) and
  compared against the minimum of the previous week, showing the >14.5% traffic
  drop with a barely-changed subscriber count.
* **Could routing incidents have disrupted the backends?**  Every BGP leak,
  possible hijack, and AS outage of the study week is checked against the
  discovered backend prefixes and origin ASes.
* **Could blocklists make backends unreachable?**  Every discovered address is
  checked against the aggregated blocklists.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.discovery import DiscoveryResult
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import FlowRecord
from repro.netmodel.geo import CONTINENT_EUROPE
from repro.routing.bgp import RoutingTable
from repro.routing.events import BgpEvent, BgpEventFeed, EventKind
from repro.security.blocklists import BlocklistAggregate, BlocklistMatch
from repro.simulation.clock import StudyPeriod

#: Region-group labels used in Figures 15 and 16.
GROUP_ALL = "All"
GROUP_US_EAST = "US-East"
GROUP_EU = "EU"

#: Analyses accept plain record sequences or an already-built columnar table.
Flows = Union[FlowTable, Sequence[FlowRecord]]


@dataclass
class OutageImpactReport:
    """Hourly traffic and subscriber-line series around an outage, per region group."""

    provider_key: str
    traffic_series: Dict[str, Dict[datetime, float]]
    line_series: Dict[str, Dict[datetime, int]]
    outage_window: Tuple[datetime, datetime]
    previous_week_min_traffic: Dict[str, float]
    previous_week_min_lines: Dict[str, int]

    def traffic_during_outage(self, group: str) -> List[float]:
        """Hourly traffic of a group during the outage window."""
        start, end = self.outage_window
        series = self.traffic_series.get(group, {})
        return [value for when, value in series.items() if start <= when < end]

    def min_traffic_during_outage(self, group: str) -> float:
        """Minimum hourly traffic of a group during the outage window."""
        values = self.traffic_during_outage(group)
        return min(values) if values else 0.0

    def drop_vs_previous_week(self, group: str) -> float:
        """Relative drop of the outage-window minimum below the previous week's minimum."""
        baseline = self.previous_week_min_traffic.get(group, 0.0)
        if baseline <= 0:
            return 0.0
        low = self.min_traffic_during_outage(group)
        return max(0.0, 1.0 - low / baseline)

    def line_drop_vs_previous_week(self, group: str) -> float:
        """Relative drop of the outage-window minimum subscriber count below baseline."""
        baseline = self.previous_week_min_lines.get(group, 0)
        if baseline <= 0:
            return 0.0
        start, end = self.outage_window
        series = self.line_series.get(group, {})
        values = [value for when, value in series.items() if start <= when < end]
        if not values:
            return 0.0
        return max(0.0, 1.0 - min(values) / baseline)


def outage_impact(
    flows: Flows,
    provider_key: str,
    outage_window: Tuple[datetime, datetime],
    baseline_window: Optional[Tuple[datetime, datetime]] = None,
    sampling_ratio: int = 1,
) -> OutageImpactReport:
    """Compute the Figure 15/16 series for one provider.

    ``baseline_window`` defaults to the week preceding the outage window's start;
    its per-group minimum (over hours that have traffic) provides the red reference
    line of the figures.  Hours during the daily quiet period are naturally part of
    the minimum, as in the paper.

    The three region groups are row masks over one shared timestamp grouping,
    so all six series run on the grouped-aggregation kernels against a single
    cached :class:`~repro.flows.kernels.GroupIndex`.  Sampling correction
    multiplies the per-hour sums (sum-then-scale, as in
    :func:`~repro.core.traffic.volume_timeseries`).
    """
    start, end = outage_window
    if baseline_window is None:
        # Default baseline: the four days preceding the outage day, compared at the
        # same hours of the day (cf. the red reference lines in Figures 15 and 16).
        from datetime import timedelta

        baseline_window = (start.replace(hour=0) - timedelta(days=4), start.replace(hour=0))
    table = FlowTable.ensure(flows)
    # Classify once per pool entry, then expand to row masks via the codes.
    provider_pool = table.pool("provider_key")
    is_provider = bytearray(1 if key == provider_key else 0 for key in provider_pool)
    region_pool = table.pool("server_region")
    is_us_east = bytearray(
        1 if region.startswith("us-east") else 0 for region in region_pool
    )
    continent_pool = table.pool("server_continent")
    is_eu = bytearray(
        1 if continent == CONTINENT_EUROPE else 0 for continent in continent_pool
    )
    provider_codes = table.codes("provider_key")
    region_codes = table.codes("server_region")
    continent_codes = table.codes("server_continent")
    all_mask = bytearray(map(is_provider.__getitem__, provider_codes))
    # us-east wins over EU for flows matching both (the paper's region split).
    us_east_mask = bytearray(
        1 if keep and is_us_east[region] else 0
        for keep, region in zip(all_mask, region_codes)
    )
    eu_mask = bytearray(
        1 if keep and is_eu[continent] and not is_us_east[region] else 0
        for keep, region, continent in zip(all_mask, region_codes, continent_codes)
    )
    masks = {GROUP_ALL: all_mask, GROUP_US_EAST: us_east_mask, GROUP_EU: eu_mask}
    traffic_series: Dict[str, Dict[datetime, float]] = {}
    line_series: Dict[str, Dict[datetime, int]] = {}
    for group, group_mask in masks.items():
        sums = table.group_sums(("timestamp",), ("bytes_down",), mask=group_mask)
        counts = table.group_distinct_count(
            ("timestamp",), "subscriber_id", mask=group_mask
        )
        traffic_series[group] = {
            when: values[0] * sampling_ratio for when, values in sorted(sums.items())
        }
        line_series[group] = dict(sorted(counts.items()))
    baseline_start, baseline_end = baseline_window
    # The baseline minimum is taken over the same hours of the day as the outage
    # window, so diurnal lows do not mask the drop (as in Figures 15 and 16).
    outage_hours = {h % 24 for h in range(start.hour, start.hour + max(1, int((end - start).total_seconds() // 3600)))}
    previous_week_min_traffic: Dict[str, float] = {}
    previous_week_min_lines: Dict[str, int] = {}
    for group in (GROUP_ALL, GROUP_US_EAST, GROUP_EU):
        baseline_traffic = [
            value
            for when, value in traffic_series[group].items()
            if baseline_start <= when < baseline_end and when.hour in outage_hours and value > 0
        ]
        baseline_lines = [
            value
            for when, value in line_series[group].items()
            if baseline_start <= when < baseline_end and when.hour in outage_hours and value > 0
        ]
        previous_week_min_traffic[group] = min(baseline_traffic) if baseline_traffic else 0.0
        previous_week_min_lines[group] = min(baseline_lines) if baseline_lines else 0
    return OutageImpactReport(
        provider_key=provider_key,
        traffic_series=traffic_series,
        line_series=line_series,
        outage_window=outage_window,
        previous_week_min_traffic=previous_week_min_traffic,
        previous_week_min_lines=previous_week_min_lines,
    )


# ---------------------------------------------------------------------------------
# Potential disruptions (Section 6.2)
# ---------------------------------------------------------------------------------


@dataclass
class BgpExposureReport:
    """Exposure of the discovered backends to routing incidents."""

    counts_by_kind: Dict[EventKind, int]
    affecting_events: List[BgpEvent] = field(default_factory=list)

    @property
    def any_backend_affected(self) -> bool:
        """True when at least one incident touched a backend prefix or AS."""
        return bool(self.affecting_events)


def bgp_exposure(
    feed: BgpEventFeed,
    result: DiscoveryResult,
    routing_table: RoutingTable,
    period: StudyPeriod,
) -> BgpExposureReport:
    """Check every routing incident of the period against the backend footprint."""
    backend_asns: Set[int] = set()
    backend_prefixes: Set[str] = set()
    for ip in result.ips():
        announcement = routing_table.lookup(ip)
        if announcement is not None:
            backend_asns.add(announcement.origin_asn)
            backend_prefixes.add(announcement.prefix)
    counts = feed.count_by_kind(period.start, period.end)
    affecting = feed.events_affecting(
        backend_asns, sorted(backend_prefixes), period.start, period.end
    )
    return BgpExposureReport(counts_by_kind=counts, affecting_events=affecting)


@dataclass
class BlocklistExposureReport:
    """Backend addresses appearing on blocklists, grouped by provider."""

    matches_by_provider: Dict[str, List[BlocklistMatch]] = field(default_factory=dict)

    @property
    def total_listed_ips(self) -> int:
        """Number of distinct backend addresses found on any list."""
        return len(
            {match.ip for matches in self.matches_by_provider.values() for match in matches}
        )

    def providers_affected(self) -> List[str]:
        """Providers with at least one listed address."""
        return sorted(key for key, matches in self.matches_by_provider.items() if matches)

    def category_counts(self) -> Dict[str, int]:
        """Distinct listed addresses per blocklist category."""
        by_category: Dict[str, Set[str]] = defaultdict(set)
        for matches in self.matches_by_provider.values():
            for match in matches:
                by_category[match.category].add(match.ip)
        return {category: len(ips) for category, ips in sorted(by_category.items())}


def blocklist_exposure(
    blocklists: BlocklistAggregate, result: DiscoveryResult
) -> BlocklistExposureReport:
    """Check every discovered backend address against the aggregated blocklists."""
    report = BlocklistExposureReport()
    for provider_key in result.providers():
        matches: List[BlocklistMatch] = []
        for ip in sorted(result.ips(provider_key)):
            matches.extend(blocklists.check(ip))
        if matches:
            report.matches_by_provider[provider_key] = matches
    return report
