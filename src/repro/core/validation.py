"""Validation of discovered server IPs (Section 3.4).

Two independent checks are performed:

* **Shared vs. dedicated IPs.**  For every candidate address, all domain names
  observed resolving to it (via passive DNS) are counted; if the number of names
  *not* matching the provider's IoT patterns exceeds a threshold, the address also
  hosts non-IoT services (CDN frontends, multi-service load balancers) and is
  excluded from the traffic analyses, which only consider infrastructure used
  exclusively for IoT.

* **Ground truth.**  A few providers publish (parts of) their backend address
  ranges.  Discovered addresses are compared against those ranges: every discovered
  address must fall inside a published range (precision), and the fraction of the
  published, *actively used* space that was discovered bounds the traffic
  underestimation (the paper reports <1%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.discovery import DiscoveredIP, DiscoveryResult
from repro.core.patterns import PatternSet
from repro.dns.passive_db import PassiveDnsDatabase
from repro.netmodel.addressing import ip_in_prefix

#: Default threshold on the number of non-IoT domains before an IP counts as shared.
DEFAULT_SHARED_THRESHOLD = 10


@dataclass(frozen=True)
class SharedIpRecord:
    """An address excluded because it also serves non-IoT domains."""

    ip: str
    provider_key: str
    non_iot_domain_count: int


@dataclass
class SharedIpClassification:
    """Outcome of the shared-vs-dedicated analysis."""

    threshold: int
    dedicated: DiscoveryResult
    shared: List[SharedIpRecord] = field(default_factory=list)

    def shared_ips(self, provider_key: Optional[str] = None) -> Set[str]:
        """Return the shared addresses (optionally for one provider)."""
        return {
            record.ip
            for record in self.shared
            if provider_key is None or record.provider_key == provider_key
        }

    def shared_count(self) -> int:
        """Number of addresses classified as shared."""
        return len(self.shared)


def classify_shared_ips(
    result: DiscoveryResult,
    passive_dns: PassiveDnsDatabase,
    pattern_set: Optional[PatternSet] = None,
    threshold: int = DEFAULT_SHARED_THRESHOLD,
    since: Optional[date] = None,
    until: Optional[date] = None,
) -> SharedIpClassification:
    """Split discovered addresses into dedicated-IoT and shared addresses.

    Mirrors the methodology of Saidi et al. / Iordanou et al. referenced by the
    paper: count, per candidate address, the domains resolving to it that do not
    match the IoT domain patterns, and flag the address when the count exceeds the
    threshold.
    """
    pattern_set = pattern_set or PatternSet.for_providers()
    engine = pattern_set.engine()
    dedicated = DiscoveryResult(day=result.day)
    shared: List[SharedIpRecord] = []
    for record in result.records():
        names = passive_dns.domains_for_ip(record.ip, since=since, until=until)
        non_iot = [name for name in names if not engine.matches_any(name)]
        if len(non_iot) > threshold:
            shared.append(
                SharedIpRecord(
                    ip=record.ip,
                    provider_key=record.provider_key,
                    non_iot_domain_count=len(non_iot),
                )
            )
            continue
        dedicated.add(
            DiscoveredIP(
                ip=record.ip,
                provider_key=record.provider_key,
                sources=set(record.sources),
                domains=set(record.domains),
            )
        )
    return SharedIpClassification(threshold=threshold, dedicated=dedicated, shared=shared)


@dataclass(frozen=True)
class GroundTruthReport:
    """Comparison of discovered addresses against a provider's published ranges."""

    provider_key: str
    published_prefixes: Tuple[str, ...]
    published_address_count: int
    discovered_count: int
    discovered_inside: int
    discovered_outside: int

    @property
    def precision(self) -> float:
        """Fraction of discovered addresses that fall inside published ranges."""
        if self.discovered_count == 0:
            return 1.0
        return self.discovered_inside / self.discovered_count

    @property
    def all_inside(self) -> bool:
        """True when every discovered address is inside a published range."""
        return self.discovered_outside == 0


def validate_against_ground_truth(
    result: DiscoveryResult,
    provider_key: str,
    published_prefixes: Sequence[str],
) -> GroundTruthReport:
    """Check that discovered addresses fall within the provider's published ranges."""
    discovered = sorted(result.ips(provider_key))
    inside = 0
    for ip in discovered:
        if any(ip_in_prefix(ip, prefix) for prefix in published_prefixes):
            inside += 1
    published_count = 0
    for prefix in published_prefixes:
        # Count addresses conservatively (network size), as the paper does when it
        # reports "more than 12,000 IPv4 addresses" for Microsoft's prefixes.
        from repro.netmodel.addressing import parse_network

        published_count += parse_network(prefix).num_addresses
    return GroundTruthReport(
        provider_key=provider_key,
        published_prefixes=tuple(published_prefixes),
        published_address_count=published_count,
        discovered_count=len(discovered),
        discovered_inside=inside,
        discovered_outside=len(discovered) - inside,
    )


@dataclass(frozen=True)
class TrafficCoverageReport:
    """How much of a provider's actually-active backend traffic the discovery covers."""

    provider_key: str
    active_server_ips: int
    active_discovered: int
    missed_ips: int
    traffic_bytes_total: float
    traffic_bytes_missed: float

    @property
    def underestimation_fraction(self) -> float:
        """Fraction of the provider's traffic volume attributed to missed servers."""
        if self.traffic_bytes_total <= 0:
            return 0.0
        return self.traffic_bytes_missed / self.traffic_bytes_total


def traffic_coverage(
    result: DiscoveryResult,
    provider_key: str,
    flows: Iterable,
) -> TrafficCoverageReport:
    """Quantify the traffic underestimation caused by undiscovered server IPs.

    ``flows`` is an iterable of :class:`repro.flows.netflow.FlowRecord`; only flows
    of the given provider are considered.  An "active" server IP is one that
    exchanges traffic with at least one subscriber line during the period.
    """
    discovered = result.ips(provider_key)
    bytes_per_ip: Dict[str, float] = {}
    for flow in flows:
        if flow.provider_key != provider_key:
            continue
        bytes_per_ip[flow.server_ip] = bytes_per_ip.get(flow.server_ip, 0.0) + flow.total_bytes
    total = sum(bytes_per_ip.values())
    missed_ips = {ip for ip in bytes_per_ip if ip not in discovered}
    missed_bytes = sum(bytes_per_ip[ip] for ip in missed_ips)
    return TrafficCoverageReport(
        provider_key=provider_key,
        active_server_ips=len(bytes_per_ip),
        active_discovered=len(bytes_per_ip) - len(missed_ips),
        missed_ips=len(missed_ips),
        traffic_bytes_total=total,
        traffic_bytes_missed=missed_bytes,
    )
