"""Domain-pattern generation (Section 3.2, Appendix A).

For every provider, the methodology derives regular expressions that match exactly
the backend domain names described in the provider's documentation.  The structure
is ``<subdomain>.<region>.<second-level-domain>``:

* the ``<subdomain>`` is replaced by a wildcard when it carries a per-customer
  identifier, or by an alternation of documented service labels;
* the ``<region>`` is replaced by a regex term matching the provider's region
  naming scheme (cloud region codes, airport codes, or documented zone labels);
* the ``<second-level-domain>`` is kept literal.

The same patterns are translated into the query formats of the external services
the paper uses: DNSDB *flexible search* (regex) and *basic search* (left-hand
wildcard), and Censys certificate string searches.

Matching is delegated to the suffix-indexed, compile-once engine in
:mod:`repro.core.matcher`; the dataclasses here stay the declarative source of
truth (regex text plus the suffix hints the engine indexes on).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.providers import PROVIDERS, ProviderSpec
from repro.dns.names import (
    REGION_STYLE_AIRPORT,
    REGION_STYLE_CODE,
    REGION_STYLE_NONE,
    REGION_STYLE_ZONE,
    SUBDOMAIN_CUSTOMER,
    SUBDOMAIN_FIXED,
    SUBDOMAIN_SERVICE,
    DomainNamingScheme,
)

#: Regex term matching a cloud-style region code such as ``eu-central-1``.
REGION_CODE_TERM = r"[a-z]{2,}(?:-[a-z0-9]+)+"
#: Regex term matching an airport code such as ``fra``.
AIRPORT_CODE_TERM = r"[a-z]{3}"
#: Regex term matching a customer identifier / unique subdomain.
CUSTOMER_TERM = r"[a-z0-9][a-z0-9-]*"


@dataclass(frozen=True)
class DomainPattern:
    """A compiled regular expression matching one provider's backend domains.

    ``suffix_hint`` carries the literal registrable suffix the regex is anchored
    on (``exact_hint`` marks full-FQDN patterns); the suffix index of
    :class:`repro.core.matcher.CompiledPatternSet` uses the hints to place the
    pattern without re-parsing the regex.
    """

    provider_key: str
    regex: str
    description: str = ""
    suffix_hint: str = ""
    exact_hint: bool = False
    _compiled: Optional[re.Pattern] = field(
        default=None, init=False, repr=False, compare=False
    )

    def compiled(self) -> re.Pattern:
        """Return the compiled pattern (case-insensitive), compiling it once."""
        if self._compiled is None:
            object.__setattr__(self, "_compiled", re.compile(self.regex, re.IGNORECASE))
        return self._compiled

    def matches(self, fqdn: str) -> bool:
        """Return True when the FQDN (with or without trailing dot) matches.

        Every generated regex ends in ``\\.?$``, for which a single anchored
        search on the dot-stripped name provably covers both spellings.  Any
        other (hand-built) regex keeps the legacy dual search: one retry
        against the dotted spelling after a miss.
        """
        name = fqdn.rstrip(".").lower()
        pattern = self.compiled()
        if pattern.search(name):
            return True
        if self.regex.endswith(r"\.?$"):
            return False
        return pattern.search(name + ".") is not None


def _escape_sld(second_level_domain: str) -> str:
    return re.escape(second_level_domain.rstrip("."))


def _region_term(scheme: DomainNamingScheme) -> Optional[str]:
    """Return the regex term for the scheme's region part, or None when absent."""
    if scheme.region_style == REGION_STYLE_CODE:
        return REGION_CODE_TERM
    if scheme.region_style == REGION_STYLE_AIRPORT:
        return AIRPORT_CODE_TERM
    if scheme.region_style == REGION_STYLE_ZONE:
        if not scheme.zone_labels:
            return None
        return "(?:" + "|".join(re.escape(label) for label in scheme.zone_labels) + ")"
    return None


def build_patterns(spec: ProviderSpec) -> List[DomainPattern]:
    """Build the domain regular expressions for one provider.

    The construction mirrors Section 3.2: wildcards replace unique subdomains,
    region terms replace the region labels, and the second-level domain stays
    literal.  Fixed-FQDN providers (e.g. Google) get one exact pattern per FQDN.
    """
    scheme = spec.naming
    sld = _escape_sld(scheme.second_level_domain)
    patterns: List[DomainPattern] = []

    if scheme.subdomain_kind == SUBDOMAIN_FIXED:
        for fqdn in scheme.fixed_fqdns:
            name = fqdn.rstrip(".")
            regex = r"^" + re.escape(name) + r"\.?$"
            patterns.append(
                DomainPattern(
                    spec.key,
                    regex,
                    f"fixed FQDN {fqdn} ({spec.name})",
                    suffix_hint=name.lower(),
                    exact_hint=True,
                )
            )
        return patterns

    region = _region_term(scheme)
    region_part = rf"(?:\.{region})?" if region else ""
    suffix_hint = scheme.second_level_domain.rstrip(".").lower()

    if scheme.subdomain_kind == SUBDOMAIN_SERVICE:
        labels = "|".join(re.escape(label) for label in scheme.service_labels)
        regex = (
            rf"^(?:{CUSTOMER_TERM}\.)?(?:{labels})"
            rf"{region_part}\.{sld}\.?$"
        )
        patterns.append(
            DomainPattern(
                spec.key,
                regex,
                f"service labels ({', '.join(scheme.service_labels)}) under {scheme.second_level_domain}",
                suffix_hint=suffix_hint,
            )
        )
        return patterns

    # Customer-style subdomains: a unique identifier, optionally followed by the
    # documented service label(s), optionally followed by a region label.
    if scheme.service_labels:
        labels = "|".join(re.escape(label) for label in scheme.service_labels)
        regex = rf"^{CUSTOMER_TERM}\.(?:{labels}){region_part}\.{sld}\.?$"
        description = (
            f"customer id + service label ({', '.join(scheme.service_labels)}) "
            f"under {scheme.second_level_domain}"
        )
    else:
        regex = rf"^{CUSTOMER_TERM}{region_part}\.{sld}\.?$"
        description = f"customer id under {scheme.second_level_domain}"
    patterns.append(DomainPattern(spec.key, regex, description, suffix_hint=suffix_hint))
    return patterns


def dnsdb_flex_query(spec: ProviderSpec) -> str:
    """Return the DNSDB flexible-search regex for a provider (Appendix A style).

    DNSDB flexible search matches owner names written with a trailing dot, so the
    anchored ``$`` follows an escaped dot.
    """
    patterns = build_patterns(spec)
    # Re-anchor the first pattern for trailing-dot names, as DNSDB stores them.
    regex = patterns[0].regex
    if regex.endswith(r"\.?$"):
        regex = regex[: -len(r"\.?$")] + r"\.$"
    return regex + "/A"


def dnsdb_basic_queries(spec: ProviderSpec) -> List[str]:
    """Return DNSDB basic-search (left-hand wildcard) queries for a provider."""
    scheme = spec.naming
    if scheme.subdomain_kind == SUBDOMAIN_FIXED:
        return [f"rrset/name/{fqdn.rstrip('.')}./A" for fqdn in scheme.fixed_fqdns]
    return [f"rrset/name/*.{scheme.second_level_domain.rstrip('.')}./A"]


def censys_string_queries(spec: ProviderSpec, region_codes: Sequence[str] = ()) -> List[str]:
    """Return Censys certificate string-search queries for a provider.

    When the provider embeds region codes in names, one query per region is
    generated (as in Appendix A for Amazon); otherwise a single wildcard query on
    the second-level domain is returned.
    """
    scheme = spec.naming
    if scheme.subdomain_kind == SUBDOMAIN_FIXED:
        return list(scheme.fixed_fqdns)
    label = scheme.service_labels[0] if scheme.service_labels else None
    queries: List[str] = []
    if scheme.region_style == REGION_STYLE_CODE and region_codes and label:
        for region in region_codes:
            queries.append(f"*.{label}.{region}.{scheme.second_level_domain}")
    elif label and scheme.subdomain_kind == SUBDOMAIN_SERVICE:
        for service in scheme.service_labels:
            queries.append(f"*.{service}.{scheme.second_level_domain}")
    else:
        queries.append(f"*.{scheme.second_level_domain}")
    return queries


@dataclass
class PatternSet:
    """The full pattern collection of the study, indexed by provider.

    All lookups delegate to a lazily built
    :class:`repro.core.matcher.CompiledPatternSet`: patterns are compiled once,
    indexed by registrable-suffix, and single lookups are LRU-cached.  The
    engine is rebuilt automatically when the ``patterns`` mapping changes.
    """

    patterns: Dict[str, List[DomainPattern]] = field(default_factory=dict)
    _engine: Optional["CompiledPatternSet"] = field(
        default=None, init=False, repr=False, compare=False
    )
    _engine_fingerprint: Optional[Tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def for_providers(cls, providers: Iterable[ProviderSpec] = PROVIDERS) -> "PatternSet":
        """Build the pattern set for the given providers (all 16 by default)."""
        pattern_set = cls()
        for spec in providers:
            pattern_set.patterns[spec.key] = build_patterns(spec)
        return pattern_set

    def providers(self) -> List[str]:
        """Return the provider keys covered by the set."""
        return sorted(self.patterns)

    def fingerprint(self) -> str:
        """A stable SHA-256 digest of the pattern collection.

        Covers every field that defines a pattern's matching behaviour (and its
        description, so a round-tripped set reproduces the digest).  The
        artifact store keys persisted discovery results on this fingerprint:
        results classified under one pattern set can never be served to a
        pipeline running a different one.
        """
        import hashlib

        payload = "\x1e".join(
            "\x1f".join(
                (
                    key,
                    pattern.regex,
                    pattern.description,
                    pattern.suffix_hint,
                    "1" if pattern.exact_hint else "0",
                )
            )
            for key in sorted(self.patterns)
            for pattern in self.patterns[key]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def patterns_for(self, provider_key: str) -> List[DomainPattern]:
        """Return the patterns of one provider."""
        return list(self.patterns.get(provider_key, []))

    def engine(self) -> "CompiledPatternSet":
        """Return the compiled matching engine for the current patterns.

        The engine is cached; a cheap fingerprint over the pattern collection
        detects mutation of :attr:`patterns` and triggers a rebuild, so the
        public mutable mapping keeps working as before.
        """
        from repro.core.matcher import CompiledPatternSet

        fingerprint = tuple(
            (key, tuple(patterns)) for key, patterns in self.patterns.items()
        )
        if self._engine is None or fingerprint != self._engine_fingerprint:
            self._engine = CompiledPatternSet.from_patterns(self.patterns)
            self._engine_fingerprint = fingerprint
        return self._engine

    def match(self, fqdn: str) -> Optional[str]:
        """Return the provider key whose pattern matches the FQDN, or None.

        Provider domains are designed to be mutually exclusive (each provider has
        its own registrable domain), so the first match is returned; ties are
        broken alphabetically for determinism, as in the legacy linear scan.
        """
        return self.engine().match(fqdn)

    def match_all(self, fqdn: str) -> Tuple[str, ...]:
        """Return every provider key whose patterns match the FQDN (sorted)."""
        return self.engine().match_all(fqdn)

    def match_many(self, fqdns: Iterable[str]) -> Dict[str, Optional[str]]:
        """Bulk-classify FQDNs; see :meth:`CompiledPatternSet.match_many`."""
        return self.engine().match_many(fqdns)

    def matches_provider(self, fqdn: str, provider_key: str) -> bool:
        """Return True when the FQDN matches any pattern of the provider."""
        return self.engine().matches_provider(fqdn, provider_key)

    def matches_any(self, fqdn: str) -> bool:
        """Return True when the FQDN matches any provider's pattern."""
        return self.engine().matches_any(fqdn)


def appendix_table(providers: Iterable[ProviderSpec] = PROVIDERS) -> List[Dict[str, str]]:
    """Return rows equivalent to Appendix A's Table 2 (provider, source, API, query)."""
    rows: List[Dict[str, str]] = []
    for spec in sorted(providers, key=lambda s: s.name):
        rows.append(
            {
                "provider": spec.name,
                "data_source": "DNSDB",
                "api_type": "Flexible Search",
                "query": dnsdb_flex_query(spec),
            }
        )
        for query in dnsdb_basic_queries(spec):
            rows.append(
                {
                    "provider": spec.name,
                    "data_source": "DNSDB",
                    "api_type": "Basic Search",
                    "query": query,
                }
            )
        for query in censys_string_queries(spec):
            rows.append(
                {
                    "provider": spec.name,
                    "data_source": "Censys",
                    "api_type": "String Search",
                    "query": query,
                }
            )
    return rows
