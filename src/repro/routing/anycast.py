"""Anycast catchment model.

At least two providers in the study (Amazon IoT via the Global Accelerator service,
and Siemens) use anycast, which maps client requests to a nearby site
(Section 4.3).  The model here is a catchment table: given the client's continent,
return the serving location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netmodel.geo import Location


@dataclass
class AnycastGroup:
    """An anycast deployment: one address block announced from several sites."""

    name: str
    sites: Dict[str, Location] = field(default_factory=dict)

    def add_site(self, location: Location) -> None:
        """Register a site; the first site per continent becomes its catchment."""
        self.sites.setdefault(location.continent, location)

    def catchment(self, client_continent: str) -> Optional[Location]:
        """Return the site serving clients on a continent.

        Falls back to an arbitrary-but-deterministic site (lexicographically first
        continent key) when the group has no site on the client's continent, which
        mirrors how anycast routes to the nearest announced site globally.
        """
        if client_continent in self.sites:
            return self.sites[client_continent]
        if not self.sites:
            return None
        fallback_key = sorted(self.sites)[0]
        return self.sites[fallback_key]

    def continents(self) -> List[str]:
        """Return the continents with at least one site."""
        return sorted(self.sites)
