"""Prefix announcements and a longest-prefix-match routing table.

The paper maps each backend IP to its announced prefix and origin AS using the
RouteViews prefix-to-AS dataset (Section 4.3).  The routing table here provides the
same lookup surface: insert announcements, then look up the most specific covering
prefix for an address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netmodel.addressing import IPLike, NetLike, parse_ip, parse_network


@dataclass(frozen=True)
class Announcement:
    """A BGP prefix announcement."""

    prefix: str
    origin_asn: int
    origin_organization: str = ""

    def network(self):
        """Return the parsed network object for the prefix."""
        return parse_network(self.prefix)


class RoutingTable:
    """A longest-prefix-match table over announcements."""

    def __init__(self) -> None:
        self._announcements: List[Tuple[object, Announcement]] = []
        self._seen: Dict[Tuple[str, int], Announcement] = {}

    def announce(self, announcement: Announcement) -> None:
        """Insert an announcement; duplicate (prefix, origin) pairs are ignored."""
        key = (str(parse_network(announcement.prefix)), announcement.origin_asn)
        if key in self._seen:
            return
        self._seen[key] = announcement
        self._announcements.append((announcement.network(), announcement))

    def announce_many(self, announcements: Iterable[Announcement]) -> None:
        """Insert several announcements."""
        for announcement in announcements:
            self.announce(announcement)

    def lookup(self, ip: IPLike) -> Optional[Announcement]:
        """Return the most specific announcement covering an address, if any."""
        address = parse_ip(ip)
        best: Optional[Announcement] = None
        best_length = -1
        for network, announcement in self._announcements:
            if network.version != address.version:
                continue
            if address in network and network.prefixlen > best_length:
                best = announcement
                best_length = network.prefixlen
        return best

    def origin_asn(self, ip: IPLike) -> Optional[int]:
        """Return the origin AS number for an address, if covered."""
        announcement = self.lookup(ip)
        return announcement.origin_asn if announcement else None

    def announcements(self) -> List[Announcement]:
        """Return every announcement in insertion order."""
        return [announcement for _, announcement in self._announcements]

    def prefixes_for_asn(self, asn: int) -> List[str]:
        """Return every prefix announced by an AS."""
        return [a.prefix for _, a in self._announcements if a.origin_asn == asn]

    def covers(self, prefix: NetLike) -> bool:
        """Return True when the table contains an announcement equal to or covering the prefix."""
        target = parse_network(prefix)
        for network, _announcement in self._announcements:
            if network.version != target.version:
                continue
            if target.subnet_of(network):
                return True
        return False

    def __len__(self) -> int:
        return len(self._announcements)
