"""A BGPStream-like feed of routing incidents.

Section 6.2 checks whether any BGP leak, possible hijack, or AS outage reported by
Cisco's BGPStream service during the study week affected the discovered backend
prefixes or their origin ASes (it finds 10 leaks, 40 possible hijacks, and 166 AS
outages, none of which touched the backends).  The feed here stores synthetic
events and supports the same "does any event affect these prefixes/ASes?" query.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import date
from typing import Iterable, List, Optional, Sequence, Set

from repro.netmodel.addressing import NetLike, parse_network


class EventKind(enum.Enum):
    """Kinds of routing incidents reported by the feed."""

    BGP_LEAK = "bgp-leak"
    POSSIBLE_HIJACK = "possible-hijack"
    AS_OUTAGE = "as-outage"


@dataclass(frozen=True)
class BgpEvent:
    """A single routing incident."""

    kind: EventKind
    day: date
    asn: Optional[int] = None
    prefix: Optional[str] = None
    description: str = ""

    def affects_asn(self, asns: Set[int]) -> bool:
        """Return True when the event's AS is one of the given ASes."""
        return self.asn is not None and self.asn in asns

    def affects_prefix(self, prefixes: Sequence[NetLike]) -> bool:
        """Return True when the event's prefix overlaps any of the given prefixes."""
        if self.prefix is None:
            return False
        event_net = parse_network(self.prefix)
        for prefix in prefixes:
            net = parse_network(prefix)
            if net.version != event_net.version:
                continue
            if net.subnet_of(event_net) or event_net.subnet_of(net):
                return True
        return False


class BgpEventFeed:
    """A queryable collection of routing incidents."""

    def __init__(self, events: Iterable[BgpEvent] = ()) -> None:
        self._events: List[BgpEvent] = list(events)

    def add(self, event: BgpEvent) -> None:
        """Add an event to the feed."""
        self._events.append(event)

    def events(
        self,
        start: Optional[date] = None,
        end: Optional[date] = None,
        kind: Optional[EventKind] = None,
    ) -> List[BgpEvent]:
        """Return events within [start, end), optionally filtered by kind."""
        selected = []
        for event in self._events:
            if start is not None and event.day < start:
                continue
            if end is not None and event.day >= end:
                continue
            if kind is not None and event.kind != kind:
                continue
            selected.append(event)
        return selected

    def count_by_kind(self, start: Optional[date] = None, end: Optional[date] = None) -> dict:
        """Return a mapping of event kind to the number of events in the window."""
        counts = {kind: 0 for kind in EventKind}
        for event in self.events(start, end):
            counts[event.kind] += 1
        return counts

    def events_affecting(
        self,
        asns: Set[int],
        prefixes: Sequence[NetLike],
        start: Optional[date] = None,
        end: Optional[date] = None,
    ) -> List[BgpEvent]:
        """Return the events in the window that touch any given AS or prefix."""
        affected = []
        for event in self.events(start, end):
            if event.affects_asn(asns) or event.affects_prefix(prefixes):
                affected.append(event)
        return affected

    def __len__(self) -> int:
        return len(self._events)
