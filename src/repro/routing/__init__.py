"""Routing substrate: prefix announcements and longest-prefix-match lookup
(RouteViews-style prefix-to-AS mapping), a BGPStream-like event feed, and anycast
catchments."""

from repro.routing.bgp import Announcement, RoutingTable
from repro.routing.events import BgpEvent, BgpEventFeed, EventKind
from repro.routing.anycast import AnycastGroup

__all__ = [
    "Announcement",
    "RoutingTable",
    "BgpEvent",
    "BgpEventFeed",
    "EventKind",
    "AnycastGroup",
]
