"""Autonomous-system registry.

The paper maps backend IPs to origin ASes (RouteViews prefix-to-AS data) to infer
network diversity and the deployment strategy: an IoT backend uses *dedicated
infrastructure* (DI) if all its addresses are announced by an AS managed by the
backend operator, and *public cloud resources* (PR) if they are announced by a
cloud provider or CDN (Section 4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class AsKind(enum.Enum):
    """Classification of an autonomous system's operator."""

    IOT_BACKEND = "iot-backend"
    CLOUD = "cloud"
    CDN = "cdn"
    ISP = "isp"
    TRANSIT = "transit"
    OTHER = "other"


@dataclass(frozen=True)
class AutonomousSystem:
    """An autonomous system and the organisation operating it."""

    asn: int
    name: str
    organization: str
    kind: AsKind

    def is_cloud_or_cdn(self) -> bool:
        """Return True when the AS belongs to a public cloud provider or a CDN."""
        return self.kind in (AsKind.CLOUD, AsKind.CDN)


class AsRegistry:
    """Registry of autonomous systems keyed by AS number and by organisation."""

    def __init__(self) -> None:
        self._by_asn: Dict[int, AutonomousSystem] = {}
        self._by_org: Dict[str, List[AutonomousSystem]] = {}
        self._next_asn = 64500  # private-use 16-bit ASN range and above

    def register(self, autonomous_system: AutonomousSystem) -> AutonomousSystem:
        """Register an AS; registering the same ASN twice must be consistent."""
        existing = self._by_asn.get(autonomous_system.asn)
        if existing is not None:
            if existing != autonomous_system:
                raise ValueError(f"conflicting registration for AS{autonomous_system.asn}")
            return existing
        self._by_asn[autonomous_system.asn] = autonomous_system
        self._by_org.setdefault(autonomous_system.organization, []).append(autonomous_system)
        return autonomous_system

    def create(self, name: str, organization: str, kind: AsKind) -> AutonomousSystem:
        """Create and register a new AS with the next free AS number."""
        while self._next_asn in self._by_asn:
            self._next_asn += 1
        autonomous_system = AutonomousSystem(self._next_asn, name, organization, kind)
        self._next_asn += 1
        return self.register(autonomous_system)

    def get(self, asn: int) -> Optional[AutonomousSystem]:
        """Return the AS registered under the AS number, or None."""
        return self._by_asn.get(asn)

    def by_organization(self, organization: str) -> List[AutonomousSystem]:
        """Return all ASes registered for an organisation."""
        return list(self._by_org.get(organization, []))

    def all(self) -> List[AutonomousSystem]:
        """Return every registered AS, ordered by AS number."""
        return [self._by_asn[asn] for asn in sorted(self._by_asn)]

    def organizations(self) -> List[str]:
        """Return every organisation name with at least one registered AS."""
        return sorted(self._by_org)

    def __len__(self) -> int:
        return len(self._by_asn)

    def __contains__(self, asn: object) -> bool:
        return asn in self._by_asn


def distinct_asns(systems: Iterable[AutonomousSystem]) -> int:
    """Count the number of distinct AS numbers in a collection."""
    return len({s.asn for s in systems})
