"""Geolocation substrate: locations, continents, and an IP-geolocation database.

The paper geolocates IoT backend servers using (a) location hints embedded in
domain names (city or airport codes, cloud region codes), (b) geolocation metadata
from scan snapshots, and (c) the location of prefix announcements, resolving
conflicts by majority vote (Section 4.2).  This module provides the location
catalog and the lookup database those heuristics consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.netmodel.addressing import IPLike, NetLike, parse_ip, parse_network

#: Continent identifiers used throughout the analyses.
CONTINENT_EUROPE = "EU"
CONTINENT_NORTH_AMERICA = "NA"
CONTINENT_ASIA = "AS"
CONTINENT_SOUTH_AMERICA = "SA"
CONTINENT_OCEANIA = "OC"
CONTINENT_AFRICA = "AF"

CONTINENTS = (
    CONTINENT_EUROPE,
    CONTINENT_NORTH_AMERICA,
    CONTINENT_ASIA,
    CONTINENT_SOUTH_AMERICA,
    CONTINENT_OCEANIA,
    CONTINENT_AFRICA,
)


@dataclass(frozen=True)
class Location:
    """A physical deployment location (datacenter metro).

    Attributes
    ----------
    city:
        Human-readable city name.
    airport_code:
        Three-letter code sometimes embedded in hostnames (e.g. ``fra``).
    country:
        ISO-3166-alpha-2 country code.
    continent:
        One of :data:`CONTINENTS`.
    region_code:
        Cloud-style region identifier (e.g. ``eu-central-1``) used by providers
        that embed region codes rather than cities in domain names.
    """

    city: str
    airport_code: str
    country: str
    continent: str
    region_code: str

    def __post_init__(self) -> None:
        if self.continent not in CONTINENTS:
            raise ValueError(f"unknown continent {self.continent!r} for {self.city}")


def world_locations() -> List[Location]:
    """Return the catalog of locations available to provider deployments.

    The catalog spans Europe, North America, Asia, and a few other regions so that
    deployments can reproduce the paper's continent-level distribution (roughly 65%
    of backend servers in the US, 30% in Europe, 5% in Asia).
    """
    return [
        # Europe
        Location("Frankfurt", "fra", "DE", CONTINENT_EUROPE, "eu-central-1"),
        Location("Dublin", "dub", "IE", CONTINENT_EUROPE, "eu-west-1"),
        Location("London", "lhr", "GB", CONTINENT_EUROPE, "eu-west-2"),
        Location("Paris", "cdg", "FR", CONTINENT_EUROPE, "eu-west-3"),
        Location("Stockholm", "arn", "SE", CONTINENT_EUROPE, "eu-north-1"),
        Location("Milan", "mxp", "IT", CONTINENT_EUROPE, "eu-south-1"),
        Location("Amsterdam", "ams", "NL", CONTINENT_EUROPE, "eu-west-4"),
        Location("Zurich", "zrh", "CH", CONTINENT_EUROPE, "eu-central-2"),
        Location("Madrid", "mad", "ES", CONTINENT_EUROPE, "eu-south-2"),
        Location("Warsaw", "waw", "PL", CONTINENT_EUROPE, "eu-central-3"),
        # North America
        Location("Ashburn", "iad", "US", CONTINENT_NORTH_AMERICA, "us-east-1"),
        Location("Columbus", "cmh", "US", CONTINENT_NORTH_AMERICA, "us-east-2"),
        Location("San Jose", "sjc", "US", CONTINENT_NORTH_AMERICA, "us-west-1"),
        Location("Portland", "pdx", "US", CONTINENT_NORTH_AMERICA, "us-west-2"),
        Location("Dallas", "dfw", "US", CONTINENT_NORTH_AMERICA, "us-south-1"),
        Location("Chicago", "ord", "US", CONTINENT_NORTH_AMERICA, "us-central-1"),
        Location("Montreal", "yul", "CA", CONTINENT_NORTH_AMERICA, "ca-central-1"),
        Location("Toronto", "yyz", "CA", CONTINENT_NORTH_AMERICA, "ca-east-1"),
        Location("Phoenix", "phx", "US", CONTINENT_NORTH_AMERICA, "us-west-3"),
        Location("Atlanta", "atl", "US", CONTINENT_NORTH_AMERICA, "us-east-3"),
        # Asia
        Location("Beijing", "pek", "CN", CONTINENT_ASIA, "cn-north-1"),
        Location("Shanghai", "sha", "CN", CONTINENT_ASIA, "cn-east-2"),
        Location("Shenzhen", "szx", "CN", CONTINENT_ASIA, "cn-south-1"),
        Location("Singapore", "sin", "SG", CONTINENT_ASIA, "ap-southeast-1"),
        Location("Tokyo", "nrt", "JP", CONTINENT_ASIA, "ap-northeast-1"),
        Location("Seoul", "icn", "KR", CONTINENT_ASIA, "ap-northeast-2"),
        Location("Mumbai", "bom", "IN", CONTINENT_ASIA, "ap-south-1"),
        Location("Hong Kong", "hkg", "HK", CONTINENT_ASIA, "ap-east-1"),
        # Other regions
        Location("Sydney", "syd", "AU", CONTINENT_OCEANIA, "ap-southeast-2"),
        Location("Sao Paulo", "gru", "BR", CONTINENT_SOUTH_AMERICA, "sa-east-1"),
        Location("Cape Town", "cpt", "ZA", CONTINENT_AFRICA, "af-south-1"),
    ]


class GeoDatabase:
    """Maps prefixes (and thus IPs) to locations, with per-IP overrides.

    This plays the role of the geolocation metadata returned by scan services and
    of the prefix-announcement-location heuristic.  A small, configurable fraction
    of entries can be perturbed by the world builder to model geolocation noise
    (the paper reports <7% disagreement between sources).
    """

    def __init__(self) -> None:
        self._prefix_locations: Dict[object, Location] = {}
        self._ip_overrides: Dict[object, Location] = {}
        self._locations_by_region: Dict[str, Location] = {}
        self._locations_by_airport: Dict[str, Location] = {}

    def register_location(self, location: Location) -> None:
        """Register a location so it can be looked up by region or airport code."""
        self._locations_by_region[location.region_code] = location
        self._locations_by_airport[location.airport_code] = location

    def register_prefix(self, prefix: NetLike, location: Location) -> None:
        """Associate a prefix with a location (prefix-announcement geolocation)."""
        self.register_location(location)
        self._prefix_locations[parse_network(prefix)] = location

    def register_ip(self, ip: IPLike, location: Location) -> None:
        """Associate a single IP with a location, overriding its prefix."""
        self.register_location(location)
        self._ip_overrides[parse_ip(ip)] = location

    def lookup_ip(self, ip: IPLike) -> Optional[Location]:
        """Return the location of an address, or None if unknown."""
        addr = parse_ip(ip)
        if addr in self._ip_overrides:
            return self._ip_overrides[addr]
        best: Optional[Location] = None
        best_len = -1
        for prefix, location in self._prefix_locations.items():
            if addr.version == prefix.version and addr in prefix and prefix.prefixlen > best_len:
                best = location
                best_len = prefix.prefixlen
        return best

    def lookup_region_code(self, region_code: str) -> Optional[Location]:
        """Return the location registered under a cloud-style region code."""
        return self._locations_by_region.get(region_code)

    def lookup_airport_code(self, airport_code: str) -> Optional[Location]:
        """Return the location registered under an airport code."""
        return self._locations_by_airport.get(airport_code.lower())

    def known_locations(self) -> List[Location]:
        """Return all locations registered in the database."""
        unique = {loc.region_code: loc for loc in self._locations_by_region.values()}
        return sorted(unique.values(), key=lambda loc: loc.region_code)


@dataclass
class LocationVote:
    """A single geolocation opinion from one source, used for majority voting."""

    source: str
    location: Location


def majority_vote(votes: Iterable[LocationVote]) -> Optional[Location]:
    """Resolve conflicting geolocation opinions by majority vote.

    Ties are broken by source-name order to keep the result deterministic.  Returns
    None when no votes are given.
    """
    votes = list(votes)
    if not votes:
        return None
    counts: Dict[str, int] = {}
    by_key: Dict[str, Location] = {}
    first_source: Dict[str, str] = {}
    for vote in votes:
        key = vote.location.region_code
        counts[key] = counts.get(key, 0) + 1
        by_key[key] = vote.location
        first_source.setdefault(key, vote.source)
    best_key = sorted(counts, key=lambda k: (-counts[k], first_source[k], k))[0]
    return by_key[best_key]
