"""Provider deployment topology: backend servers and their service endpoints.

The world builder (:mod:`repro.simulation.world`) instantiates one
:class:`ProviderDeployment` per IoT backend provider.  A deployment consists of
:class:`BackendServer` objects — the Internet-facing gateways of Figure 1 — each of
which carries its address, location, origin AS, announced prefix, DNS names, and
the service endpoints (protocol/port plus TLS configuration) it exposes.

These objects are *ground truth*: the discovery pipeline never reads them directly;
it only sees their reflections in DNS, certificates, scan snapshots, and flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netmodel.addressing import (
    count_slash24,
    count_slash56,
    parse_ip,
    prefix_of,
)
from repro.netmodel.geo import Location

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.scan.tls import TlsServerConfig


@dataclass(frozen=True)
class ServiceEndpoint:
    """A single (transport, port) service exposed by a backend server.

    Attributes
    ----------
    transport:
        ``tcp`` or ``udp``.
    port:
        Port number the service listens on.
    protocol:
        Application protocol spoken on the port (``MQTT``, ``MQTTS``, ``HTTPS``,
        ``CoAP``, ``AMQPS``, ...), which may legitimately differ from the IANA
        assignment of the port (e.g. MQTT on 443).
    tls:
        TLS configuration when the service is TLS-wrapped, else None.
    """

    transport: str
    port: int
    protocol: str
    tls: Optional["TlsServerConfig"] = None

    @property
    def key(self) -> Tuple[str, int]:
        """The (transport, port) pair identifying the endpoint on its server."""
        return (self.transport, self.port)


@dataclass
class BackendServer:
    """An Internet-facing IoT backend gateway server."""

    ip: str
    provider: str
    location: Location
    asn: int
    prefix: str
    endpoints: Tuple[ServiceEndpoint, ...] = ()
    domains: Tuple[str, ...] = ()
    dedicated_iot: bool = True
    cloud_host: Optional[str] = None
    anycast: bool = False

    def __post_init__(self) -> None:
        # Normalise the address textual form once, so set membership is stable.
        self.ip = str(parse_ip(self.ip))

    @property
    def ip_version(self) -> int:
        """4 or 6."""
        return parse_ip(self.ip).version

    @property
    def is_ipv6(self) -> bool:
        """True for IPv6 servers."""
        return self.ip_version == 6

    def endpoint(self, transport: str, port: int) -> Optional[ServiceEndpoint]:
        """Return the endpoint listening on (transport, port), if any."""
        for ep in self.endpoints:
            if ep.transport == transport and ep.port == port:
                return ep
        return None

    def open_ports(self) -> List[Tuple[str, int]]:
        """Return the list of (transport, port) pairs with listening services."""
        return [ep.key for ep in self.endpoints]

    def tls_endpoints(self) -> List[ServiceEndpoint]:
        """Return the endpoints that are TLS-wrapped."""
        return [ep for ep in self.endpoints if ep.tls is not None]


@dataclass
class ProviderDeployment:
    """All backend servers operated by (or on behalf of) one provider."""

    provider: str
    servers: List[BackendServer] = field(default_factory=list)

    def add_server(self, server: BackendServer) -> None:
        """Add a server, enforcing that it belongs to this provider."""
        if server.provider != self.provider:
            raise ValueError(
                f"server {server.ip} belongs to {server.provider}, not {self.provider}"
            )
        self.servers.append(server)

    # -- address views ------------------------------------------------------------

    def ips(self) -> List[str]:
        """Return every server address (IPv4 and IPv6)."""
        return [server.ip for server in self.servers]

    def ipv4_servers(self) -> List[BackendServer]:
        """Return the IPv4 servers."""
        return [server for server in self.servers if not server.is_ipv6]

    def ipv6_servers(self) -> List[BackendServer]:
        """Return the IPv6 servers."""
        return [server for server in self.servers if server.is_ipv6]

    def server_by_ip(self) -> Dict[str, BackendServer]:
        """Return a lookup table keyed by address string."""
        return {server.ip: server for server in self.servers}

    # -- aggregate characteristics (ground-truth versions of Table 1 columns) ------

    def slash24_count(self) -> int:
        """Ground-truth number of distinct IPv4 /24 blocks."""
        return count_slash24(self.ips())

    def slash56_count(self) -> int:
        """Ground-truth number of distinct IPv6 /56 blocks."""
        return count_slash56(self.ips())

    def locations(self) -> List[Location]:
        """Distinct deployment locations, ordered by region code."""
        unique = {server.location.region_code: server.location for server in self.servers}
        return [unique[code] for code in sorted(unique)]

    def countries(self) -> List[str]:
        """Distinct country codes of the deployment."""
        return sorted({server.location.country for server in self.servers})

    def continents(self) -> List[str]:
        """Distinct continents of the deployment."""
        return sorted({server.location.continent for server in self.servers})

    def asns(self) -> List[int]:
        """Distinct origin AS numbers of the deployment."""
        return sorted({server.asn for server in self.servers})

    def prefixes(self) -> List[str]:
        """Distinct announced prefixes of the deployment."""
        return sorted({server.prefix for server in self.servers})

    def ports(self) -> List[Tuple[str, int]]:
        """Distinct (transport, port) pairs offered across the deployment."""
        pairs: Set[Tuple[str, int]] = set()
        for server in self.servers:
            pairs.update(server.open_ports())
        return sorted(pairs)

    def uses_anycast(self) -> bool:
        """True when any server of the deployment is anycast."""
        return any(server.anycast for server in self.servers)

    def cloud_hosts(self) -> List[str]:
        """Distinct cloud/CDN organisations hosting parts of the deployment."""
        return sorted({s.cloud_host for s in self.servers if s.cloud_host is not None})

    def servers_in_region(self, region_code: str) -> List[BackendServer]:
        """Return the servers located in the given cloud region."""
        return [s for s in self.servers if s.location.region_code == region_code]

    def servers_in_continent(self, continent: str) -> List[BackendServer]:
        """Return the servers located on the given continent."""
        return [s for s in self.servers if s.location.continent == continent]
