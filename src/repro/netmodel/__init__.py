"""Synthetic Internet model: addresses and prefixes, autonomous systems,
geolocation, and provider backend deployments (topology)."""

from repro.netmodel.addressing import (
    PrefixAllocator,
    count_slash24,
    count_slash56,
    ip_in_prefix,
    parse_ip,
    prefix_of,
)
from repro.netmodel.asn import AsKind, AsRegistry, AutonomousSystem
from repro.netmodel.geo import CONTINENTS, GeoDatabase, Location, world_locations
from repro.netmodel.topology import BackendServer, ProviderDeployment, ServiceEndpoint

__all__ = [
    "PrefixAllocator",
    "count_slash24",
    "count_slash56",
    "ip_in_prefix",
    "parse_ip",
    "prefix_of",
    "AsKind",
    "AsRegistry",
    "AutonomousSystem",
    "CONTINENTS",
    "GeoDatabase",
    "Location",
    "world_locations",
    "BackendServer",
    "ProviderDeployment",
    "ServiceEndpoint",
]
