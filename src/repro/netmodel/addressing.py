"""IP address and prefix helpers built on the standard :mod:`ipaddress` module.

The simulation needs to (a) allocate non-overlapping prefixes to providers, clouds,
and the ISP, (b) aggregate discovered addresses into /24 (IPv4) and /56 (IPv6)
blocks as Table 1 of the paper reports, and (c) perform longest-prefix-style
membership checks.  All helpers accept either string or ``ipaddress`` objects.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, List, Sequence, Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
IPLike = Union[str, IPAddress]
NetLike = Union[str, IPNetwork]


def parse_ip(value: IPLike) -> IPAddress:
    """Parse a string into an IPv4/IPv6 address (idempotent on address objects)."""
    if isinstance(value, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        return value
    return ipaddress.ip_address(value)


def parse_network(value: NetLike) -> IPNetwork:
    """Parse a string into an IPv4/IPv6 network (idempotent on network objects)."""
    if isinstance(value, (ipaddress.IPv4Network, ipaddress.IPv6Network)):
        return value
    return ipaddress.ip_network(value, strict=False)


def is_ipv6(value: IPLike) -> bool:
    """Return True if the address is an IPv6 address."""
    return parse_ip(value).version == 6


def prefix_of(value: IPLike, length: int) -> IPNetwork:
    """Return the enclosing prefix of the given length for an address."""
    addr = parse_ip(value)
    return ipaddress.ip_network(f"{addr}/{length}", strict=False)


def ip_in_prefix(value: IPLike, network: NetLike) -> bool:
    """Return True if the address falls inside the prefix."""
    addr = parse_ip(value)
    net = parse_network(network)
    if addr.version != net.version:
        return False
    return addr in net


def count_slash24(ips: Iterable[IPLike]) -> int:
    """Count distinct IPv4 /24 blocks covered by the addresses (IPv6 ignored)."""
    blocks = {prefix_of(ip, 24) for ip in map(parse_ip, ips) if ip.version == 4}
    return len(blocks)


def count_slash56(ips: Iterable[IPLike]) -> int:
    """Count distinct IPv6 /56 blocks covered by the addresses (IPv4 ignored)."""
    blocks = {prefix_of(ip, 56) for ip in map(parse_ip, ips) if ip.version == 6}
    return len(blocks)


def split_by_version(ips: Iterable[IPLike]) -> tuple[list[IPAddress], list[IPAddress]]:
    """Split a collection of addresses into (IPv4 list, IPv6 list)."""
    v4: list[IPAddress] = []
    v6: list[IPAddress] = []
    for ip in map(parse_ip, ips):
        if ip.version == 4:
            v4.append(ip)
        else:
            v6.append(ip)
    return v4, v6


class PrefixAllocator:
    """Allocates non-overlapping sub-prefixes and host addresses from a pool.

    The world builder creates one allocator per address family and carves provider
    and ISP prefixes out of it.  Allocation is strictly sequential and therefore
    deterministic.

    Parameters
    ----------
    pool:
        The super-prefix from which all allocations are made (e.g. ``10.0.0.0/8``).
    """

    def __init__(self, pool: NetLike) -> None:
        self._pool = parse_network(pool)
        self._cursor = int(self._pool.network_address)
        self._end = int(self._pool.broadcast_address) + 1
        self._allocated: List[IPNetwork] = []

    @property
    def pool(self) -> IPNetwork:
        """The super-prefix managed by this allocator."""
        return self._pool

    @property
    def allocated(self) -> Sequence[IPNetwork]:
        """All prefixes allocated so far, in allocation order."""
        return tuple(self._allocated)

    def allocate_prefix(self, prefix_length: int) -> IPNetwork:
        """Allocate the next available prefix of the requested length.

        Raises
        ------
        ValueError
            If the requested length is shorter than the pool's length or the pool
            is exhausted.
        """
        if prefix_length < self._pool.prefixlen:
            raise ValueError(
                f"cannot allocate /{prefix_length} from pool {self._pool}"
            )
        block_size = 2 ** ((128 if self._pool.version == 6 else 32) - prefix_length)
        # Align the cursor to the block size.
        if self._cursor % block_size:
            self._cursor += block_size - (self._cursor % block_size)
        if self._cursor + block_size > self._end:
            raise ValueError(f"prefix pool {self._pool} exhausted")
        network_address = ipaddress.ip_address(self._cursor)
        self._cursor += block_size
        network = ipaddress.ip_network(f"{network_address}/{prefix_length}")
        self._allocated.append(network)
        return network

    def hosts_in(self, network: NetLike, count: int, start_offset: int = 1) -> List[IPAddress]:
        """Return ``count`` host addresses from a network, starting at an offset.

        The offset defaults to 1 to skip the network address for IPv4.
        """
        net = parse_network(network)
        base = int(net.network_address)
        max_hosts = net.num_addresses - start_offset
        if count > max_hosts:
            raise ValueError(
                f"requested {count} hosts but {net} only has {max_hosts} available"
            )
        return [ipaddress.ip_address(base + start_offset + i) for i in range(count)]


def summarize_prefixes(ips: Iterable[IPLike], v4_length: int = 24, v6_length: int = 56) -> List[IPNetwork]:
    """Summarize addresses into their enclosing v4/v6 prefixes (sorted, unique)."""
    seen = set()
    for ip in map(parse_ip, ips):
        length = v4_length if ip.version == 4 else v6_length
        seen.add(prefix_of(ip, length))
    return sorted(seen, key=lambda n: (n.version, int(n.network_address), n.prefixlen))
