"""Reproduction of "Deep Dive into the IoT Backend Ecosystem" (IMC 2022).

The package is organised in two layers:

* Substrates (``repro.netmodel``, ``repro.dns``, ``repro.scan``, ``repro.protocols``,
  ``repro.routing``, ``repro.flows``, ``repro.security``, ``repro.outage``,
  ``repro.simulation``) model the measurement environment the paper's authors had
  access to: an Internet address space with provider deployments, DNS, TLS
  certificates, scanning services, BGP routing, an ISP NetFlow vantage point,
  blocklists, and outages.

* The core contribution (``repro.core``) implements the paper's methodology:
  domain-pattern generation, multi-source backend discovery, validation, footprint
  characterization, ISP traffic analyses, and disruption analyses.  Baselines used
  by the paper for comparison live in ``repro.baselines``.

The top-level namespace re-exports the most commonly used entry points.
"""

from repro.simulation.config import ScenarioConfig
from repro.simulation.world import World, build_world
from repro.core.pipeline import DiscoveryPipeline, PipelineResult
from repro.core.providers import PROVIDERS, ProviderSpec, get_provider, provider_names

__all__ = [
    "ScenarioConfig",
    "World",
    "build_world",
    "DiscoveryPipeline",
    "PipelineResult",
    "PROVIDERS",
    "ProviderSpec",
    "get_provider",
    "provider_names",
]

__version__ = "1.0.0"
