"""Port-scan-only baseline.

Probing the standard IoT ports (MQTT 1883/8883, CoAP 5683/5684, AMQP 5671) and
declaring every responsive host an "IoT backend" is the naive alternative to the
paper's domain-pattern methodology.  Sections 4.4 and 7 argue this is insufficient:
providers serve IoT protocols on Web and non-standard ports, and hosts that do
answer on IoT ports cannot be attributed to a provider without domain knowledge.
This module quantifies both failure modes against the ground truth available in a
scan snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.discovery import DiscoveryResult
from repro.protocols.ports import STANDARD_IOT_PORTS
from repro.scan.censys import CensysSnapshot


@dataclass
class PortScanBaselineReport:
    """Outcome of the port-scan-only baseline against a reference discovery result."""

    candidate_ips: Set[str]
    reference_ips: Set[str]
    true_positives: Set[str]
    missed_backends: Set[str]
    unattributable: Set[str]

    @property
    def recall(self) -> float:
        """Fraction of reference backend addresses found by port scanning alone."""
        if not self.reference_ips:
            return 0.0
        return len(self.true_positives) / len(self.reference_ips)

    @property
    def miss_fraction(self) -> float:
        """Fraction of reference backend addresses missed."""
        return 1.0 - self.recall


def portscan_only_discovery(
    snapshot: CensysSnapshot,
    reference: DiscoveryResult,
    iot_ports: Sequence[Tuple[str, int]] = STANDARD_IOT_PORTS,
) -> PortScanBaselineReport:
    """Run the baseline on one scan snapshot and compare against a reference result.

    The baseline's candidate set contains every scanned host with at least one
    standard IoT port open.  Because the baseline has no domain knowledge, *all*
    candidates are unattributable to a provider; the report still scores how many
    of the reference (methodology-discovered IPv4) addresses appear in the
    candidate set at all.
    """
    candidates = snapshot.ips_with_open_ports(iot_ports)
    reference_ipv4 = reference.ipv4_ips()
    # Restrict the comparison to addresses present in the snapshot: the baseline
    # can only ever see what the scanner probed.
    scanned_reference = {ip for ip in reference_ipv4 if snapshot.get(ip) is not None}
    true_positives = candidates & scanned_reference
    missed = scanned_reference - candidates
    return PortScanBaselineReport(
        candidate_ips=candidates,
        reference_ips=scanned_reference,
        true_positives=true_positives,
        missed_backends=missed,
        unattributable=set(candidates),
    )
