"""Baselines the paper compares its methodology against.

* ``portscan_only``: treat any host with an open standard IoT port as an IoT
  backend (what a naive Internet-wide scan would do).
* ``tls_only``: use only TLS-certificate information from IPv4 scans, i.e. the
  Censys-only variant evaluated in Figure 7.
"""

from repro.baselines.portscan_only import PortScanBaselineReport, portscan_only_discovery
from repro.baselines.tls_only import tls_only_discovery

__all__ = ["PortScanBaselineReport", "portscan_only_discovery", "tls_only_discovery"]
