"""TLS-certificates-only baseline (the Censys-only variant of Figure 7).

Figure 7 quantifies how many IoT subscriber lines would remain undetected if the
backend address sets were derived only from TLS certificates collected by active
IPv4 scans (i.e. without passive or active DNS).  This module produces that
reduced discovery result; the comparison itself lives in
:func:`repro.core.traffic.tls_only_subscriber_loss`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.discovery import BackendDiscovery, DiscoveryResult
from repro.core.patterns import PatternSet
from repro.scan.censys import CensysSnapshot


def tls_only_discovery(
    snapshots: Iterable[CensysSnapshot],
    pattern_set: Optional[PatternSet] = None,
) -> DiscoveryResult:
    """Discover backend addresses using only IPv4 TLS-certificate scan data.

    One :class:`BackendDiscovery` (and therefore one compiled pattern engine
    with a shared lookup cache) serves all snapshots: certificate names repeat
    across the daily snapshots, so each distinct name is classified only once
    for the whole period.
    """
    discovery = BackendDiscovery(pattern_set)
    return discovery.combine(
        discovery.discover_from_censys(snapshot) for snapshot in snapshots
    )
