"""Structured logging for the reproduction (stdlib :mod:`logging` only).

Every component logs through a child of the ``repro`` logger obtained with
:func:`get_logger`; :func:`configure` installs one stream handler on the root
``repro`` logger and maps the CLI's ``-v`` / ``-q`` counts to a level:

=========  =========
verbosity  level
=========  =========
``<= -1``  ``ERROR``
``0``      ``WARNING`` (default: quiet unless something is wrong)
``1``      ``INFO``
``>= 2``   ``DEBUG``
=========  =========

:func:`log_event` renders one event as ``event key=value key=value`` —
grep-able, diff-able lines instead of prose, so a sweep's failure/respawn/
breaker events can be filtered by ``scenario_id`` with one ``grep``.
Values containing whitespace are quoted via ``json.dumps``.

Calling :func:`configure` twice replaces the previous handler instead of
stacking a second one, so repeated ``main()`` invocations (tests, REPLs) do
not multiply output.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

#: Root logger name; every module logger is a child of this.
ROOT_LOGGER = "repro"

_handler: Optional[logging.Handler] = None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger('sweeps')`` -> ``repro.sweeps``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def level_for_verbosity(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count delta to a logging level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0, stream: Optional[IO[str]] = None) -> logging.Logger:
    """Install (or replace) the ``repro`` stream handler at the mapped level.

    Logs go to ``stderr`` by default so they never mix with the experiment
    tables the CLI prints on ``stdout``.
    """
    global _handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        logger.removeHandler(_handler)
    _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    logger.addHandler(_handler)
    logger.setLevel(level_for_verbosity(verbosity))
    return logger


def _format_value(value: object) -> str:
    text = str(value)
    if any(ch.isspace() for ch in text) or not text:
        return json.dumps(text)
    return text


def format_event(event: str, **fields: object) -> str:
    """Render ``event key=value ...`` with stable field order."""
    parts = [event]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    return " ".join(parts)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """Log one structured ``event key=value`` line at the given level."""
    if logger.isEnabledFor(level):
        logger.log(level, format_event(event, **fields))
