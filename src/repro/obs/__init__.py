"""``repro.obs`` — zero-dependency observability: metrics, tracing, logging.

The reproduction's pipeline (generation → discovery → classification →
analyses) is heavily cached and parallel; when a campaign is slow or a warm
start silently falls back to a cold rebuild, this package is what says why.
Three cooperating, individually usable pieces:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters/gauges/fixed-bucket histograms with a snapshot/merge API (sweep
  workers ship their metrics to the driver as snapshots) and a process-local
  default registry behind cheap module-level helpers.
* :mod:`repro.obs.trace` — a :func:`span` context-manager tracer appending
  one JSON line per completed span to a file selected by ``--trace PATH`` or
  ``$IOT_REPRO_TRACE``; reads are torn-tail tolerant and
  :func:`summarize_trace` powers the ``stats`` CLI subcommand.
* :mod:`repro.obs.log` — structured ``event key=value`` logging on the
  stdlib ``repro`` logger hierarchy, wired to the CLI's ``-v``/``-q`` flags.

**The read-only contract.**  Observability instruments *observe*: they draw
no randomness, mutate no experiment state, and feed nothing back into any
computed value.  Store content addresses, artifact bytes, and sweep-ledger
identity fields are bit-identical with tracing and metrics enabled or
disabled — enforced by ``tests/test_obs.py``.  Instrumentation overhead is
bounded by ``benchmarks/test_perf_obs.py`` (``BENCH_obs.json``).

:mod:`repro.obs.bench` additionally stamps host metadata into every
``BENCH_*.json`` artifact so perf numbers stay comparable across machines.
"""

from repro.obs.bench import BENCH_ENV_FIELDS, bench_env, visible_cpus
from repro.obs.log import configure as configure_logging
from repro.obs.log import format_event, get_logger, log_event
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.trace import (
    TRACE_ENV_VAR,
    TraceSummary,
    read_trace,
    span,
    summarize_trace,
)

__all__ = [
    "BENCH_ENV_FIELDS",
    "bench_env",
    "visible_cpus",
    "configure_logging",
    "format_event",
    "get_logger",
    "log_event",
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "TRACE_ENV_VAR",
    "TraceSummary",
    "read_trace",
    "span",
    "summarize_trace",
]
