"""Append-only JSONL span tracing.

:func:`span` is a context manager that times a named stage and, when tracing
is enabled, appends one JSON line per *completed* span to the trace file:

```json
{"name": "gen.hour", "span_id": "1234-7", "parent_id": "1234-3", "pid": 1234,
 "start": 1722310000.25, "dur": 0.0123, "attrs": {"hour": "2022-03-14T09:00:00"}}
```

* ``dur`` is measured with ``time.monotonic`` (never walks backwards);
  ``start`` is wall-clock epoch for human correlation.
* ``parent_id`` links nested spans per thread (a thread-local stack), so a
  trace reconstructs the stage tree of each process.
* Lines are written with a single ``os.write`` on an ``O_APPEND`` descriptor:
  on POSIX, concurrent appenders (forked sweep/generation workers inherit the
  open descriptor; spawned ones re-open the same path) interleave whole
  lines, never bytes.

Tracing is enabled explicitly (:func:`enable` — the CLI's ``--trace PATH``)
or through the :data:`TRACE_ENV_VAR` environment variable, checked lazily on
first use so worker processes started with the variable set pick it up
without plumbing.  While disabled, :func:`span` yields immediately and
touches neither the clock nor the filesystem.

Reading is crash-tolerant: :func:`read_trace` skips unparseable lines (the
torn tail a killed process leaves mid-append) instead of failing, and
:func:`summarize_trace` folds events into the per-stage table behind
``iot-backend-repro stats``.

The tracer is strictly **read-only** with respect to the experiment: it draws
no randomness and feeds nothing back into any computation, so store digests
and ledger identities are bit-identical with tracing on or off.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Environment variable that enables tracing to the given path.
TRACE_ENV_VAR = "IOT_REPRO_TRACE"

_UNSET = object()  # env var not yet consulted

_lock = threading.Lock()
_sink_fd: Union[object, Optional[int]] = _UNSET
_sink_path: Optional[str] = None
_ids = itertools.count(1)
_stack = threading.local()


def _open_sink(path: str) -> int:
    return os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)


def enable(path: Union[str, Path]) -> None:
    """Start appending span events to ``path`` (creates the file if needed)."""
    global _sink_fd, _sink_path
    with _lock:
        if isinstance(_sink_fd, int):
            os.close(_sink_fd)
        _sink_path = str(path)
        _sink_fd = _open_sink(_sink_path)


def disable() -> None:
    """Stop tracing (and stop consulting the environment variable)."""
    global _sink_fd, _sink_path
    with _lock:
        if isinstance(_sink_fd, int):
            os.close(_sink_fd)
        _sink_fd = None
        _sink_path = None


def reset() -> None:
    """Back to the initial lazy state: the env variable decides on first use."""
    global _sink_fd, _sink_path
    with _lock:
        if isinstance(_sink_fd, int):
            os.close(_sink_fd)
        _sink_fd = _UNSET
        _sink_path = None


def _resolve_fd() -> Optional[int]:
    global _sink_fd, _sink_path
    fd = _sink_fd
    if fd is _UNSET:
        with _lock:
            if _sink_fd is _UNSET:  # re-check under the lock
                env_path = os.environ.get(TRACE_ENV_VAR)
                if env_path:
                    _sink_path = env_path
                    _sink_fd = _open_sink(env_path)
                else:
                    _sink_fd = None
            fd = _sink_fd
    return fd if isinstance(fd, int) else None


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _resolve_fd() is not None


def trace_path() -> Optional[str]:
    """The active trace file path, or None while disabled."""
    _resolve_fd()
    return _sink_path


def _parent_stack() -> List[str]:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = _stack.spans = []
    return stack


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time a named stage; emit one JSONL event when it completes.

    ``attrs`` become the event's ``attrs`` object (values must be
    JSON-serializable).  Nested spans record their parent's id.  While
    tracing is disabled this is a near-no-op.
    """
    fd = _resolve_fd()
    if fd is None:
        yield
        return
    stack = _parent_stack()
    span_id = f"{os.getpid()}-{next(_ids)}"
    parent_id = stack[-1] if stack else None
    stack.append(span_id)
    start_wall = time.time()
    start = time.monotonic()
    try:
        yield
    finally:
        duration = time.monotonic() - start
        stack.pop()
        event = {
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "pid": os.getpid(),
            "start": start_wall,
            "dur": duration,
        }
        if attrs:
            event["attrs"] = attrs
        line = json.dumps(event, sort_keys=True, default=str) + "\n"
        try:
            os.write(fd, line.encode("utf-8"))
        except OSError:  # tracing must never take the experiment down
            pass


# -- reading / summarizing ---------------------------------------------------------


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL trace file, tolerating torn or garbage lines.

    A process killed mid-append leaves a partial line; concurrent appenders
    mean that line is not necessarily the file's last.  Every unparseable or
    non-object line is therefore skipped rather than fatal — observability
    data is advisory, and a best-effort read beats refusing the whole file.
    """
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "name" in event and "dur" in event:
                events.append(event)
    return events


@dataclass
class StageStats:
    """Aggregated timings of one span name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    durations: List[float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.durations is None:
            self.durations = []

    def add(self, duration: float) -> None:
        self.count += 1
        self.total_seconds += duration
        self.max_seconds = max(self.max_seconds, duration)
        self.durations.append(duration)

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile over the recorded durations."""
        ordered = sorted(self.durations)
        rank = max(1, int(q * len(ordered) + 0.9999999))
        return ordered[min(rank, len(ordered)) - 1]


@dataclass
class TraceSummary:
    """Per-stage aggregates plus whole-trace wall-clock accounting."""

    stages: Dict[str, StageStats]
    #: Sum over processes of (last span end - first span start).
    wall_seconds: float
    #: Sum over processes of their *root* spans' durations.
    accounted_seconds: float
    processes: int
    events: int

    @property
    def coverage(self) -> float:
        """Fraction of observed wall-clock covered by root spans (0..1)."""
        if self.wall_seconds <= 0.0:
            return 1.0 if self.accounted_seconds > 0 else 0.0
        return self.accounted_seconds / self.wall_seconds

    def rows(self) -> List[List[object]]:
        """Per-stage table rows (sorted by total time, descending)."""
        ordered = sorted(self.stages.values(), key=lambda s: -s.total_seconds)
        return [
            [
                stage.name,
                stage.count,
                round(stage.total_seconds, 4),
                round(stage.total_seconds / stage.count, 6),
                round(stage.percentile(0.5), 6),
                round(stage.percentile(0.95), 6),
                round(stage.max_seconds, 6),
            ]
            for stage in ordered
        ]


def summarize_trace(events: List[Dict[str, object]]) -> TraceSummary:
    """Fold span events into per-stage statistics and wall-clock coverage.

    Coverage is computed per process: each pid's wall clock is the interval
    from its first span start to its last span end, and its accounted time is
    the sum of its *root* (parentless) span durations — nested spans overlap
    their parents and must not double-count.
    """
    stages: Dict[str, StageStats] = {}
    first_start: Dict[int, float] = {}
    last_end: Dict[int, float] = {}
    accounted: Dict[int, float] = {}
    for event in events:
        try:
            name = str(event["name"])
            duration = float(event["dur"])
            start = float(event.get("start", 0.0))
            pid = int(event.get("pid", 0))
        except (TypeError, ValueError):
            continue
        stats = stages.get(name)
        if stats is None:
            stats = stages[name] = StageStats(name)
        stats.add(duration)
        end = start + duration
        if pid not in first_start or start < first_start[pid]:
            first_start[pid] = start
        if pid not in last_end or end > last_end[pid]:
            last_end[pid] = end
        if event.get("parent_id") is None:
            accounted[pid] = accounted.get(pid, 0.0) + duration
    wall = sum(last_end[pid] - first_start[pid] for pid in first_start)
    return TraceSummary(
        stages=stages,
        wall_seconds=wall,
        accounted_seconds=sum(accounted.values()),
        processes=len(first_start),
        events=sum(stats.count for stats in stages.values()),
    )
