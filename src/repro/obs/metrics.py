"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` aggregates three kinds of instruments:

* **Counters** — monotonically increasing floats (``inc``),
* **Gauges** — last-write-wins floats (``set_gauge``),
* **Histograms** — fixed-bucket latency/size distributions (``observe``),
  recording per-bucket counts plus sum/count/min/max so quantiles can be
  estimated without keeping samples.

All mutating operations take the registry lock, so instrumented code may run
from any thread.  A registry serializes to a plain-JSON **snapshot**
(:meth:`MetricsRegistry.snapshot`) and snapshots **merge** additively
(:meth:`MetricsRegistry.merge`): counters and histogram buckets add, gauges
are last-write-wins.  That is the mechanism sweep workers use to ship their
metrics to the driver — each worker snapshots its registry into the scenario
outcome, and the driver merges every snapshot into its own registry.

The module also owns the **process-local default registry** the
instrumentation helpers (:func:`inc`, :func:`observe`, :func:`set_gauge`)
write to.  Collection is off by default: every helper first checks
:func:`enabled`, so uninstrumented runs pay one boolean test per call site
and nothing else.  Observability is strictly read-only — no helper draws
randomness or influences any computed value.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): microbenchmarks up to campaign scale.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


class Histogram:
    """A fixed-bucket histogram (cumulative counts live in ``counts[i]``).

    ``counts`` has ``len(buckets) + 1`` entries; the last one is the overflow
    bucket (observations above the largest boundary).
    """

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be a non-empty sorted sequence")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for boundary in self.buckets:
            if value <= boundary:
                break
            index += 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0..1) from the bucket counts.

        Returns the upper boundary of the bucket holding the target rank
        (``max`` for the overflow bucket) — coarse but monotone, which is all
        the per-stage summary tables need.
        """
        if self.count == 0:
            return None
        target = max(1, int(q * self.count + 0.5))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max  # pragma: no cover - defensive

    def to_snapshot(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    def merge_snapshot(self, snap: Mapping[str, object]) -> None:
        if tuple(snap["buckets"]) != self.buckets:
            raise ValueError("cannot merge histograms with different bucket boundaries")
        for index, value in enumerate(snap["counts"]):
            self.counts[index] += int(value)
        self.sum += float(snap["sum"])
        self.count += int(snap["count"])
        for attr, pick in (("min", min), ("max", max)):
            other = snap.get(attr)
            if other is not None:
                mine = getattr(self, attr)
                setattr(self, attr, float(other) if mine is None else pick(mine, float(other)))


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(buckets)
            histogram.observe(value)

    # -- read access -------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram_names(self) -> List[str]:
        with self._lock:
            return sorted(self._histograms)

    # -- snapshot / merge --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-JSON representation of the registry's current state."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.to_snapshot()
                    for name, histogram in self._histograms.items()
                },
            }

    def merge(self, snap: Mapping[str, object]) -> None:
        """Fold a snapshot into this registry (counters/histograms add, gauges overwrite)."""
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + float(value)
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, hist_snap in snap.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(hist_snap["buckets"])
                histogram.merge_snapshot(hist_snap)

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snap)
        return registry


# -- process-local default registry ------------------------------------------------

_registry = MetricsRegistry()
_enabled = False


def registry() -> MetricsRegistry:
    """The process-local default registry the helpers write to."""
    return _registry


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one).

    Sweep workers install a fresh registry per scenario so each outcome ships
    exactly the metrics that scenario produced.
    """
    global _registry
    previous = _registry
    _registry = new
    return previous


def enable() -> None:
    """Turn metric collection on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn metric collection off (the registry's contents are kept)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether the instrumentation helpers currently record anything."""
    return _enabled


def inc(name: str, value: float = 1.0) -> None:
    """Increment a counter on the default registry (no-op while disabled)."""
    if _enabled:
        _registry.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the default registry (no-op while disabled)."""
    if _enabled:
        _registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the default registry (no-op while disabled)."""
    if _enabled:
        _registry.observe(name, value)
