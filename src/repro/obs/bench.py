"""Host-environment stamp for benchmark artifacts.

Every ``BENCH_*.json`` writer merges :func:`bench_env` into its payload, so a
benchmark number always travels with the machine that produced it — without
it, the perf trajectory across PRs silently mixes 1-core CI containers with
8-core laptops.  The fields are registered (and required) by
``benchmarks/check_bench_schema.py``:

* ``env_cpu_count`` — CPUs the process may actually run on (affinity-aware),
* ``env_python`` — the CPython version string,
* ``env_platform`` — OS/architecture identification.

Values are flat JSON scalars to satisfy the shared bench schema.
"""

from __future__ import annotations

import os
import platform
from typing import Dict

#: The env fields every benchmark artifact must carry.
BENCH_ENV_FIELDS = ("env_cpu_count", "env_python", "env_platform")


def visible_cpus() -> int:
    """CPUs this process may run on (scheduler affinity beats ``cpu_count``)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def bench_env() -> Dict[str, object]:
    """The host-metadata fields to merge into a benchmark payload."""
    return {
        "env_cpu_count": visible_cpus(),
        "env_python": platform.python_version(),
        "env_platform": platform.platform(),
    }
