"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 517 editable installs
(which build a wheel) are unavailable; this shim enables the legacy
``pip install -e . --no-build-isolation --no-use-pep517`` path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
