"""ISP traffic study: reproduce the Section 5 analyses on synthetic NetFlow.

This example mirrors the workflow of a network analyst at the residential ISP:

1. take the backend address sets produced by the discovery pipeline,
2. exclude subscriber lines hosting Internet-wide scanners,
3. study per-provider activity, traffic direction, port usage, per-subscriber
   volumes, and how much traffic crosses continent borders.

Provider names are anonymized (T1..T4 / D1..D6 / O1..O6) exactly as in the paper.

Run with::

    python examples/isp_traffic_study.py
"""

from __future__ import annotations

from repro.core.report import format_bytes, format_percent
from repro.experiments.context import build_context
from repro.experiments.traffic_experiments import (
    fig5_scanner_threshold,
    fig8_subscriber_activity,
    fig10_direction_ratio,
    fig11_port_mix,
    fig12_per_subscriber_volumes,
    fig13_fig14_region_crossing,
)
from repro.simulation.config import ScenarioConfig


def main(config: "ScenarioConfig | None" = None) -> None:
    config = config or ScenarioConfig.small(seed=11).with_overrides(n_subscriber_lines=1500)
    print("Building world, running discovery, generating one week of NetFlow...")
    context = build_context(config)

    sweep = fig5_scanner_threshold(context)
    print("\nScanner exclusion (Figure 5):")
    for point in sweep.points:
        print(
            f"  threshold {point.threshold:>4}: {point.scanner_line_count:>3} scanner lines, "
            f"backend coverage {format_percent(point.server_coverage_fraction)}"
        )

    activity = fig8_subscriber_activity(context, min_lines_per_hour=5)
    print("\nSubscriber-line activity (Figure 8): total active line-hours per provider")
    for label in activity.providers():
        print(f"  {label:<3} {int(activity.total(label)):>8}  (peak hour {activity.peak_hour(label)}:00)")

    ratios = fig10_direction_ratio(context)
    print("\nDownstream/upstream ratios (Figure 10):")
    for label, ratio in ratios.overall.items():
        direction = "downstream-heavy" if ratio > 1.2 else ("upstream-heavy" if ratio < 0.8 else "balanced")
        print(f"  {label:<3} {ratio:5.2f}  {direction}")

    mix = fig11_port_mix(context)
    print("\nDominant port per provider (Figure 11):")
    for label in mix.mix:
        dominant = mix.dominant_port(label)
        print(f"  {label:<3} {dominant:<22} {format_percent(mix.share(label, dominant))}")

    volumes = fig12_per_subscriber_volumes(context)
    print("\nPer-subscriber daily volume (Figure 12a):")
    print(f"  median downstream {format_bytes(volumes.total_down.quantile(0.5))}")
    print(f"  99th percentile   {format_bytes(volumes.total_down.quantile(0.99))}")

    regions = fig13_fig14_region_crossing(context)
    print("\nCrossing region borders (Figures 13 and 14):")
    for category, share in regions.report.line_categories.items():
        print(f"  lines contacting {category:<12} {format_percent(share)}")
    for continent, share in regions.report.traffic_by_continent.items():
        print(f"  traffic to servers in {continent:<3} {format_percent(share)}")


if __name__ == "__main__":
    main()
