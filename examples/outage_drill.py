"""Outage drill: quantify the impact of a cloud-region outage on IoT traffic.

Replays the December 2021 study period, during which the ``us-east-1`` region of a
major cloud provider suffered a large-scale outage (Section 6.1 of the paper), and
then runs a hypothetical drill with a more severe outage to illustrate how the same
tooling supports what-if analyses.

Run with::

    python examples/outage_drill.py
"""

from __future__ import annotations

from repro.core.disruption import GROUP_EU, GROUP_US_EAST, outage_impact
from repro.core.report import format_percent
from repro.experiments.context import build_context
from repro.experiments.disruption_experiments import (
    fig15_fig16_outage,
    sec62_potential_disruptions,
)
from repro.outage.injector import OutageSchedule, aws_us_east_1_outage
from repro.simulation.config import ScenarioConfig


def main(config: "ScenarioConfig | None" = None) -> None:
    config = config or ScenarioConfig.small(seed=23).with_overrides(n_subscriber_lines=1500)
    print("Building world and replaying the December 2021 outage week...")
    context = build_context(config)

    result = fig15_fig16_outage(context, provider_label="T1")
    print("\nObserved impact on the affected provider (T1):")
    print(f"  downstream traffic drop, US-East regions : {format_percent(result.traffic_drop_us_east())}")
    print(f"  downstream traffic drop, EU regions      : {format_percent(result.traffic_drop_eu())}")
    print(f"  subscriber-line drop, US-East regions    : {format_percent(result.line_drop_us_east())}")
    print(f"  EU / US-East traffic ratio               : {result.eu_to_us_traffic_ratio():.1f}x")

    # What-if: a more severe outage that also breaks device retries.
    print("\nWhat-if drill: a harsher outage (80% capacity loss, devices give up)...")
    world = context.world
    world.outage_schedule = OutageSchedule(
        [aws_us_east_1_outage(traffic_retention=0.2, device_retention=0.6)]
    )
    world._flow_cache.clear()
    flows = world.flows(config.outage_period)
    window = result.report.outage_window
    drill = outage_impact(flows, context.anonymization.provider("T1"), window)
    print(f"  downstream traffic drop, US-East regions : {format_percent(drill.drop_vs_previous_week(GROUP_US_EAST))}")
    print(f"  subscriber-line drop, US-East regions    : {format_percent(drill.line_drop_vs_previous_week(GROUP_US_EAST))}")
    print(f"  downstream traffic drop, EU regions      : {format_percent(drill.drop_vs_previous_week(GROUP_EU))}")

    print("\nPotential disruptions during the main study week (Section 6.2):")
    disruptions = sec62_potential_disruptions(context)
    for kind, count in disruptions.bgp.counts_by_kind.items():
        print(f"  {kind.value:<16} {count}")
    print(f"  events touching backends: {len(disruptions.bgp.affecting_events)}")
    print(
        f"  backend IPs on blocklists: {disruptions.blocklists.total_listed_ips} "
        f"across {len(disruptions.blocklists.providers_affected())} providers"
    )


if __name__ == "__main__":
    main()
