"""Provider audit: inspect one IoT backend provider with the library's tooling.

For a chosen provider, the script shows the artefacts an analyst would work with:
the generated domain regular expressions and external-service queries (Appendix A),
the discovered footprint (addresses, prefixes, ASes, locations), the contribution of
each data source, and the provider's exposure to blocklists.

Run with::

    python examples/provider_audit.py [provider-key]

where ``provider-key`` is e.g. ``amazon``, ``google``, ``siemens`` (default: google).
"""

from __future__ import annotations

import sys

from repro.core.patterns import build_patterns, censys_string_queries, dnsdb_basic_queries, dnsdb_flex_query
from repro.core.providers import get_provider, provider_keys
from repro.core.report import format_percent
from repro.core.source_attribution import CATEGORIES, source_breakdown
from repro.experiments.context import build_context
from repro.simulation.config import ScenarioConfig


def main(key: "str | None" = None, config: "ScenarioConfig | None" = None) -> None:
    if key is None:
        key = sys.argv[1] if len(sys.argv) > 1 else "google"
    if key not in provider_keys():
        raise SystemExit(f"unknown provider {key!r}; choose one of {', '.join(provider_keys())}")
    spec = get_provider(key)

    print(f"=== {spec.name} ===")
    print(f"strategy: {spec.strategy}; cloud hosts: {', '.join(spec.cloud_hosts) or 'none'}")
    print(f"documented protocols: {', '.join(o.label for o in spec.protocols)}")

    print("\nDomain patterns (Section 3.2):")
    for pattern in build_patterns(spec):
        print(f"  regex: {pattern.regex}")
    print(f"  DNSDB flexible search: {dnsdb_flex_query(spec)}")
    for query in dnsdb_basic_queries(spec):
        print(f"  DNSDB basic search:    {query}")
    for query in censys_string_queries(spec)[:3]:
        print(f"  Censys string search:  {query}")

    print("\nRunning discovery on the synthetic measurement environment...")
    context = build_context(config or ScenarioConfig.small(seed=7))
    result = context.result
    footprint = result.footprints.get(key)
    if footprint is None:
        print("  no footprint discovered for this provider in the small scenario")
        return
    print(
        f"  discovered {footprint.ipv4_count} IPv4 / {footprint.ipv6_count} IPv6 addresses in "
        f"{footprint.prefix_count} prefixes announced by {footprint.as_count} AS(es)"
    )
    print(
        f"  locations: {footprint.location_count} ({', '.join(footprint.countries)}); "
        f"inferred strategy: {footprint.strategy}"
    )

    breakdown = source_breakdown(result.combined, key, ip_version=4)
    print("\nContribution of each data source (Figure 3):")
    for category in CATEGORIES:
        print(f"  {category:<20} {format_percent(breakdown.fraction(category))}")

    matches = context.world.blocklists.check_many(sorted(result.combined.ips(key)))
    print(f"\nBlocklist exposure (Section 6.2): {len(matches)} listed address(es)")
    for ip, hits in matches.items():
        lists = ", ".join(sorted({hit.list_name for hit in hits}))
        print(f"  {ip} -> {lists}")


if __name__ == "__main__":
    main()
