"""Quickstart: discover and characterize the IoT backend ecosystem.

Builds a small synthetic measurement environment, runs the paper's discovery
methodology end to end (domain patterns -> certificate scans + passive/active DNS
-> validation -> footprint characterization), and prints the Table-1 style summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from typing import Optional

from repro.core.pipeline import DiscoveryPipeline
from repro.core.report import format_count, render_table
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import build_world


def main(config: Optional[ScenarioConfig] = None) -> None:
    # A reduced scenario keeps the example fast; drop the override for the
    # benchmark-scale world.
    config = config or ScenarioConfig.small(seed=7)
    print(f"Building synthetic world (seed={config.seed}, {config.n_subscriber_lines} subscriber lines)...")
    world = build_world(config)
    print(
        f"  {len(world.all_servers())} backend servers across {len(world.deployments)} providers, "
        f"{len(world.passive_dns)} passive DNS observations, "
        f"{len(world.hitlist)} IPv6 hitlist entries"
    )

    print("Running the discovery pipeline over the study week (Feb 28 - Mar 7, 2022)...")
    pipeline = DiscoveryPipeline(world)
    result = pipeline.run()

    combined = result.combined
    print(
        f"  discovered {format_count(len(combined.ipv4_ips()))} IPv4 and "
        f"{format_count(len(combined.ipv6_ips()))} IPv6 backend addresses; "
        f"{result.validation.shared_count()} shared addresses excluded by validation"
    )

    rows = [
        [
            row["provider"],
            row["as_count"],
            row["ipv4_slash24"],
            row["ipv6_slash56"],
            row["locations"],
            row["countries"],
            row["strategy"],
        ]
        for row in result.table1_rows()
    ]
    print()
    print(
        render_table(
            ["Backend Provider", "#AS", "#IPv4 /24", "IPv6 /56", "#Locations", "#Countries", "Strategy"],
            rows,
            title="Table 1 (reproduced): IoT backend characteristics",
        )
    )

    print()
    print("Ground-truth validation (providers that publish their ranges):")
    for key, report in sorted(result.ground_truth.items()):
        print(
            f"  {key:<10} discovered {report.discovered_count:>4} addresses, "
            f"{report.discovered_inside} inside published ranges "
            f"(precision {report.precision:.0%})"
        )


if __name__ == "__main__":
    main()
