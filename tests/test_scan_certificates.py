"""Tests for the certificate model."""

from datetime import date

import pytest

from repro.scan.certificates import Certificate, certificates_valid_during, make_certificate


def test_make_certificate_sets_cn_and_sans():
    cert = make_certificate(["a.example", "b.example", "*.c.example"])
    assert cert.subject_common_name == "a.example"
    assert cert.san_dns_names == ("b.example", "*.c.example")
    assert cert.all_dns_names() == ("a.example", "b.example", "*.c.example")


def test_make_certificate_requires_names():
    with pytest.raises(ValueError):
        make_certificate([])


def test_all_dns_names_deduplicates():
    cert = Certificate("a.example", ("a.example", "b.example"))
    assert cert.all_dns_names() == ("a.example", "b.example")


def test_validity_checks():
    cert = Certificate("a.example", not_before=date(2022, 1, 1), not_after=date(2022, 6, 30))
    assert cert.is_valid_on(date(2022, 3, 1))
    assert not cert.is_valid_on(date(2021, 12, 31))
    assert cert.is_valid_during(date(2022, 6, 1), date(2022, 7, 15))
    assert not cert.is_valid_during(date(2022, 7, 1), date(2022, 8, 1))


def test_certificates_valid_during_filter():
    valid = Certificate("a.example", not_before=date(2022, 1, 1), not_after=date(2023, 1, 1))
    expired = Certificate("b.example", not_before=date(2020, 1, 1), not_after=date(2021, 1, 1))
    selected = certificates_valid_during([valid, expired], date(2022, 2, 28), date(2022, 3, 7))
    assert selected == [valid]


def test_covers_domain_exact_and_wildcard():
    cert = Certificate("gw.iot.example", ("*.iot.eu-west-1.amazonaws.com",))
    assert cert.covers_domain("gw.iot.example")
    assert cert.covers_domain("GW.IOT.EXAMPLE.")
    assert cert.covers_domain("tenant.iot.eu-west-1.amazonaws.com")
    # Wildcards cover exactly one label.
    assert not cert.covers_domain("a.b.iot.eu-west-1.amazonaws.com")
    assert not cert.covers_domain("iot.eu-west-1.amazonaws.com")
    assert not cert.covers_domain("other.example")


def test_serials_are_unique():
    assert make_certificate(["a.example"]).serial != make_certificate(["a.example"]).serial
