"""Tests for the port-scan-only and TLS-only baselines."""

from repro.baselines.portscan_only import portscan_only_discovery
from repro.baselines.tls_only import tls_only_discovery
from repro.core.discovery import BackendDiscovery


def test_tls_only_discovery_is_subset_of_full(small_world, small_pipeline_result):
    period = small_world.config.study_period
    snapshots = [small_world.censys.snapshot(day) for day in period.days()]
    tls_only = tls_only_discovery(snapshots)
    full = small_pipeline_result.combined
    assert tls_only.ips().issubset(full.ips())
    # DNS-based sources add addresses beyond certificates alone.
    assert len(tls_only.ips()) < len(full.ips())


def test_tls_only_misses_sni_providers(small_world, small_pipeline_result):
    period = small_world.config.study_period
    snapshots = [small_world.censys.snapshot(day) for day in period.days()]
    tls_only = tls_only_discovery(snapshots)
    full = small_pipeline_result.combined
    # Google requires SNI, so certificate scans find (almost) none of its IPs.
    assert len(tls_only.ips("google")) < len(full.ips("google"))


def test_portscan_baseline_reports_misses(small_world, small_pipeline_result):
    snapshot = small_world.censys.snapshot(small_world.config.study_period.start)
    report = portscan_only_discovery(snapshot, small_pipeline_result.combined)
    assert report.reference_ips
    assert 0.0 <= report.recall <= 1.0
    assert report.miss_fraction == 1.0 - report.recall
    # Port scanning alone misses part of the backend (web-port-only deployments).
    assert report.missed_backends
    # Every candidate is unattributable without domain knowledge.
    assert report.unattributable == report.candidate_ips


def test_portscan_baseline_on_empty_snapshot(small_world):
    from repro.core.discovery import DiscoveryResult
    from repro.scan.censys import CensysSnapshot
    from datetime import date

    empty = CensysSnapshot(snapshot_date=date(2022, 2, 28))
    report = portscan_only_discovery(empty, DiscoveryResult())
    assert report.recall == 0.0
    assert not report.candidate_ips
