"""Tests for domain naming schemes and FQDN construction."""

import pytest

from repro.dns.names import (
    REGION_STYLE_AIRPORT,
    REGION_STYLE_CODE,
    REGION_STYLE_NONE,
    REGION_STYLE_ZONE,
    SUBDOMAIN_CUSTOMER,
    SUBDOMAIN_FIXED,
    SUBDOMAIN_SERVICE,
    DomainNamingScheme,
    build_fqdn,
    region_label,
    registrable_suffix,
)


def test_customer_scheme_with_region():
    scheme = DomainNamingScheme("amazonaws.com", SUBDOMAIN_CUSTOMER, ("iot",), REGION_STYLE_CODE)
    name = build_fqdn(scheme, customer_id="tenant-1", region="eu-west-1")
    assert name == "tenant-1.iot.eu-west-1.amazonaws.com"


def test_customer_scheme_without_label_or_region():
    scheme = DomainNamingScheme("azure-devices.net", SUBDOMAIN_CUSTOMER, (), REGION_STYLE_NONE)
    assert build_fqdn(scheme, customer_id="hub1") == "hub1.azure-devices.net"


def test_customer_scheme_requires_customer_id():
    scheme = DomainNamingScheme("example.com", SUBDOMAIN_CUSTOMER)
    with pytest.raises(ValueError):
        build_fqdn(scheme)


def test_service_scheme():
    scheme = DomainNamingScheme(
        "myhuaweicloud.com", SUBDOMAIN_SERVICE, ("iot-mqtts", "iot-https"), REGION_STYLE_CODE
    )
    assert build_fqdn(scheme, region="cn-north-4") == "iot-mqtts.cn-north-4.myhuaweicloud.com"
    assert (
        build_fqdn(scheme, service_label="iot-https", region="cn-north-4")
        == "iot-https.cn-north-4.myhuaweicloud.com"
    )


def test_fixed_scheme():
    scheme = DomainNamingScheme(
        "googleapis.com", SUBDOMAIN_FIXED, fixed_fqdns=("mqtt.googleapis.com",)
    )
    assert build_fqdn(scheme) == "mqtt.googleapis.com"


def test_fixed_scheme_requires_fqdns():
    with pytest.raises(ValueError):
        DomainNamingScheme("googleapis.com", SUBDOMAIN_FIXED)


def test_invalid_kinds_rejected():
    with pytest.raises(ValueError):
        DomainNamingScheme("example.com", subdomain_kind="bogus")
    with pytest.raises(ValueError):
        DomainNamingScheme("example.com", region_style="bogus")


def test_region_label_styles():
    code = DomainNamingScheme("x.com", region_style=REGION_STYLE_CODE)
    airport = DomainNamingScheme("x.com", region_style=REGION_STYLE_AIRPORT)
    zone = DomainNamingScheme("x.com", region_style=REGION_STYLE_ZONE, zone_labels=("eu1", "eu2"))
    none = DomainNamingScheme("x.com", region_style=REGION_STYLE_NONE)
    assert region_label(code, "eu-central-1", "fra") == "eu-central-1"
    assert region_label(airport, "eu-central-1", "fra") == "fra"
    assert region_label(zone, "eu-central-1", "fra", zone_index=1) == "eu2"
    assert region_label(none, "eu-central-1", "fra") is None


def test_registrable_suffix():
    scheme = DomainNamingScheme("iot.sap", SUBDOMAIN_CUSTOMER, ("device-connectivity",))
    assert registrable_suffix("tenant.device-connectivity.eu10.iot.sap", scheme)
    assert not registrable_suffix("tenant.example.com", scheme)
