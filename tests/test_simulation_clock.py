"""Tests for the simulated clock and study periods."""

from datetime import date, datetime

import pytest

from repro.simulation.clock import (
    AWS_OUTAGE_DATE,
    MAIN_STUDY_PERIOD,
    OUTAGE_STUDY_PERIOD,
    StudyPeriod,
    hour_bins,
    is_night_hour,
)


def test_main_period_matches_paper():
    assert MAIN_STUDY_PERIOD.start == date(2022, 2, 28)
    assert MAIN_STUDY_PERIOD.end == date(2022, 3, 7)
    assert MAIN_STUDY_PERIOD.n_days == 7


def test_outage_period_contains_outage_date():
    assert OUTAGE_STUDY_PERIOD.contains(AWS_OUTAGE_DATE)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        StudyPeriod(date(2022, 3, 7), date(2022, 2, 28))


def test_days_and_hours_counts():
    period = StudyPeriod(date(2022, 1, 1), date(2022, 1, 4))
    assert len(period.days()) == 3
    assert period.n_hours == 72
    assert len(list(period.hours())) == 72


def test_hours_are_in_order_and_hourly():
    period = StudyPeriod(date(2022, 1, 1), date(2022, 1, 2))
    hours = list(period.hours())
    assert hours[0] == datetime(2022, 1, 1, 0)
    assert hours[-1] == datetime(2022, 1, 1, 23)
    assert all((b - a).total_seconds() == 3600 for a, b in zip(hours, hours[1:]))


def test_contains_accepts_datetime_and_date():
    assert MAIN_STUDY_PERIOD.contains(datetime(2022, 3, 1, 15))
    assert not MAIN_STUDY_PERIOD.contains(date(2022, 3, 7))


def test_first_and_last_timestamp():
    period = StudyPeriod(date(2022, 1, 1), date(2022, 1, 3))
    assert period.first_timestamp() == datetime(2022, 1, 1, 0)
    assert period.last_timestamp() == datetime(2022, 1, 2, 23)


def test_previous_week():
    previous = MAIN_STUDY_PERIOD.previous_week()
    assert previous.end == MAIN_STUDY_PERIOD.start
    assert previous.n_days == MAIN_STUDY_PERIOD.n_days


def test_night_hours():
    assert is_night_hour(22)
    assert is_night_hour(3)
    assert not is_night_hour(12)


def test_hour_bins_helper():
    assert hour_bins(MAIN_STUDY_PERIOD)[0] == MAIN_STUDY_PERIOD.first_timestamp()
    assert len(hour_bins(MAIN_STUDY_PERIOD)) == MAIN_STUDY_PERIOD.n_hours
