"""Smoke tests for the example scripts.

Each example is imported from ``examples/`` and executed end to end on a tiny
:class:`ScenarioConfig.small` variant, so the documented workflows cannot rot
as the library evolves.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.simulation.config import ScenarioConfig

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: Small enough to keep each example under a few seconds, large enough that
#: every example still has traffic/footprint to report on.
TINY = ScenarioConfig.small(seed=7).with_overrides(n_subscriber_lines=250, n_scanner_lines=2)


def load_example(name):
    """Import one example script as a throwaway module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_examples_directory_is_covered():
    """Every example script has a smoke test below."""
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {"quickstart", "provider_audit", "isp_traffic_study", "outage_drill"}


def test_quickstart_runs(capsys):
    load_example("quickstart").main(config=TINY)
    out = capsys.readouterr().out
    assert "Table 1 (reproduced)" in out
    assert "backend servers" in out


def test_provider_audit_runs(capsys):
    load_example("provider_audit").main(key="google", config=TINY)
    out = capsys.readouterr().out
    assert "Domain patterns" in out
    assert "Contribution of each data source" in out


def test_provider_audit_rejects_unknown_provider():
    with pytest.raises(SystemExit, match="unknown provider"):
        load_example("provider_audit").main(key="not-a-provider", config=TINY)


def test_isp_traffic_study_runs(capsys):
    load_example("isp_traffic_study").main(config=TINY)
    out = capsys.readouterr().out
    assert "Scanner exclusion (Figure 5)" in out
    assert "Per-subscriber daily volume" in out


def test_outage_drill_runs(capsys):
    load_example("outage_drill").main(config=TINY)
    out = capsys.readouterr().out
    assert "Observed impact on the affected provider" in out
    assert "What-if drill" in out
