"""Tests for shared-IP classification and ground-truth validation."""

from datetime import date, datetime

from repro.core.discovery import DiscoveredIP, DiscoveryResult
from repro.core.validation import (
    classify_shared_ips,
    traffic_coverage,
    validate_against_ground_truth,
)
from repro.dns.passive_db import PassiveDnsDatabase
from repro.flows.netflow import make_flow


def _result_with(ips):
    result = DiscoveryResult()
    for ip, provider in ips:
        result.add(DiscoveredIP(ip, provider, {"tls-certificates"}, {f"x.{provider}.example"}))
    return result


def test_shared_ip_excluded_when_many_non_iot_domains():
    result = _result_with([("10.0.0.1", "google"), ("10.0.0.2", "google")])
    db = PassiveDnsDatabase()
    for index in range(25):
        db.add_observation(f"www{index}.content.example", "10.0.0.1", date(2022, 2, 1))
    db.add_observation("mqtt.googleapis.com", "10.0.0.2", date(2022, 2, 1))
    classification = classify_shared_ips(result, db, threshold=10)
    assert classification.shared_ips("google") == {"10.0.0.1"}
    assert classification.dedicated.ips("google") == {"10.0.0.2"}
    assert classification.shared_count() == 1


def test_iot_domains_do_not_count_towards_threshold():
    result = _result_with([("10.0.0.1", "microsoft")])
    db = PassiveDnsDatabase()
    for index in range(30):
        db.add_observation(f"tenant{index}.azure-devices.net", "10.0.0.1", date(2022, 2, 1))
    classification = classify_shared_ips(result, db, threshold=10)
    assert classification.shared_count() == 0


def test_ground_truth_validation_counts_inside_and_outside():
    result = _result_with([("10.0.0.1", "cisco"), ("10.0.0.2", "cisco"), ("10.9.0.1", "cisco")])
    report = validate_against_ground_truth(result, "cisco", ["10.0.0.0/24"])
    assert report.discovered_count == 3
    assert report.discovered_inside == 2
    assert report.discovered_outside == 1
    assert not report.all_inside
    assert 0 < report.precision < 1
    assert report.published_address_count == 256


def test_ground_truth_validation_empty_result():
    report = validate_against_ground_truth(DiscoveryResult(), "cisco", ["10.0.0.0/24"])
    assert report.precision == 1.0
    assert report.all_inside


def test_traffic_coverage_underestimation():
    result = _result_with([("10.0.0.1", "microsoft")])
    flows = []
    for ip, volume in (("10.0.0.1", 9000.0), ("10.0.0.9", 100.0)):
        flows.append(
            make_flow(
                timestamp=datetime(2022, 2, 28, 10),
                subscriber_id=1,
                subscriber_prefix="p",
                ip_version=4,
                provider_key="microsoft",
                server_ip=ip,
                server_continent="EU",
                server_region="eu-west-1",
                transport="tcp",
                port=8883,
                bytes_down=volume,
                bytes_up=volume / 10,
            )
        )
    report = traffic_coverage(result, "microsoft", flows)
    assert report.active_server_ips == 2
    assert report.missed_ips == 1
    assert 0.0 < report.underestimation_fraction < 0.05


def test_traffic_coverage_with_no_flows():
    report = traffic_coverage(_result_with([("10.0.0.1", "microsoft")]), "microsoft", [])
    assert report.underestimation_fraction == 0.0
