"""Tests for the IPv6 hitlist and the ZGrab-like scanner."""

from datetime import date

import pytest

from repro.netmodel.geo import world_locations
from repro.netmodel.topology import BackendServer, ServiceEndpoint
from repro.scan.certificates import make_certificate
from repro.scan.hitlist import IPv6Hitlist
from repro.scan.tls import TlsServerConfig
from repro.scan.zgrab import ZGrabScanner, certificates_from_results

DAY = date(2022, 2, 28)


def _v6_server(ip: str, domain: str, require_client_cert: bool = False):
    cert = make_certificate([domain])
    tls = TlsServerConfig(default_certificate=cert, require_client_certificate=require_client_cert)
    return BackendServer(
        ip=ip,
        provider="acme",
        location=world_locations()[0],
        asn=65001,
        prefix="fd00::/56",
        endpoints=(
            ServiceEndpoint("tcp", 8883, "MQTTS", tls=tls),
            ServiceEndpoint("tcp", 443, "HTTPS", tls=tls),
        ),
        domains=(domain,),
    )


class TestHitlist:
    def test_add_and_membership(self):
        hitlist = IPv6Hitlist()
        hitlist.add("fd00::1")
        assert "fd00::1" in hitlist
        assert "fd00::2" not in hitlist
        assert "not-an-ip" not in hitlist
        assert len(hitlist) == 1

    def test_rejects_ipv4(self):
        with pytest.raises(ValueError):
            IPv6Hitlist().add("10.0.0.1")

    def test_merge_and_iteration_sorted(self):
        a = IPv6Hitlist(name="a")
        a.extend(["fd00::2", "fd00::1"])
        b = IPv6Hitlist(name="b")
        b.add("fd00::3")
        merged = a.merge(b)
        assert list(merged) == ["fd00::1", "fd00::2", "fd00::3"]
        assert len(merged) == 3


class TestZGrab:
    def test_scan_collects_certificates_for_hitlist_addresses(self):
        server = _v6_server("fd00::10", "gw.acme-iot.example")
        hitlist = IPv6Hitlist(addresses={"fd00::10"})
        results = ZGrabScanner().scan(DAY, hitlist, {server.ip: server})
        assert results
        assert any(r.certificate is not None for r in results)
        grouped = certificates_from_results(results)
        assert "fd00::10" in grouped

    def test_addresses_not_on_hitlist_are_not_probed(self):
        server = _v6_server("fd00::20", "gw.acme-iot.example")
        results = ZGrabScanner().scan(DAY, IPv6Hitlist(), {server.ip: server})
        assert results == []

    def test_unresponsive_hitlist_addresses_yield_nothing(self):
        hitlist = IPv6Hitlist(addresses={"fd00::99"})
        scanner = ZGrabScanner()
        assert scanner.scan(DAY, hitlist, {}) == []
        assert scanner.probes_sent == len(scanner.probed_ports)

    def test_client_cert_required_endpoint_yields_no_certificate(self):
        server = _v6_server("fd00::30", "gw.acme-iot.example", require_client_cert=True)
        hitlist = IPv6Hitlist(addresses={"fd00::30"})
        results = ZGrabScanner().scan(DAY, hitlist, {server.ip: server})
        assert results
        assert all(r.certificate is None for r in results)
        assert all(not r.handshake_success for r in results)
