"""Tests for the CoAP protocol model."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols.coap import (
    CoapMessage,
    CoapServerBehaviour,
    Code,
    MessageType,
    probe_server,
)


def test_message_roundtrip():
    message = CoapMessage(MessageType.CONFIRMABLE, Code.GET, 0x1234, token=b"\x01\x02", payload=b"hi")
    assert CoapMessage.decode(message.encode()) == message


def test_message_without_payload_roundtrip():
    message = CoapMessage(MessageType.NON_CONFIRMABLE, Code.GET, 7)
    assert CoapMessage.decode(message.encode()) == message


def test_invalid_token_and_message_id_rejected():
    with pytest.raises(ValueError):
        CoapMessage(MessageType.CONFIRMABLE, Code.GET, 1, token=b"123456789").encode()
    with pytest.raises(ValueError):
        CoapMessage(MessageType.CONFIRMABLE, Code.GET, 70_000).encode()


def test_decode_truncated_rejected():
    with pytest.raises(ValueError):
        CoapMessage.decode(b"\x40\x01")


def test_code_dotted_representation():
    assert Code.CONTENT.dotted == "2.05"
    assert Code.UNAUTHORIZED.dotted == "4.01"
    assert Code.CONTENT.code_class == 2


def test_server_requires_authentication():
    behaviour = CoapServerBehaviour(requires_authentication=True)
    request = CoapMessage(MessageType.CONFIRMABLE, Code.GET, 9, token=b"\x07")
    response = behaviour.handle(request)
    assert response.code == Code.UNAUTHORIZED
    assert response.token == request.token


def test_open_server_returns_content():
    behaviour = CoapServerBehaviour(requires_authentication=False)
    request = CoapMessage(MessageType.CONFIRMABLE, Code.GET, 9)
    response = behaviour.handle(request)
    assert response.code == Code.CONTENT
    assert b"well-known" in response.payload


def test_non_get_request_reset():
    behaviour = CoapServerBehaviour()
    request = CoapMessage(MessageType.CONFIRMABLE, Code.POST, 9)
    assert behaviour.handle(request).message_type == MessageType.RESET


def test_probe_server():
    result = probe_server(CoapServerBehaviour(requires_authentication=True))
    assert result.spoke_coap
    assert result.response_code == Code.UNAUTHORIZED


@given(
    st.sampled_from(list(MessageType)),
    st.sampled_from([Code.GET, Code.CONTENT, Code.NOT_FOUND, Code.UNAUTHORIZED]),
    st.integers(min_value=0, max_value=0xFFFF),
    st.binary(max_size=8),
    st.binary(max_size=32),
)
def test_roundtrip_property(message_type, code, message_id, token, payload):
    message = CoapMessage(message_type, code, message_id, token, payload)
    assert CoapMessage.decode(message.encode()) == message
