"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    args = parser.parse_args(["table1", "--small"])
    assert args.command == "table1"
    assert args.small


def test_unknown_command_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["bogus"])


def test_main_patterns_command_prints_table(capsys):
    exit_code = main(["patterns", "--small"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Table 2" in captured.out
    assert "DNSDB" in captured.out


def test_main_table1_small_scenario(capsys):
    exit_code = main(["table1", "--small", "--subscriber-lines", "400"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Amazon IoT" in captured.out


def test_main_discovery_summary(capsys):
    exit_code = main(["discovery", "--small", "--subscriber-lines", "400"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "discovered IPv4 addresses" in captured.out
