"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    args = parser.parse_args(["table1", "--small"])
    assert args.command == "table1"
    assert args.small


def test_unknown_command_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["bogus"])


def test_main_patterns_command_prints_table(capsys):
    exit_code = main(["patterns", "--small"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Table 2" in captured.out
    assert "DNSDB" in captured.out


def test_main_table1_small_scenario(capsys):
    exit_code = main(["table1", "--small", "--subscriber-lines", "400"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Amazon IoT" in captured.out


def test_main_discovery_summary(capsys):
    exit_code = main(["discovery", "--small", "--subscriber-lines", "400"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "discovered IPv4 addresses" in captured.out


def test_docstring_lists_every_registered_command():
    """The module docstring must stay in sync with the command registry."""
    import repro.cli as cli

    for name in cli._COMMANDS:
        assert f"iot-backend-repro {name}" in cli.__doc__, name
    for name in ("sweep", "cache"):
        assert f"iot-backend-repro {name}" in cli.__doc__, name


def test_scale_zero_is_rejected_by_the_parser():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table1", "--scale", "0"])
    with pytest.raises(SystemExit):
        parser.parse_args(["table1", "--scale", "-0.5"])
    with pytest.raises(SystemExit):
        parser.parse_args(["table1", "--subscriber-lines", "0"])


def test_explicit_scenario_options_are_applied():
    from repro.cli import _make_config

    parser = build_parser()
    args = parser.parse_args(["table1", "--small", "--scale", "0.5", "--subscriber-lines", "123"])
    config = _make_config(args)
    assert config.scale == 0.5
    assert config.n_subscriber_lines == 123
    # Omitted options keep the preset's values.
    args = parser.parse_args(["table1", "--small"])
    config = _make_config(args)
    assert config.scale == 0.01


def test_sweep_command_runs_a_grid(capsys, tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    exit_code = main(
        [
            "sweep",
            "--small",
            "--subscriber-lines", "40",
            "--axis", "sampling_ratio=1,4",
            "--metrics", "traffic",
            "--workers", "1",
            "--ledger", str(ledger),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Sweep results (2 scenarios)" in captured.out
    assert "sampling_ratio=1" in captured.out
    assert ledger.exists()
    assert len(ledger.read_text().splitlines()) == 2


def test_sweep_resume_reuses_completed_scenarios(capsys, tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    base_args = [
        "sweep",
        "--small",
        "--subscriber-lines", "40",
        "--axis", "sampling_ratio=1,4",
        "--metrics", "traffic",
        "--workers", "1",
    ]
    assert main([*base_args, "--ledger", str(ledger)]) == 0
    capsys.readouterr()
    exit_code = main([*base_args, "--resume", str(ledger)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "resumed from" in out
    assert "2 scenario(s) reused" in out and "0 re-run" in out
    assert len(ledger.read_text().splitlines()) == 2, "a full resume appends nothing"


def test_sweep_resume_rejects_missing_or_corrupt_ledger(capsys, tmp_path):
    args = ["sweep", "--small", "--subscriber-lines", "40", "--axis", "sampling_ratio=1"]
    with pytest.raises(SystemExit) as excinfo:
        main([*args, "--resume", str(tmp_path / "nope.jsonl")])
    assert excinfo.value.code == 2
    assert "--resume" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema": 99}\n{"schema": 99}\n')
    with pytest.raises(SystemExit) as excinfo:
        main([*args, "--resume", str(bad)])
    assert excinfo.value.code == 2
    assert "unknown ledger schema" in capsys.readouterr().err


def test_sweep_retry_and_timeout_flags_reach_the_runner():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "sweep", "--small", "--axis", "sampling_ratio=1",
            "--retries", "2", "--timeout", "30", "--backoff", "0.1", "--max-failures", "5",
        ]
    )
    assert args.retries == 2
    assert args.timeout == 30.0
    assert args.backoff == 0.1
    assert args.max_failures == 5


def test_sweep_rejects_bad_axis(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--small", "--axis", "bogus_field=1,2"])


def test_cache_ls_and_prune(capsys, tmp_path):
    store = tmp_path / "store"
    exit_code = main(["cache", "ls", "--store", str(store)])
    assert exit_code == 0
    assert "is empty" in capsys.readouterr().out

    main(
        [
            "sweep",
            "--small",
            "--subscriber-lines", "40",
            "--axis", "sampling_ratio=1,4",
            "--workers", "1",
            "--store", str(store),
        ]
    )
    capsys.readouterr()
    exit_code = main(["cache", "ls", "--store", str(store)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "raw-export" in out

    exit_code = main(["cache", "prune", "--store", str(store)])
    assert exit_code == 0
    assert "pruned" in capsys.readouterr().out
    exit_code = main(["cache", "ls", "--store", str(store)])
    assert "is empty" in capsys.readouterr().out


def test_sweep_rejects_invalid_axis_value_as_parser_error(capsys):
    """A value that parses but fails config validation is a clean parser error."""
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--small", "--axis", "scale=-1"])
    assert excinfo.value.code == 2
    assert "scale must be positive" in capsys.readouterr().err


def test_sweep_exits_nonzero_when_scenarios_fail(capsys, monkeypatch):
    from repro.sweeps import metrics as metrics_module

    def explode(context):
        raise RuntimeError("boom")

    monkeypatch.setitem(metrics_module.SWEEP_METRICS, "traffic", explode)
    exit_code = main(
        ["sweep", "--small", "--subscriber-lines", "40", "--axis", "sampling_ratio=1"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "1 of 1 scenarios FAILED" in out
    assert "boom" in out
