"""Tests for the scenario grid and the multiprocess sweep runner."""

import json

import pytest

from repro.simulation.config import ScenarioConfig
from repro.sweeps import ScenarioGrid, SweepResult, SweepRunner
from repro.sweeps.metrics import available_metrics, resolve_metrics


def _base(**overrides) -> ScenarioConfig:
    return ScenarioConfig.small(seed=41).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1, **overrides
    )


class TestScenarioGrid:
    def test_expansion_order_and_ids(self):
        grid = ScenarioGrid(_base(), {"sampling_ratio": (1, 10), "scale": (0.01, 0.02)})
        assert len(grid) == 4
        specs = grid.specs()
        assert [spec.scenario_id for spec in specs] == [
            "sampling_ratio=1,scale=0.01",
            "sampling_ratio=1,scale=0.02",
            "sampling_ratio=10,scale=0.01",
            "sampling_ratio=10,scale=0.02",
        ]
        assert specs[2].config.sampling_ratio == 10
        assert specs[2].config.scale == 0.01
        assert specs[2].axes_dict == {"sampling_ratio": 10, "scale": 0.01}
        # Non-axis fields come from the base config.
        assert all(spec.config.n_subscriber_lines == 40 for spec in specs)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            ScenarioGrid(_base(), {"not_a_field": (1,)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ScenarioGrid(_base(), {"scale": ()})
        with pytest.raises(ValueError, match="at least one axis"):
            ScenarioGrid(_base(), {})

    def test_invalid_config_values_fail_at_expansion(self):
        grid = ScenarioGrid(_base(), {"scale": (0.01, -1.0)})
        with pytest.raises(ValueError, match="scale must be positive"):
            grid.specs()

    def test_from_strings_converts_field_types(self):
        grid = ScenarioGrid.from_strings(
            _base(), ["sampling_ratio=1,10", "volume_sigma=0.5,0.75"]
        )
        specs = grid.specs()
        assert isinstance(specs[0].config.sampling_ratio, int)
        assert isinstance(specs[0].config.volume_sigma, float)
        assert len(grid) == 4

    def test_from_strings_rejects_malformed_axes(self):
        with pytest.raises(ValueError, match="malformed axis"):
            ScenarioGrid.from_strings(_base(), ["scale"])
        with pytest.raises(ValueError, match="unknown scenario axis"):
            ScenarioGrid.from_strings(_base(), ["bogus=1"])
        with pytest.raises(ValueError, match="non-scalar"):
            ScenarioGrid.from_strings(_base(), ["study_period=x"])


class TestMetrics:
    def test_registry_contents(self):
        assert set(available_metrics()) == {"discovery", "outage", "traffic"}

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown sweep metric"):
            resolve_metrics(("traffic", "bogus"))


class TestSweepRunner:
    @pytest.fixture(scope="class")
    def grid(self):
        return ScenarioGrid(
            _base(), {"sampling_ratio": (1, 8), "volume_sigma": (0.5, 0.75)}
        )

    @pytest.fixture(scope="class")
    def serial(self, grid):
        return SweepRunner(metrics=("traffic",), workers=1).run(grid)

    def test_serial_run_shape(self, grid, serial):
        assert len(serial) == 4
        assert serial.failures() == []
        assert [outcome.scenario_id for outcome in serial.outcomes] == [
            spec.scenario_id for spec in grid.specs()
        ]
        for outcome in serial.outcomes:
            assert outcome.metrics["clean_flows"] > 0
            assert outcome.elapsed_seconds > 0

    def test_parallel_results_bit_identical_to_serial(self, grid, serial):
        """The acceptance bar: >= 4 scenarios over >= 2 workers, identical results."""
        parallel = SweepRunner(metrics=("traffic",), workers=2).run(grid)
        assert [outcome.scenario_id for outcome in parallel.outcomes] == [
            outcome.scenario_id for outcome in serial.outcomes
        ]
        for mine, theirs in zip(serial.outcomes, parallel.outcomes):
            assert mine.metrics == theirs.metrics
            assert mine.config_digest == theirs.config_digest
            assert theirs.error is None

    def test_ledger_round_trip(self, grid, serial, tmp_path):
        path = tmp_path / "ledger.jsonl"
        serial.write_ledger(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            row = json.loads(line)
            assert row["schema"] == 2
            assert row["error"] is None
            assert row["status"] == "ok"
            assert row["attempt"] == 1
            assert row["worker_id"]
            assert row["ended_at"] >= row["started_at"] > 0
        restored = SweepResult.read_ledger(path)
        assert [outcome.metrics for outcome in restored.outcomes] == [
            outcome.metrics for outcome in serial.outcomes
        ]
        assert restored.axis_names == ("sampling_ratio", "volume_sigma")

    def test_pivot_table(self, serial):
        rows = serial.pivot("clean_flows", "sampling_ratio", "volume_sigma")
        assert rows[0] == ["sampling_ratio", "volume_sigma=0.5", "volume_sigma=0.75"]
        assert [row[0] for row in rows[1:]] == [1, 8]
        assert all(isinstance(cell, float) for row in rows[1:] for cell in row[1:])
        rendered = serial.render_pivot("clean_flows", "sampling_ratio", "volume_sigma")
        assert "clean_flows vs. sampling_ratio x volume_sigma" in rendered

    def test_pivot_unknown_axis_rejected(self, serial):
        with pytest.raises(ValueError, match="unknown axis"):
            serial.pivot("clean_flows", "not_an_axis")

    def test_render_results_lists_every_scenario(self, serial):
        rendered = serial.render_results()
        for outcome in serial.outcomes:
            assert outcome.scenario_id in rendered

    def test_failed_scenarios_are_recorded_not_raised(self, monkeypatch):
        from repro.sweeps import metrics as metrics_module

        def explode(context):
            raise RuntimeError("metric blew up")

        monkeypatch.setitem(metrics_module.SWEEP_METRICS, "traffic", explode)
        result = SweepRunner(metrics=("traffic",), workers=1).run(
            ScenarioGrid(_base(), {"sampling_ratio": (1,)})
        )
        assert len(result.failures()) == 1
        assert "metric blew up" in result.failures()[0].error

    def test_runner_validates_arguments(self):
        with pytest.raises(ValueError, match="unknown sweep metric"):
            SweepRunner(metrics=("bogus",))
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(workers=0)

    def test_store_backed_rerun_is_identical(self, grid, serial, tmp_path):
        """A sweep over a shared store warm-starts and stays bit-identical."""
        store_root = tmp_path / "store"
        first = SweepRunner(metrics=("traffic",), workers=2, store=store_root).run(grid)
        second = SweepRunner(metrics=("traffic",), workers=1, store=store_root).run(grid)
        for cold, warm, reference in zip(first.outcomes, second.outcomes, serial.outcomes):
            assert cold.metrics == reference.metrics
            assert warm.metrics == reference.metrics
        assert any(store_root.iterdir())


def test_from_strings_rejects_repeated_axis():
    with pytest.raises(ValueError, match="more than once"):
        ScenarioGrid.from_strings(_base(), ["scale=0.01", "scale=0.02"])
