"""Tests for the DNSDB-like passive DNS database."""

from datetime import date

import pytest
from hypothesis import given, strategies as st

from repro.dns.passive_db import PassiveDnsDatabase, PassiveDnsRecord


def _db_with_records() -> PassiveDnsDatabase:
    db = PassiveDnsDatabase()
    db.add_observation("tenant.iot.eu-west-1.amazonaws.com", "10.0.0.1", date(2022, 1, 1), date(2022, 3, 10))
    db.add_observation("tenant.iot.eu-west-1.amazonaws.com", "10.0.0.2", date(2021, 1, 1), date(2021, 6, 1))
    db.add_observation("mqtt.googleapis.com", "10.1.0.1", date(2022, 2, 1), date(2022, 3, 1))
    db.add_observation("www.unrelated.example", "10.2.0.1", date(2022, 2, 1), date(2022, 3, 1))
    db.add_observation("gw.iot.example", "fd00::1", date(2022, 2, 1))
    return db


def test_record_validation():
    with pytest.raises(ValueError):
        PassiveDnsRecord("a.example", "A", "10.0.0.1", date(2022, 2, 1), date(2022, 1, 1))


def test_add_observation_infers_rrtype():
    db = PassiveDnsDatabase()
    a = db.add_observation("a.example", "10.0.0.1", date(2022, 1, 1))
    aaaa = db.add_observation("b.example", "fd00::1", date(2022, 1, 1))
    assert a.rrtype == "A"
    assert aaaa.rrtype == "AAAA"
    assert len(db) == 2


def test_flex_search_with_time_range():
    db = _db_with_records()
    in_window = db.flex_search(r"\.iot\..*\.amazonaws\.com", since=date(2022, 2, 28), until=date(2022, 3, 7))
    assert {r.rdata for r in in_window} == {"10.0.0.1"}
    all_time = db.flex_search(r"\.iot\..*\.amazonaws\.com")
    assert {r.rdata for r in all_time} == {"10.0.0.1", "10.0.0.2"}


def test_flex_search_matches_trailing_dot_patterns():
    db = _db_with_records()
    results = db.flex_search(r"mqtt\.googleapis\.com\.$")
    assert {r.rdata for r in results} == {"10.1.0.1"}


def test_basic_search_exact_and_wildcard():
    db = _db_with_records()
    exact = db.basic_search("mqtt.googleapis.com")
    assert len(exact) == 1
    wildcard = db.basic_search("*.amazonaws.com")
    assert {r.rdata for r in wildcard} == {"10.0.0.1", "10.0.0.2"}
    assert db.basic_search("*.nomatch.example") == []


def test_inverse_search_and_domains_for_ip():
    db = _db_with_records()
    assert {r.rrname for r in db.inverse_search("10.0.0.1")} == {"tenant.iot.eu-west-1.amazonaws.com"}
    assert db.domains_for_ip("10.2.0.1") == {"www.unrelated.example"}
    assert db.domains_for_ip("10.9.9.9") == set()


def test_inverse_search_respects_time_range():
    db = _db_with_records()
    assert db.domains_for_ip("10.0.0.2", since=date(2022, 2, 28)) == set()


def test_names_listing():
    db = _db_with_records()
    assert "mqtt.googleapis.com" in db.names()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a.example", "b.example", "c.iot.example"]),
            st.integers(min_value=1, max_value=250),
        ),
        max_size=30,
    )
)
def test_inverse_search_consistent_with_records(pairs):
    db = PassiveDnsDatabase()
    for name, host in pairs:
        db.add_observation(name, f"10.0.0.{host}", date(2022, 1, 1))
    for record in db.records():
        assert record.rrname in db.domains_for_ip(record.rdata)
