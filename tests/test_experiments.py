"""Integration tests for the experiment harness (paper-shape assertions on the
small scenario; the benchmarks repeat them at the default scale)."""

import pytest

from repro.experiments import characterization as ch
from repro.experiments import disruption_experiments as de
from repro.experiments import traffic_experiments as te


def test_table1_and_render(small_context):
    result = ch.table1_characterization(small_context)
    assert len(result.rows) == 16
    text = result.render()
    assert "Amazon IoT" in text and "Strategy" in text
    amazon = result.row_for("Amazon IoT")
    baidu = result.row_for("Baidu IoT")
    assert amazon["ipv4_slash24"] >= baidu["ipv4_slash24"]
    assert amazon["countries"] > baidu["countries"]


def test_table2_queries_render(small_context):
    result = ch.table2_regexes()
    assert any(row["provider"] == "Google IoT Core" for row in result.rows)
    assert "DNSDB" in result.render()


def test_pipeline_summary(small_context):
    summary = ch.pipeline_summary(small_context)
    assert summary.total_ipv4 > summary.total_ipv6 > 0
    assert summary.dedicated_ipv4 <= summary.total_ipv4
    assert "discovered IPv4 addresses" in summary.render()


def test_fig3_breakdowns(small_context):
    result = ch.fig3_source_contribution(small_context)
    amazon = result.breakdown_for("amazon", 4)
    assert amazon.total > 0
    assert abs(sum(amazon.fraction(c) for c in amazon.counts) - 1.0) < 1e-9
    assert "Figure 3" in result.render()


def test_fig4_stability(small_context):
    result = ch.fig4_stability(small_context)
    assert result.comparisons
    assert "Figure 4" in result.render()


def test_sec34_validation(small_context):
    result = ch.sec34_validation(small_context)
    assert set(result.ground_truth) == {"cisco", "siemens", "microsoft"}
    for report in result.traffic_reports.values():
        assert report.underestimation_fraction <= 0.1
    assert "ground-truth validation" in result.render()


def test_fig5_threshold_sweep(small_context):
    result = te.fig5_scanner_threshold(small_context)
    counts = [p.scanner_line_count for p in result.points]
    assert counts == sorted(counts, reverse=True)
    assert 0.0 < result.coverage_at(100) < 1.0
    assert "Figure 5" in result.render()


def test_fig6_visibility(small_context):
    result = te.fig6_visibility(small_context)
    assert 0.0 < result.overall_ipv4 < 1.0
    labels = {row.label for row in result.rows}
    assert "T1" in labels and "T2" in labels
    assert "Figure 6" in result.render()


def test_fig7_tls_only_loss(small_context):
    result = te.fig7_tls_only_loss(small_context)
    assert result.rows
    # The SNI-reliant provider loses (almost) all detectable subscriber lines.
    assert result.decrease_for("T3", 4) > 0.5
    assert "Figure 7" in result.render()


def test_fig8_fig9_fig10_timeseries(small_context):
    activity = te.fig8_subscriber_activity(small_context, min_lines_per_hour=1)
    volume = te.fig9_traffic_volume(small_context)
    ratio = te.fig10_direction_ratio(small_context)
    assert activity.providers()
    assert volume.providers()
    # The prime-time provider peaks in the evening; the surveillance provider
    # uploads more than it downloads.
    assert activity.peak_hour("T1") >= 17
    assert ratio.overall["O6"] < 1.0
    assert ratio.overall["T1"] > 1.0
    assert "Figure 8" in activity.render()


def test_fig11_port_mix(small_context):
    result = te.fig11_port_mix(small_context)
    assert result.mix
    # The bulk-ingestion provider is dominated by AMQP over TLS.
    assert result.dominant_port("D4") == "TCP/5671 (AMQPS)"
    for ports in result.mix.values():
        assert abs(sum(ports.values()) - 1.0) < 1e-6
    assert "Figure 11" in result.render()


def test_fig12_volumes(small_context):
    result = te.fig12_per_subscriber_volumes(small_context)
    assert len(result.total_down) > 0
    # The vast majority of lines exchange modest daily volumes (paper: <10 MB).
    assert result.total_down.fraction_below(50 * 1024 * 1024) > 0.9
    assert "Figure 12" in result.render()


def test_fig13_fig14_regions(small_context):
    result = te.fig13_fig14_region_crossing(small_context)
    categories = result.report.line_categories
    assert categories["Europe only"] == max(categories.values())
    assert result.report.traffic_fraction("EU") > result.report.traffic_fraction("NA")
    assert result.report.traffic_fraction("NA") > 0.1
    assert abs(sum(result.servers_per_continent.values()) - 1.0) < 1e-6
    assert "Figure 13" in result.render()


def test_fig15_fig16_outage(small_context):
    result = de.fig15_fig16_outage(small_context)
    assert result.traffic_drop_us_east() > 0.10
    assert result.traffic_drop_eu() < result.traffic_drop_us_east()
    assert result.eu_to_us_traffic_ratio() > 1.0
    assert "Figure 15" in result.render("15")
    assert "Figure 16" in result.render("16")


def test_sec62_disruptions(small_context):
    result = de.sec62_potential_disruptions(small_context)
    assert not result.bgp.any_backend_affected
    assert sum(result.bgp.counts_by_kind.values()) > 0
    assert result.blocklists.total_listed_ips > 0
    assert "Section 6.2" in result.render()


def test_ablation_portscan(small_context):
    result = de.ablation_portscan_baseline(small_context)
    assert result.report.recall < 1.0
    assert "port-scan-only" in result.render()


def test_ablation_vantage_points(small_context):
    result = de.ablation_vantage_points(small_context)
    assert result.all_vp_ips >= result.single_vp_ips
    assert result.gain_fraction >= 0.0
    assert "vantage points" in result.render()
