"""Cross-worker determinism: parallel generation is byte-identical to serial.

The determinism contract of :mod:`repro.flows.parallel`: for the same frozen
:class:`ScenarioConfig`, ``gen_workers ∈ {1, 2, 4}`` must produce

* byte-identical :func:`~repro.store.codec.dump_table` payloads (same rows,
  same pool order, same dictionary codes), and
* identical :class:`~repro.store.artifacts.ArtifactStore` content addresses
  *and file contents* — ``gen_workers`` is an execution knob, not a scenario
  knob, so it participates in no fingerprint.

Plus the wiring around it: ``build_context(gen_workers=...)``, the
oversubscription clamp, the daemonic-worker fallback, and sweep composition.
"""

import io
import multiprocessing
from datetime import date

import pytest

from repro.flows.flowtable import FlowTable
from repro.flows.parallel import available_cpus, effective_gen_workers, parallelism_usable
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import build_world
from repro.store.artifacts import ArtifactStore, generated_stage, scenario_fingerprint
from repro.store.codec import dump_table

CONFIG = ScenarioConfig.small(seed=11).with_overrides(n_subscriber_lines=250)
PERIOD = StudyPeriod(date(2022, 2, 28), date(2022, 3, 1), name="parallel-determinism")


def table_bytes(table: FlowTable) -> bytes:
    buffer = io.BytesIO()
    dump_table(table, buffer)
    return buffer.getvalue()


def generate(workers: int, include_scanners: bool = True) -> FlowTable:
    world = build_world(CONFIG)
    generator = world.workload_generator()
    return generator.generate_period_table(
        PERIOD, include_scanners=include_scanners, workers=workers
    )


@pytest.fixture(scope="module")
def serial_bytes() -> bytes:
    return table_bytes(generate(1))


class TestByteIdentity:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_workers_yield_byte_identical_dump_payloads(self, workers, serial_bytes):
        assert table_bytes(generate(workers)) == serial_bytes

    def test_scannerless_generation_is_also_identical(self):
        serial = table_bytes(generate(1, include_scanners=False))
        parallel = table_bytes(generate(3, include_scanners=False))
        assert parallel == serial

    def test_parallel_matches_the_record_reference_path(self):
        world = build_world(CONFIG)
        records = world.workload_generator().generate_period(PERIOD)
        parallel = generate(2)
        assert parallel.to_records() == records

    def test_store_addresses_and_contents_are_identical(self, tmp_path, serial_bytes):
        stage = generated_stage(True)
        # The content address is a pure function of (config, period, stage):
        # no gen_workers anywhere in the fingerprint recipe.
        digest = scenario_fingerprint(CONFIG, PERIOD, stage)
        payloads = {}
        for workers in (1, 2, 4):
            store = ArtifactStore(tmp_path / f"workers-{workers}")
            store.put_table(CONFIG, PERIOD, stage, generate(workers))
            # Payloads live in the digest-sharded layout: <root>/ab/cdef....rft.
            files = sorted(store.root.glob("*/*.rft"))
            assert [f.parent.name + f.stem for f in files] == [digest]
            payloads[workers] = files[0].read_bytes()
        assert payloads[1] == payloads[2] == payloads[4] == serial_bytes

    def test_world_gen_workers_knob_feeds_generation(self, serial_bytes):
        world = build_world(CONFIG)
        world.gen_workers = 2
        assert table_bytes(world.flows_table(PERIOD)) == serial_bytes


class TestWiring:
    def test_build_context_sets_and_updates_gen_workers(self):
        from repro.experiments.context import build_context

        context = build_context(CONFIG, gen_workers=3)
        assert context.world.gen_workers == 3
        # A cache hit adopts the newly requested value...
        again = build_context(CONFIG, gen_workers=2)
        assert again is context
        assert context.world.gen_workers == 2
        # ...and omitting the knob means the serial default, on a hit just as
        # on a cold build — parallelism never leaks from an earlier caller.
        build_context(CONFIG)
        assert context.world.gen_workers == 1

    def test_effective_gen_workers_clamps_against_scenario_workers(self):
        cpus = available_cpus()
        assert effective_gen_workers(None) == 1
        assert effective_gen_workers(None, 8) == 1
        assert effective_gen_workers(0) == 1
        # The clamp is unconditional: even a lone scenario may not request
        # more hour-workers than there are visible CPUs.
        assert effective_gen_workers(6) == max(1, min(6, cpus))
        # Two concurrent scenario workers: each may use at most cpus // 2
        # hour-workers, and never fewer than one.
        assert effective_gen_workers(8, 2) == max(1, min(8, cpus // 2))
        assert effective_gen_workers(8, 2 * cpus + 1) == 1

    def test_daemonic_workers_fall_back_to_serial(self, serial_bytes):
        """Inside a daemonic pool worker no child pool may exist; generation
        must silently fall back to the serial path, not crash."""
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        with context.Pool(1) as pool:
            payload = pool.apply(_generate_in_daemon)
        assert payload == serial_bytes

    def test_parallelism_usable_in_main_process(self):
        assert parallelism_usable()


def _generate_in_daemon() -> bytes:
    assert not parallelism_usable()
    return table_bytes(generate(workers=4))


class TestSweepComposition:
    def test_sweep_gen_workers_results_match_serial_sweep(self, tmp_path):
        from repro.sweeps import ScenarioGrid, SweepRunner

        base = ScenarioConfig.small(seed=11).with_overrides(n_subscriber_lines=150)
        grid = ScenarioGrid.from_strings(base, ["sampling_ratio=1,10"])
        serial = SweepRunner(metrics=("traffic",), workers=1).run(grid)
        # Nested case: one scenario process, hour-level pool inside it.
        nested = SweepRunner(metrics=("traffic",), workers=1, gen_workers=2).run(grid)
        # Composed case: scenario pool with the clamp applied per machine.
        composed = SweepRunner(metrics=("traffic",), workers=2, gen_workers=4).run(grid)
        assert not serial.failures() and not nested.failures() and not composed.failures()
        reference = [outcome.metrics for outcome in serial.outcomes]
        assert [outcome.metrics for outcome in nested.outcomes] == reference
        assert [outcome.metrics for outcome in composed.outcomes] == reference

    def test_gen_workers_validation(self):
        from repro.sweeps import SweepRunner

        with pytest.raises(ValueError):
            SweepRunner(gen_workers=0)
