"""Round-trip and aggregation-parity tests for the columnar FlowTable."""

import random
from dataclasses import replace
from datetime import date, datetime

import pytest

from repro.core import traffic
from repro.flows.anonymize import AnonymizationMap
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow

BASE_DAY = date(2022, 3, 1)
ANON = AnonymizationMap.build()


def generate_records(count=400, seed=13):
    """A deterministic mixed corpus of flow records."""
    rng = random.Random(seed)
    providers = ("amazon", "google", "microsoft", "bosch")
    continents = ("EU", "NA", "AS")
    records = []
    for i in range(count):
        provider = providers[rng.randrange(len(providers))]
        ip_version = 6 if rng.random() < 0.3 else 4
        server = (
            f"fd00::{rng.randrange(1, 40):x}" if ip_version == 6 else f"10.0.{rng.randrange(4)}.{rng.randrange(1, 40)}"
        )
        records.append(
            make_flow(
                timestamp=datetime(2022, 3, 1 + rng.randrange(3), rng.randrange(24)),
                subscriber_id=rng.randrange(60),
                subscriber_prefix=f"prefix-{rng.randrange(8)}",
                ip_version=ip_version,
                provider_key=provider,
                server_ip=server,
                server_continent=continents[rng.randrange(len(continents))],
                server_region="eu-west-1",
                transport="tcp" if rng.random() < 0.8 else "udp",
                port=rng.choice((443, 8883, 5683, 61616)),
                bytes_down=round(rng.uniform(100, 50000), 2),
                bytes_up=round(rng.uniform(10, 5000), 2),
            )
        )
    return records


@pytest.fixture(scope="module")
def records():
    return generate_records()


@pytest.fixture(scope="module")
def table(records):
    return FlowTable.from_records(records)


class TestRoundTrip:
    def test_to_records_is_lossless(self, records, table):
        assert len(table) == len(records)
        assert table.to_records() == records

    def test_sequence_protocol(self, records, table):
        assert table[0] == records[0]
        assert table[-1] == records[-1]
        assert list(table)[:10] == records[:10]
        with pytest.raises(IndexError):
            table.record_at(len(records))

    def test_ensure_is_idempotent(self, records, table):
        assert FlowTable.ensure(table) is table
        rebuilt = FlowTable.ensure(records)
        assert rebuilt.to_records() == records

    def test_sampled_flag_round_trips(self):
        flow = generate_records(1)[0]
        sampled = replace(flow, sampled=True)
        rebuilt = FlowTable.from_records([sampled]).to_records()[0]
        assert rebuilt.sampled is True
        assert rebuilt == sampled

    def test_column_decoding(self, records, table):
        assert table.column("provider_key") == [r.provider_key for r in records]
        assert table.column("bytes_down") == [r.bytes_down for r in records]
        assert table.column("sampled") == [r.sampled for r in records]


class TestBuilderApi:
    def _columns_for(self, built, flows):
        codes = {
            name: [built.encode_value(name, getattr(flow, name)) for flow in flows]
            for name in (
                "timestamp",
                "subscriber_prefix",
                "provider_key",
                "server_ip",
                "server_continent",
                "server_region",
                "transport",
            )
        }
        numeric = {
            name: [getattr(flow, name) for flow in flows]
            for name in (
                "subscriber_id",
                "ip_version",
                "port",
                "bytes_down",
                "bytes_up",
                "packets_down",
                "packets_up",
            )
        }
        numeric["sampled"] = [1 if flow.sampled else 0 for flow in flows]
        return codes, numeric

    def test_append_columns_matches_from_records(self, records):
        built = FlowTable()
        codes, numeric = self._columns_for(built, records)
        built.append_columns(len(records), codes, numeric)
        assert built.to_records() == records

    def test_append_columns_is_atomic_on_length_mismatch(self, records):
        built = FlowTable()
        codes, numeric = self._columns_for(built, records[:4])
        built.append_columns(4, codes, numeric)
        bad_codes, bad_numeric = self._columns_for(built, records[4:8])
        bad_numeric["bytes_up"] = bad_numeric["bytes_up"][:-1]  # short column
        with pytest.raises(ValueError):
            built.append_columns(4, bad_codes, bad_numeric)
        # The failed batch left no partial rows behind.
        assert len(built) == 4
        assert built.to_records() == records[:4]

    def test_assign_numeric_validates_length(self, records):
        built = FlowTable.from_records(records[:6])
        built.assign_numeric("bytes_down", [1.0] * 6)
        assert built.column("bytes_down") == [1.0] * 6
        with pytest.raises(ValueError):
            built.assign_numeric("bytes_down", [1.0] * 5)


class TestFilters:
    def test_where_day(self, records, table):
        expected = [r for r in records if r.timestamp.date() == BASE_DAY]
        assert table.where_day(BASE_DAY).to_records() == expected

    def test_where_provider_and_ip_version(self, records, table):
        expected = [r for r in records if r.provider_key == "amazon"]
        assert table.where_provider("amazon").to_records() == expected
        expected6 = [r for r in records if r.ip_version == 6]
        assert table.where_ip_version(6).to_records() == expected6

    def test_exclude_subscribers(self, records, table):
        excluded = {1, 2, 3}
        expected = [r for r in records if r.subscriber_id not in excluded]
        assert table.exclude_subscribers(excluded).to_records() == expected
        assert table.exclude_subscribers(set()) is table

    def test_restrict_server_ips(self, records, table):
        allowed = {records[0].server_ip, records[1].server_ip}
        expected = [r for r in records if r.server_ip in allowed]
        assert table.restrict_server_ips(allowed).to_records() == expected

    def test_masks_match_filters(self, records, table):
        day_mask = table.mask_day(BASE_DAY)
        assert list(day_mask) == [1 if r.timestamp.date() == BASE_DAY else 0 for r in records]
        v6_mask = table.mask_ip_version(6)
        assert list(v6_mask) == [1 if r.ip_version == 6 else 0 for r in records]
        allowed = {records[0].server_ip}
        ip_mask = table.mask_server_ips(allowed)
        assert list(ip_mask) == [1 if r.server_ip in allowed else 0 for r in records]

    def test_masked_group_sum(self, records, table):
        mask = table.mask_day(BASE_DAY)
        naive = {}
        for r in records:
            if r.timestamp.date() != BASE_DAY:
                continue
            naive[r.subscriber_id] = naive.get(r.subscriber_id, 0.0) + r.bytes_down
        grouped = table.group_sum(("subscriber_id",), "bytes_down", mask=mask)
        assert set(grouped) == set(naive)
        for key, value in naive.items():
            assert grouped[key] == pytest.approx(value)

    def test_masked_group_distinct(self, records, table):
        mask = table.mask_ip_version(4)
        naive = {}
        for r in records:
            if r.ip_version != 4:
                continue
            naive.setdefault(r.provider_key, set()).add(r.server_ip)
        assert table.group_distinct(("provider_key",), "server_ip", mask=mask) == naive

    def test_filters_chain(self, records, table):
        expected = [
            r
            for r in records
            if r.timestamp.date() == BASE_DAY and r.provider_key == "google"
        ]
        assert table.where_day(BASE_DAY).where_provider("google").to_records() == expected


class TestGroupedAggregation:
    def test_group_sum_by_provider(self, records, table):
        naive = {}
        for r in records:
            naive[r.provider_key] = naive.get(r.provider_key, 0.0) + r.bytes_down
        grouped = table.group_sum(("provider_key",), "bytes_down")
        assert set(grouped) == set(naive)
        for key, value in naive.items():
            assert grouped[key] == pytest.approx(value)

    def test_group_sums_by_provider_hour(self, records, table):
        naive = {}
        for r in records:
            bucket = naive.setdefault((r.provider_key, r.timestamp), [0.0, 0.0])
            bucket[0] += r.bytes_down
            bucket[1] += r.bytes_up
        grouped = table.group_sums(("provider_key", "timestamp"), ("bytes_down", "bytes_up"))
        assert set(grouped) == set(naive)
        for key, (down, up) in naive.items():
            assert grouped[key][0] == pytest.approx(down)
            assert grouped[key][1] == pytest.approx(up)

    def test_group_sum_by_subscriber_and_port(self, records, table):
        naive = {}
        for r in records:
            key = (r.subscriber_id, r.port)
            naive[key] = naive.get(key, 0.0) + r.bytes_up
        grouped = table.group_sum(("subscriber_id", "port"), "bytes_up")
        assert set(grouped) == set(naive)

    def test_group_distinct_continent_pairs(self, records, table):
        naive = {}
        for r in records:
            naive.setdefault(r.subscriber_id, set()).add(r.server_continent)
        assert table.group_distinct(("subscriber_id",), "server_continent") == naive

    def test_group_distinct_count(self, records, table):
        naive = {}
        for r in records:
            naive.setdefault((r.provider_key, r.ip_version), set()).add(r.subscriber_id)
        counts = table.group_distinct_count(("provider_key", "ip_version"), "subscriber_id")
        assert counts == {key: len(values) for key, values in naive.items()}

    def test_distinct_and_total(self, records, table):
        assert table.distinct("server_ip") == {r.server_ip for r in records}
        assert table.distinct("subscriber_id") == {r.subscriber_id for r in records}
        assert table.total("bytes_down") == pytest.approx(sum(r.bytes_down for r in records))


class TestTrafficAnalysisParity:
    """The Section 5 analyses must not care whether they get a list or a table."""

    def test_volume_timeseries(self, records, table):
        assert traffic.volume_timeseries(records, ANON) == traffic.volume_timeseries(table, ANON)

    def test_activity_timeseries(self, records, table):
        assert traffic.activity_timeseries(records, ANON) == traffic.activity_timeseries(
            table, ANON
        )

    def test_port_mix(self, records, table):
        assert traffic.port_mix(records, ANON) == traffic.port_mix(table, ANON)

    def test_region_crossing(self, records, table):
        from_list = traffic.region_crossing(records)
        from_table = traffic.region_crossing(table)
        assert from_list.line_categories == from_table.line_categories
        assert from_list.traffic_by_continent == from_table.traffic_by_continent
        assert from_list.lines_total == from_table.lines_total

    def test_daily_active_lines(self, records, table):
        assert traffic.daily_active_lines(records) == traffic.daily_active_lines(table)
        assert traffic.daily_active_lines(records, 6) == traffic.daily_active_lines(table, 6)

    def test_scanner_exclusion(self, records, table):
        backend = {r.server_ip for r in records if r.ip_version == 4}
        from_list = traffic.ScannerExclusion(records, backend)
        from_table = traffic.ScannerExclusion(table, backend)
        assert from_list.contacts_per_line() == from_table.contacts_per_line()
        assert from_list.scanner_lines(3) == from_table.scanner_lines(3)
        clean_table, scanners = traffic.identify_and_exclude_scanners(table, backend, 3)
        clean_list, _ = traffic.identify_and_exclude_scanners(records, backend, 3)
        assert isinstance(clean_table, FlowTable)
        assert clean_table.to_records() == clean_list

    def test_per_subscriber_daily_volume(self, records, table):
        down_list, up_list = traffic.per_subscriber_daily_volume(records, BASE_DAY, 2)
        down_table, up_table = traffic.per_subscriber_daily_volume(table, BASE_DAY, 2)
        assert down_list.values == pytest.approx(down_table.values)
        assert up_list.values == pytest.approx(up_table.values)


class TestSequenceIndexing:
    def test_negative_index_matches_python_list_semantics(self, records, table):
        assert table[-1] == records[-1]
        assert table[-len(records)] == records[0]

    def test_negative_index_out_of_range_raises(self, table):
        with pytest.raises(IndexError):
            table[-(len(table) + 1)]
        with pytest.raises(IndexError):
            table[len(table)]

    def test_slice_returns_flowtable(self, records, table):
        window = table[10:60]
        assert isinstance(window, FlowTable)
        assert window.to_records() == records[10:60]
        # Slices share the parent's value pools (cheap, like the filters).
        assert window.pool("provider_key") is table.pool("provider_key")

    def test_slice_with_step_and_negative_bounds(self, records, table):
        assert table[::7].to_records() == records[::7]
        assert table[-25:-5].to_records() == records[-25:-5]
        assert table[50:10:-3].to_records() == records[50:10:-3]

    def test_empty_and_degenerate_slices(self, records, table):
        assert table[5:5].to_records() == []
        assert table[1000:2000].to_records() == records[1000:2000]
        assert len(table[:]) == len(records)

    def test_sliced_table_is_fully_functional(self, records, table):
        window = table[:100]
        expected = FlowTable.from_records(records[:100])
        assert window.group_sum(("provider_key",), "bytes_down") == expected.group_sum(
            ("provider_key",), "bytes_down"
        )
