"""Tests for IoT device and application models."""

import pytest
from hypothesis import given, strategies as st

from repro.core.providers import PROVIDERS, get_provider
from repro.flows.devices import ACTIVITY_PROFILES, ActivityProfile, build_device_model


def test_profiles_are_well_formed():
    for profile in ACTIVITY_PROFILES.values():
        assert len(profile.hourly_weights) == 24
        assert all(w >= 0 for w in profile.hourly_weights)
        for hour in range(24):
            assert 0.0 <= profile.activity_probability(hour) <= 1.0
        assert abs(sum(profile.weight_share(h) for h in range(24)) - 1.0) < 1e-9


def test_invalid_profiles_rejected():
    with pytest.raises(ValueError):
        ActivityProfile("bad", tuple([1.0] * 23))
    with pytest.raises(ValueError):
        ActivityProfile("bad", tuple([-1.0] + [1.0] * 23))
    with pytest.raises(ValueError):
        ActivityProfile("bad", tuple([0.0] * 24))


def test_prime_time_peaks_in_the_evening():
    profile = ACTIVITY_PROFILES["prime_time"]
    assert profile.activity_probability(20) > profile.activity_probability(4)


def test_constant_profile_is_flat():
    profile = ACTIVITY_PROFILES["constant_telemetry"]
    assert profile.activity_probability(3) == profile.activity_probability(15)


def test_every_provider_has_a_buildable_model():
    for spec in PROVIDERS:
        model = build_device_model(spec)
        assert model.provider_key == spec.key
        assert model.mean_daily_down_bytes > 0
        assert model.port_weights
        # Documented ports only.
        documented = set(spec.documented_ports())
        assert set(model.ports()).issubset(documented)


def test_amqp_bulk_provider_dominated_by_amqp_port():
    sap = build_device_model(get_provider("sap"))
    assert sap.pick_port(0.0) == ("tcp", 5671)


def test_global_selection_only_for_expected_providers():
    assert build_device_model(get_provider("microsoft")).global_server_selection
    assert not build_device_model(get_provider("amazon")).global_server_selection


@given(st.floats(min_value=0.0, max_value=0.999999))
def test_pick_port_always_returns_a_configured_port(roll):
    model = build_device_model(get_provider("amazon"))
    assert model.pick_port(roll) in model.ports()
