"""CLI coverage for ``iot-backend-repro cache ls|prune``.

The store's *codec-level* corruption handling is covered by the store tests;
these tests cover the CLI surface itself — listing, pruning, the age cutoff,
the ``$IOT_REPRO_STORE`` default — and the sidecar failure modes the CLI must
survive: a corrupted (non-JSON) sidecar, a truncated sidecar, and orphan
payload/sidecar files, none of which may crash ``ls`` and all of which a full
``prune`` must clean up.
"""

import json
from datetime import date, datetime

import pytest

from repro.cli import main
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.store.artifacts import STORE_ENV_VAR, ArtifactStore, generated_stage

CONFIG = ScenarioConfig.small(seed=5)
PERIOD = StudyPeriod(date(2022, 3, 1), date(2022, 3, 2), name="cache-cli")


def tiny_table() -> FlowTable:
    return FlowTable.from_records(
        [
            make_flow(
                timestamp=datetime(2022, 3, 1, hour),
                subscriber_id=hour,
                subscriber_prefix="prefix-0",
                ip_version=4,
                provider_key="amazon",
                server_ip="10.0.0.1",
                server_continent="EU",
                server_region="eu-west-1",
                transport="tcp",
                port=8883,
                bytes_down=100.0,
                bytes_up=10.0,
            )
            for hour in range(3)
        ]
    )


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def populate(store: ArtifactStore, stages=("a", "b")) -> list:
    digests = []
    for stage in stages:
        # Payloads live in the sharded layout: <root>/ab/cdef....rft.
        path = store.put_table(CONFIG, PERIOD, f"stage:{stage}", tiny_table())
        digests.append(path.parent.name + path.stem)
    return digests


class TestCacheLs:
    def test_empty_store_reports_empty(self, store, capsys):
        assert main(["cache", "ls", "--store", str(store.root)]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_ls_lists_stage_digest_and_rows(self, store, capsys):
        digests = populate(store)
        assert main(["cache", "ls", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        for digest in digests:
            assert digest[:12] in out
        assert "stage:a" in out and "stage:b" in out
        assert "Artifact store" in out

    def test_ls_survives_corrupted_and_truncated_sidecars(self, store, capsys):
        digests = populate(store)
        victim, survivor = digests
        # Corrupted sidecar: not JSON at all.
        store._meta_path(victim).write_bytes(b"\x00garbage, not json\xff")
        # Truncated sidecar: valid prefix of real JSON, cut mid-object.
        trunc_payload = store.put_table(CONFIG, PERIOD, "stage:trunc", tiny_table())
        truncated = trunc_payload.parent.name + trunc_payload.stem
        meta_path = store._meta_path(truncated)
        meta_path.write_text(meta_path.read_text()[: len(meta_path.read_text()) // 2])
        assert main(["cache", "ls", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert survivor[:12] in out
        # The broken entries are skipped, not fatal.
        assert victim[:12] not in out and truncated[:12] not in out

    def test_default_store_comes_from_the_environment(self, store, capsys, monkeypatch):
        populate(store, stages=("env",))
        monkeypatch.setenv(STORE_ENV_VAR, str(store.root))
        assert main(["cache", "ls"]) == 0
        assert "stage:env" in capsys.readouterr().out


class TestCachePrune:
    def test_prune_all_removes_artifacts_and_strays(self, store, capsys):
        digests = populate(store)
        # Orphans and broken sidecars must also disappear on a full prune.
        (store.root / "orphan-payload.rft").write_bytes(b"leftover payload bytes")
        (store.root / "orphan-sidecar.json").write_text("{\"digest\": \"gone\"")
        (store.root / f"{digests[0]}.json").write_bytes(b"not json either")
        assert main(["cache", "prune", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out and "freed" in out
        leftovers = [p.name for p in store.root.iterdir()]
        assert leftovers == [], leftovers
        # ls after the prune sees an empty store, not an error.
        assert main(["cache", "ls", "--store", str(store.root)]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_prune_age_cutoff_keeps_fresh_artifacts(self, store, capsys):
        populate(store)
        assert main(
            ["cache", "prune", "--store", str(store.root), "--older-than-days", "1"]
        ) == 0
        assert "pruned 0 artifact(s)" in capsys.readouterr().out
        assert store.entries(), "fresh artifacts must survive an age-gated prune"

    def test_prune_age_cutoff_drops_old_artifacts(self, store, capsys):
        digests = populate(store)
        # Backdate one artifact's sidecar far beyond the cutoff.
        meta_path = store._meta_path(digests[0])
        meta = json.loads(meta_path.read_text())
        meta["created"] = meta["created"] - 10 * 86400.0
        meta_path.write_text(json.dumps(meta))
        assert main(
            ["cache", "prune", "--store", str(store.root), "--older-than-days", "5"]
        ) == 0
        assert "pruned 1 artifact(s)" in capsys.readouterr().out
        remaining = {entry.digest for entry in store.entries()}
        assert remaining == {digests[1]}

    def test_prune_rejects_non_positive_cutoff(self):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--older-than-days", "0"])
