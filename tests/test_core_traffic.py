"""Tests for the ISP traffic analyses (Section 5 building blocks)."""

from datetime import date, datetime

import pytest
from hypothesis import given, strategies as st

from repro.core.traffic import (
    EmpiricalDistribution,
    ScannerExclusion,
    activity_timeseries,
    daily_active_lines,
    direction_ratio_timeseries,
    exclude_scanner_flows,
    identify_and_exclude_scanners,
    mean_direction_ratio,
    overall_visibility,
    per_subscriber_daily_volume,
    per_subscriber_daily_volume_by_port,
    per_subscriber_daily_volume_by_provider,
    port_mix,
    region_crossing,
    subscriber_lines_per_provider,
    tls_only_subscriber_loss,
    top_ports_by_volume,
    visibility_per_provider,
    volume_timeseries,
)
from repro.core.discovery import DiscoveredIP, DiscoveryResult
from repro.flows.anonymize import AnonymizationMap
from repro.flows.netflow import make_flow

DAY = date(2022, 2, 28)
ANON = AnonymizationMap.build()


def _flow(subscriber, server_ip, provider="amazon", port=8883, down=5000.0, up=1000.0,
          continent="EU", region="eu-west-1", hour=12, ip_version=4, transport="tcp"):
    return make_flow(
        timestamp=datetime(DAY.year, DAY.month, DAY.day, hour),
        subscriber_id=subscriber,
        subscriber_prefix="p",
        ip_version=ip_version,
        provider_key=provider,
        server_ip=server_ip,
        server_continent=continent,
        server_region=region,
        transport=transport,
        port=port,
        bytes_down=down,
        bytes_up=up,
    )


def _result(entries):
    result = DiscoveryResult()
    for ip, provider in entries:
        result.add(DiscoveredIP(ip, provider))
    return result


class TestEmpiricalDistribution:
    def test_quantiles_and_fractions(self):
        dist = EmpiricalDistribution([1, 2, 3, 4, 5])
        assert dist.quantile(0.0) == 1
        assert dist.quantile(1.0) == 5
        assert dist.quantile(0.5) == 3
        assert dist.fraction_below(3) == pytest.approx(0.4)
        assert dist.fraction_between(2, 5) == pytest.approx(0.6)

    def test_empty_distribution(self):
        dist = EmpiricalDistribution([])
        assert dist.fraction_below(10) == 0.0
        with pytest.raises(ValueError):
            dist.quantile(0.5)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
    def test_quantiles_monotone(self, values):
        dist = EmpiricalDistribution(values)
        assert dist.quantile(0.1) <= dist.quantile(0.9)
        assert dist.quantile(0.0) == min(dist.values)
        assert dist.quantile(1.0) == max(dist.values)


class TestScannerExclusion:
    def test_scanner_identified_and_excluded(self):
        backend_ips = {f"10.0.0.{i}" for i in range(1, 101)}
        flows = [_flow(1, "10.0.0.1"), _flow(1, "10.0.0.2")]
        flows += [_flow(99, f"10.0.0.{i}", down=100.0) for i in range(1, 101)]
        exclusion = ScannerExclusion(flows, backend_ips)
        assert exclusion.scanner_lines(threshold=50) == {99}
        assert exclusion.scanner_lines(threshold=200) == set()
        clean, scanners = identify_and_exclude_scanners(flows, backend_ips, threshold=50)
        assert scanners == {99}
        assert all(f.subscriber_id != 99 for f in clean)
        assert exclusion.server_coverage(threshold=50) == pytest.approx(2 / 100)

    def test_sweep_monotone_scanner_count(self):
        backend_ips = {f"10.0.0.{i}" for i in range(1, 51)}
        flows = [_flow(7, f"10.0.0.{i}") for i in range(1, 51)]
        exclusion = ScannerExclusion(flows, backend_ips)
        points = exclusion.sweep([10, 20, 100])
        counts = [p.scanner_line_count for p in points]
        assert counts == sorted(counts, reverse=True)

    def test_flows_to_unknown_ips_ignored(self):
        exclusion = ScannerExclusion([_flow(1, "192.0.2.1")], {"10.0.0.1"})
        assert exclusion.contacts_per_line() == {}
        assert exclusion.server_coverage(10) == 0.0


def test_visibility_per_provider_counts():
    result = _result([("10.0.0.1", "amazon"), ("10.0.0.2", "amazon"), ("fd00::1", "amazon")])
    flows = [_flow(1, "10.0.0.1"), _flow(2, "fd00::1", ip_version=6)]
    rows = visibility_per_provider(flows, result, ANON)
    row = rows[0]
    assert row.label == "T1"
    assert row.ipv4_visible == 1 and row.ipv4_total == 2
    assert row.ipv6_visible == 1 and row.ipv6_total == 1
    assert row.ipv4_fraction == pytest.approx(0.5)
    assert overall_visibility(flows, result, 4) == pytest.approx(0.5)


def test_tls_only_subscriber_loss():
    full = _result([("10.0.0.1", "google"), ("10.0.0.2", "google")])
    tls_only = _result([("10.0.0.2", "google")])
    flows = [_flow(1, "10.0.0.1", provider="google"), _flow(2, "10.0.0.2", provider="google")]
    rows = tls_only_subscriber_loss(flows, full, tls_only, ANON)
    assert len(rows) == 1
    assert rows[0].label == "T3"
    assert rows[0].decrease_fraction == pytest.approx(0.5)
    lines = subscriber_lines_per_provider(flows, full.ips())
    assert lines[("google", 4)] == {1, 2}


def test_activity_and_volume_timeseries():
    flows = [
        _flow(1, "10.0.0.1", hour=10),
        _flow(2, "10.0.0.1", hour=10),
        _flow(1, "10.0.0.1", hour=20, down=20000.0),
    ]
    activity = activity_timeseries(flows, ANON)
    assert activity["T1"][datetime(2022, 2, 28, 10)] == 2
    volume = volume_timeseries(flows, ANON, sampling_ratio=2)
    assert volume["T1"][datetime(2022, 2, 28, 20)] == pytest.approx(40000.0)
    ratios = direction_ratio_timeseries(flows, ANON)
    assert ratios["T1"][datetime(2022, 2, 28, 10)] == pytest.approx(5.0)
    overall = mean_direction_ratio(flows, ANON)
    assert overall["T1"] > 1.0


def test_activity_timeseries_min_lines_filter():
    flows = [_flow(1, "10.0.0.1")]
    assert activity_timeseries(flows, ANON, min_lines_per_hour=5) == {}


def test_port_mix_and_top_ports():
    flows = [
        _flow(1, "10.0.0.1", port=8883, down=7000.0),
        _flow(1, "10.0.0.1", port=443, down=3000.0),
    ]
    mix = port_mix(flows, ANON)
    assert set(mix["T1"]) == {"TCP/8883 (MQTTS)", "TCP/443 (HTTPS)"}
    assert mix["T1"]["TCP/8883 (MQTTS)"] > mix["T1"]["TCP/443 (HTTPS)"]
    assert abs(sum(mix["T1"].values()) - 1.0) < 1e-9
    assert top_ports_by_volume(flows, top_n=1) == ["TCP/8883 (MQTTS)"]


def test_per_subscriber_daily_volumes():
    flows = [
        _flow(1, "10.0.0.1", down=1000.0, up=200.0),
        _flow(1, "10.0.0.1", down=2000.0, up=300.0),
        _flow(2, "10.0.0.2", provider="google", down=500.0, up=100.0),
    ]
    down, up = per_subscriber_daily_volume(flows, DAY)
    assert len(down) == 2 and len(up) == 2
    assert down.quantile(1.0) == pytest.approx(3000.0)
    by_provider = per_subscriber_daily_volume_by_provider(flows, DAY, ANON)
    assert set(by_provider) == {"T1", "T3"}
    by_port = per_subscriber_daily_volume_by_port(flows, DAY, top_n=1)
    assert "Other" in by_port or len(by_port) == 1


def test_region_crossing_categories():
    flows = [
        _flow(1, "10.0.0.1", continent="EU"),
        _flow(2, "10.0.0.2", continent="NA", region="us-east-1"),
        _flow(3, "10.0.0.1", continent="EU"),
        _flow(3, "10.0.0.2", continent="NA", region="us-east-1"),
        _flow(4, "10.0.0.3", continent="AS", region="cn-north-1"),
    ]
    report = region_crossing(flows)
    assert report.lines_total == 4
    assert report.category_fraction("Europe only") == pytest.approx(0.25)
    assert report.category_fraction("US only") == pytest.approx(0.25)
    assert report.category_fraction("EU & US") == pytest.approx(0.25)
    assert report.category_fraction("Asia") == pytest.approx(0.25)
    assert abs(sum(report.line_categories.values()) - 1.0) < 1e-9
    assert abs(sum(report.traffic_by_continent.values()) - 1.0) < 1e-9


def test_daily_active_lines():
    flows = [_flow(1, "10.0.0.1"), _flow(2, "10.0.0.1", ip_version=6)]
    assert daily_active_lines(flows) == {DAY: 2}
    assert daily_active_lines(flows, ip_version=6) == {DAY: 1}
