"""Tests for blocklists and the outage injector."""

from datetime import datetime

import pytest

from repro.outage.injector import OutageEvent, OutageSchedule, aws_us_east_1_outage
from repro.security.blocklists import (
    CATEGORY_ATTACKS,
    CATEGORY_MALWARE,
    Blocklist,
    BlocklistAggregate,
)


class TestBlocklists:
    def test_membership_and_normalisation(self):
        blocklist = Blocklist("test", CATEGORY_MALWARE)
        blocklist.add("10.0.0.1")
        assert "10.0.0.1" in blocklist
        assert "10.0.0.2" not in blocklist
        assert "not-an-ip" not in blocklist
        assert len(blocklist) == 1

    def test_aggregate_check(self):
        a = Blocklist("list-a", CATEGORY_MALWARE, {"10.0.0.1"})
        b = Blocklist("list-b", CATEGORY_ATTACKS, {"10.0.0.1", "10.0.0.2"})
        aggregate = BlocklistAggregate([a, b])
        matches = aggregate.check("10.0.0.1")
        assert {m.list_name for m in matches} == {"list-a", "list-b"}
        assert aggregate.check("10.9.9.9") == []
        many = aggregate.check_many(["10.0.0.1", "10.0.0.2", "10.0.0.3"])
        assert set(many) == {"10.0.0.1", "10.0.0.2"}
        assert aggregate.total_entries() == 3

    def test_unmaintained_lists_excluded_by_default(self):
        stale = Blocklist("stale", CATEGORY_ATTACKS, {"10.0.0.9"}, well_maintained=False)
        aggregate = BlocklistAggregate([stale])
        assert aggregate.check("10.0.0.9") == []
        assert aggregate.check("10.0.0.9", include_unmaintained=True)
        assert aggregate.total_entries() == 0
        assert aggregate.total_entries(include_unmaintained=True) == 1


class TestOutage:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            OutageEvent(
                "bad",
                "Cloud",
                ("us-east-1",),
                datetime(2021, 12, 7, 18),
                datetime(2021, 12, 7, 17),
            )
        with pytest.raises(ValueError):
            OutageEvent(
                "bad",
                "Cloud",
                ("us-east-1",),
                datetime(2021, 12, 7, 16),
                datetime(2021, 12, 7, 17),
                traffic_retention=2.0,
            )

    def test_schedule_factors(self):
        event = aws_us_east_1_outage(traffic_retention=0.4, device_retention=0.9)
        schedule = OutageSchedule([event])
        during = event.start
        before = event.start.replace(hour=event.start.hour - 2)
        assert schedule.traffic_factor("Amazon Web Services", "us-east-1", during) == 0.4
        assert schedule.device_factor("Amazon Web Services", "us-east-1", during) == 0.9
        assert schedule.traffic_factor("Amazon Web Services", "eu-west-1", during) == 1.0
        assert schedule.traffic_factor("Microsoft Azure", "us-east-1", during) == 1.0
        assert schedule.traffic_factor("Amazon Web Services", "us-east-1", before) == 1.0
        assert schedule.traffic_factor(None, "us-east-1", during) == 1.0

    def test_empty_schedule_is_neutral(self):
        schedule = OutageSchedule()
        assert schedule.traffic_factor("Cloud", "region", datetime(2022, 1, 1)) == 1.0
        assert len(schedule) == 0
