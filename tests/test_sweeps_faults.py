"""Fault-injection harness for the sweep execution core.

Every test here hurts the campaign on purpose — SIGKILLed workers, a
SIGKILLed driver, torn ledger tails, corrupted store artifacts, hung and
crashing scenarios — and then proves the fault-tolerance contract:

* completed ledger rows are never lost (incremental append + fsync),
* a resumed campaign's per-scenario metrics are bit-identical to an
  uninterrupted run (only the fields in ``NONDETERMINISTIC_LEDGER_FIELDS`` —
  ``elapsed_seconds`` and friends — may differ, and
  ``ScenarioOutcome.identity()`` excludes exactly those),
* a broken process pool loses at most the in-flight scenarios, and
* retries, timeouts, and the circuit breaker behave as documented.

Faults are injected through ``repro.sweeps.runner.FAULT_HOOK``, called at the
top of every scenario attempt inside the worker; pool workers inherit the
hook (and any env-var knobs it reads) through the fork start method.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.simulation.config import ScenarioConfig
from repro.store.artifacts import ArtifactStore
from repro.sweeps import (
    NONDETERMINISTIC_LEDGER_FIELDS,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_TIMEOUT,
    LedgerError,
    ScenarioGrid,
    SweepResult,
    SweepRunner,
)
from repro.sweeps import runner as runner_module

REPO_ROOT = Path(__file__).resolve().parents[1]
AXIS_VALUES = (1, 2, 4, 8)


def _base(**overrides) -> ScenarioConfig:
    return ScenarioConfig.small(seed=43).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1, **overrides
    )


def _grid(values=AXIS_VALUES) -> ScenarioGrid:
    return ScenarioGrid(_base(), {"sampling_ratio": values})


def identities(result: SweepResult) -> dict:
    """scenario_id -> deterministic projection (timing fields excluded)."""
    return {outcome.scenario_id: outcome.identity() for outcome in result.outcomes}


@pytest.fixture(scope="module")
def clean():
    """The uninterrupted serial reference run every fault scenario must match."""
    return SweepRunner(metrics=("traffic",), workers=1).run(_grid())


@pytest.fixture
def fault_hook(monkeypatch):
    """Install a fault hook for the duration of one test (auto-removed)."""

    def install(hook):
        monkeypatch.setattr(runner_module, "FAULT_HOOK", hook)

    return install


# -- injectable faults (module-level so fork-inherited workers resolve them) ----


def _sigkill_once(scenario_id: str, attempt: int) -> None:
    """SIGKILL the worker mid-scenario, exactly once across the campaign.

    The flag file provides the once-semantics atomically: every process that
    sees the scenario races to ``os.remove`` it, and only the winner dies.
    """
    flag = os.environ.get("FAULT_KILL_FLAG", "")
    if flag and "sampling_ratio=4" in scenario_id:
        try:
            os.remove(flag)
        except FileNotFoundError:
            return
        os.kill(os.getpid(), signal.SIGKILL)


def _sigkill_always(scenario_id: str, attempt: int) -> None:
    if "sampling_ratio=4" in scenario_id:
        os.kill(os.getpid(), signal.SIGKILL)


def _fail_first_attempt(scenario_id: str, attempt: int) -> None:
    if attempt == 1:
        raise RuntimeError("injected transient fault")


def _fail_always(scenario_id: str, attempt: int) -> None:
    raise RuntimeError("injected permanent fault")


def _fail_one_scenario(scenario_id: str, attempt: int) -> None:
    if "sampling_ratio=1" in scenario_id:
        raise RuntimeError("injected isolated fault")


def _hang(scenario_id: str, attempt: int) -> None:
    if "sampling_ratio=4" in scenario_id:
        time.sleep(10)  # far beyond any timeout used below; SIGALRM interrupts


def _record_ledger_growth(scenario_id: str, attempt: int) -> None:
    """Log how many ledger rows exist the moment each scenario starts."""
    ledger = Path(os.environ["FAULT_LEDGER_FILE"])
    rows = len(ledger.read_text().splitlines()) if ledger.exists() else 0
    with Path(os.environ["FAULT_PROGRESS_FILE"]).open("a") as stream:
        stream.write(f"{rows}\n")


# -- ledger robustness ----------------------------------------------------------


class TestLedgerRobustness:
    def test_torn_final_line_is_skipped(self, clean, tmp_path):
        path = clean.write_ledger(tmp_path / "ledger.jsonl")
        with path.open("a") as stream:
            stream.write('{"schema": 2, "scenario_id": "torn-mid-app')  # no newline
        restored = SweepResult.read_ledger(path)
        assert len(restored) == len(clean)
        assert identities(restored) == identities(clean)

    def test_garbage_final_line_is_skipped(self, clean, tmp_path):
        path = clean.write_ledger(tmp_path / "ledger.jsonl")
        with path.open("a") as stream:
            stream.write("\x00 not json at all \xff\n")
        assert len(SweepResult.read_ledger(path)) == len(clean)

    def test_corrupt_middle_line_raises(self, clean, tmp_path):
        path = clean.write_ledger(tmp_path / "ledger.jsonl")
        lines = path.read_text().splitlines()
        lines[1] = "garbage {{{"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match=r":2: corrupt ledger line"):
            SweepResult.read_ledger(path)

    def test_unknown_schema_raises_even_on_final_line(self, clean, tmp_path):
        path = clean.write_ledger(tmp_path / "ledger.jsonl")
        row = json.loads(path.read_text().splitlines()[0])
        row["schema"] = 99
        with path.open("a") as stream:
            stream.write(json.dumps(row) + "\n")
        with pytest.raises(LedgerError, match="unknown ledger schema 99"):
            SweepResult.read_ledger(path)

    def test_schema1_rows_parse_with_defaults(self, tmp_path):
        row = {
            "schema": 1,
            "scenario_id": "sampling_ratio=1",
            "axes": {"sampling_ratio": 1},
            "config_digest": "d" * 64,
            "metrics": {"clean_flows": 10},
            "elapsed_seconds": 0.5,
            "error": None,
        }
        path = tmp_path / "v1.jsonl"
        path.write_text(json.dumps(row) + "\n")
        restored = SweepResult.read_ledger(path)
        assert len(restored) == 1
        outcome = restored.outcomes[0]
        assert outcome.status == STATUS_OK and outcome.attempt == 1
        # A failed v1 row derives its status from the error field.
        row["error"] = "RuntimeError: boom"
        path.write_text(json.dumps(row) + "\n")
        assert SweepResult.read_ledger(path).outcomes[0].status == STATUS_FAILED

    def test_resume_over_torn_tail_appends_cleanly(self, clean, tmp_path):
        """A crash mid-append leaves a partial row; resume trims and continues."""
        path = tmp_path / "ledger.jsonl"
        complete = [json.dumps(row, sort_keys=True) for row in clean.ledger_rows()[:2]]
        path.write_text("\n".join(complete) + "\n" + '{"schema": 2, "scen')
        result = SweepRunner(metrics=("traffic",), workers=1).run(_grid(), resume=path)
        assert result.reused_count == 2
        assert [outcome.ok for outcome in result.outcomes] == [True] * 4
        assert identities(result) == identities(clean)
        merged = SweepResult.read_ledger(path)
        per_scenario = [o.scenario_id for o in merged.outcomes]
        assert sorted(per_scenario) == sorted(o.scenario_id for o in clean.outcomes)
        assert len(per_scenario) == len(set(per_scenario)), "reused scenarios were re-run"


class TestIncrementalLedger:
    def test_rows_are_on_disk_before_the_next_scenario_starts(
        self, fault_hook, monkeypatch, tmp_path
    ):
        ledger = tmp_path / "ledger.jsonl"
        progress = tmp_path / "progress.txt"
        monkeypatch.setenv("FAULT_LEDGER_FILE", str(ledger))
        monkeypatch.setenv("FAULT_PROGRESS_FILE", str(progress))
        fault_hook(_record_ledger_growth)
        SweepRunner(metrics=("traffic",), workers=1, ledger_path=ledger).run(_grid())
        counts = [int(line) for line in progress.read_text().split()]
        assert counts == [0, 1, 2, 3], "ledger rows must land as scenarios complete"


# -- retry / timeout / circuit breaker ------------------------------------------


class TestRetry:
    def test_transient_failures_retried_to_success(self, clean, fault_hook, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        fault_hook(_fail_first_attempt)
        result = SweepRunner(
            metrics=("traffic",), workers=1, ledger_path=ledger, retries=1, backoff=0.0
        ).run(_grid())
        assert result.failures() == []
        assert identities(result) == identities(clean)
        assert all(outcome.attempt == 2 for outcome in result.outcomes)
        rows = SweepResult.read_ledger(ledger).outcomes
        assert len(rows) == 8  # one retried row + one ok row per scenario
        retried = [row for row in rows if row.status == STATUS_RETRIED]
        assert len(retried) == 4
        assert all("injected transient fault" in row.error for row in retried)

    def test_exhausted_retries_record_the_failure(self, fault_hook, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        fault_hook(_fail_one_scenario)
        result = SweepRunner(
            metrics=("traffic",), workers=1, ledger_path=ledger, retries=1, backoff=0.0
        ).run(_grid((1, 2)))
        failures = result.failures()
        assert [outcome.scenario_id for outcome in failures] == ["sampling_ratio=1"]
        assert failures[0].status == STATUS_FAILED and failures[0].attempt == 2
        statuses = [row.status for row in SweepResult.read_ledger(ledger).outcomes]
        assert statuses.count(STATUS_RETRIED) == 1 and statuses.count(STATUS_FAILED) == 1


class TestTimeout:
    def test_hung_scenario_times_out_serial(self, clean, fault_hook):
        fault_hook(_hang)
        # Generous enough for a real build, far below the injected 10s hang.
        result = SweepRunner(metrics=("traffic",), workers=1, timeout=3.0).run(_grid((2, 4)))
        by_id = {outcome.scenario_id: outcome for outcome in result.outcomes}
        hung = by_id["sampling_ratio=4"]
        assert hung.status == STATUS_TIMEOUT
        assert "Timeout" in hung.error and "3s wall clock" in hung.error
        healthy = by_id["sampling_ratio=2"]
        assert healthy.ok
        assert healthy.identity() == identities(clean)["sampling_ratio=2"]

    def test_hung_scenario_times_out_parallel(self, fault_hook):
        fault_hook(_hang)
        result = SweepRunner(metrics=("traffic",), workers=2, timeout=3.0).run(_grid((2, 4)))
        by_id = {outcome.scenario_id: outcome for outcome in result.outcomes}
        assert by_id["sampling_ratio=4"].status == STATUS_TIMEOUT
        assert by_id["sampling_ratio=2"].ok

    def test_timeout_is_retried_before_giving_up(self, fault_hook, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        fault_hook(_hang)
        result = SweepRunner(
            metrics=("traffic",),
            workers=1,
            ledger_path=ledger,
            timeout=0.2,
            retries=1,
            backoff=0.0,
        ).run(_grid((4,)))
        assert result.outcomes[0].status == STATUS_TIMEOUT
        assert result.outcomes[0].attempt == 2
        statuses = [row.status for row in SweepResult.read_ledger(ledger).outcomes]
        assert statuses == [STATUS_RETRIED, STATUS_TIMEOUT]


class TestCircuitBreaker:
    def test_breaker_halts_submission_after_consecutive_failures(self, fault_hook, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        fault_hook(_fail_always)
        result = SweepRunner(
            metrics=("traffic",),
            workers=1,
            ledger_path=ledger,
            max_consecutive_failures=2,
        ).run(_grid((1, 2, 4, 8, 16)))
        errors = [outcome.error for outcome in result.outcomes]
        assert sum("injected permanent fault" in error for error in errors) == 2
        skipped = [error for error in errors if "circuit breaker" in error]
        assert len(skipped) == 3
        assert len(SweepResult.read_ledger(ledger)) == 5  # skips are recorded too

    def test_breaker_resets_on_success(self, fault_hook):
        fault_hook(_fail_one_scenario)
        result = SweepRunner(
            metrics=("traffic",), workers=1, max_consecutive_failures=2
        ).run(_grid())
        assert len(result.failures()) == 1
        assert all("circuit breaker" not in (o.error or "") for o in result.outcomes)

    def test_breaker_opens_in_parallel_mode(self, fault_hook):
        fault_hook(_fail_always)
        result = SweepRunner(
            metrics=("traffic",), workers=2, max_consecutive_failures=2, backoff=0.0
        ).run(_grid((1, 2, 4, 8, 16, 32)))
        assert len(result.failures()) == 6  # nothing succeeds...
        assert any("circuit breaker" in o.error for o in result.outcomes), (
            "the breaker must refuse to submit the tail of the grid"
        )


# -- worker and driver crashes --------------------------------------------------


class TestWorkerCrash:
    def test_sigkilled_worker_is_respawned_and_scenario_retried(
        self, clean, fault_hook, monkeypatch, tmp_path
    ):
        flag = tmp_path / "kill.flag"
        flag.write_text("armed")
        monkeypatch.setenv("FAULT_KILL_FLAG", str(flag))
        fault_hook(_sigkill_once)
        ledger = tmp_path / "ledger.jsonl"
        result = SweepRunner(
            metrics=("traffic",), workers=2, ledger_path=ledger, retries=1, backoff=0.0
        ).run(_grid())
        assert result.pool_respawns >= 1
        assert result.failures() == []
        assert identities(result) == identities(clean)
        rows = SweepResult.read_ledger(ledger).outcomes
        assert any(
            row.status == STATUS_RETRIED and "BrokenProcessPool" in row.error for row in rows
        ), "the casualty must be recorded, then retried"

    def test_persistent_crasher_loses_only_inflight_and_resume_completes(
        self, clean, fault_hook, monkeypatch, tmp_path
    ):
        fault_hook(_sigkill_always)
        ledger = tmp_path / "ledger.jsonl"
        grid = _grid()
        result = SweepRunner(
            metrics=("traffic",), workers=2, ledger_path=ledger, retries=0
        ).run(grid)
        assert result.pool_respawns >= 1
        failed_ids = {outcome.scenario_id for outcome in result.failures()}
        assert "sampling_ratio=4" in failed_ids, "the crasher itself must be recorded failed"
        # A pool break charges only what was in flight alongside the crasher.
        assert len(failed_ids) <= 2
        completed = {o.scenario_id for o in SweepResult.read_ledger(ledger).outcomes if o.ok}
        assert completed == {o.scenario_id for o in result.outcomes if o.ok}, (
            "completed rows must already be on disk"
        )
        # With the fault gone, resume re-runs only the casualties, bit-identically.
        monkeypatch.setattr(runner_module, "FAULT_HOOK", None)
        resumed = SweepRunner(metrics=("traffic",), workers=2).run(grid, resume=ledger)
        assert resumed.reused_count == 4 - len(failed_ids)
        assert resumed.failures() == []
        assert identities(resumed) == identities(clean)
        merged = SweepResult.read_ledger(ledger)
        ok_rows = [o.scenario_id for o in merged.outcomes if o.status == STATUS_OK]
        assert sorted(ok_rows) == sorted(o.scenario_id for o in clean.outcomes)
        assert len(ok_rows) == len(set(ok_rows)), "reused scenarios must not re-run"


class TestDriverKill:
    def test_sigkilled_driver_resumes_bit_identical(self, clean, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        script = textwrap.dedent(
            """
            import sys
            from repro.simulation.config import ScenarioConfig
            from repro.sweeps import ScenarioGrid, SweepRunner

            base = ScenarioConfig.small(seed=43).with_overrides(
                n_subscriber_lines=40, n_scanner_lines=1
            )
            grid = ScenarioGrid(base, {"sampling_ratio": (1, 2, 4, 8)})
            SweepRunner(metrics=("traffic",), workers=1, ledger_path=sys.argv[1]).run(grid)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(ledger)], env=env, cwd=REPO_ROOT
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and proc.poll() is None:
                if ledger.exists() and ledger.read_text().count("\n") >= 2:
                    break
                time.sleep(0.02)
        finally:
            proc.kill()  # SIGKILL: no atexit, no flush, no cleanup
            proc.wait()
        assert ledger.exists(), "the incremental ledger must exist before the kill"
        survivors = len(SweepResult.read_ledger(ledger))
        resumed = SweepRunner(metrics=("traffic",), workers=1).run(_grid(), resume=ledger)
        assert resumed.failures() == []
        assert resumed.reused_count >= min(survivors, 4)
        assert identities(resumed) == identities(clean)
        merged = SweepResult.read_ledger(ledger)
        ok_rows = [o.scenario_id for o in merged.outcomes if o.status == STATUS_OK]
        assert len(ok_rows) == len(set(ok_rows)), "completed scenarios must not be re-run"


# -- store corruption -----------------------------------------------------------


class TestStoreFaults:
    def test_corrupted_store_artifacts_rebuild_bit_identical(self, tmp_path):
        store_root = tmp_path / "store"
        grid = _grid((1, 2))
        first = SweepRunner(metrics=("traffic",), workers=1, store=store_root).run(grid)
        store = ArtifactStore(store_root)
        payloads = list(store_root.glob("*.rft")) + list(store_root.glob("*/*.rft"))
        assert payloads, "the sweep must have populated the store"
        for payload in payloads:
            payload.write_bytes(b"\x00corrupted mid-campaign\xff")
        second = SweepRunner(metrics=("traffic",), workers=1, store=store_root).run(grid)
        assert second.failures() == []
        assert identities(second) == identities(first)


# -- the determinism boundary ---------------------------------------------------


class TestIdentityContract:
    def test_identity_excludes_exactly_the_nondeterministic_fields(self, clean):
        """``elapsed_seconds`` (and friends) are the *only* ledger fields
        exempt from resume bit-identity comparisons; everything else is
        covered by the determinism contract and checked via ``identity()``."""
        row_fields = set(clean.ledger_rows()[0])
        identity_fields = set(clean.outcomes[0].identity())
        assert identity_fields == row_fields - set(NONDETERMINISTIC_LEDGER_FIELDS) - {"schema"}
        assert "elapsed_seconds" in NONDETERMINISTIC_LEDGER_FIELDS

    def test_parallel_run_identity_matches_serial(self, clean):
        parallel = SweepRunner(metrics=("traffic",), workers=2).run(_grid())
        assert identities(parallel) == identities(clean)
