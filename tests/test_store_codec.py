"""Round-trip, fuzz, and corruption tests for the columnar store codec."""

import io
import random
import struct
from datetime import datetime, timedelta

import pytest

from repro.flows.flowtable import (
    CATEGORICAL_COLUMNS,
    NUMERIC_COLUMNS,
    FlowTable,
    LazyColumn,
)
from repro.flows.netflow import make_flow
from repro.store.codec import (
    CODEC_VERSION,
    StoreFormatError,
    dump_table,
    dumps_table,
    load_table,
    load_table_lazy,
    load_table_mmap,
    loads_table,
)


def random_records(rng, count):
    """A randomized corpus stressing value types, unicode, and extreme numbers."""
    providers = ("amazon", "google", "müller-iot", "端末-backend", "")
    transports = ("tcp", "udp")
    records = []
    base = datetime(2022, 3, 1)
    for _ in range(count):
        ip_version = 6 if rng.random() < 0.3 else 4
        server = (
            f"fd00::{rng.randrange(1, 500):x}"
            if ip_version == 6
            else f"10.{rng.randrange(4)}.{rng.randrange(8)}.{rng.randrange(1, 200)}"
        )
        bytes_down = rng.choice(
            (0.0, 1e-12, 1e15, 0.1 + rng.random() * 1e6, float(rng.randrange(10**9)))
        )
        records.append(
            make_flow(
                timestamp=base + timedelta(hours=rng.randrange(96)),
                subscriber_id=rng.randrange(10**6),
                subscriber_prefix=f"prefix-{rng.randrange(64)}",
                ip_version=ip_version,
                provider_key=rng.choice(providers),
                server_ip=server,
                server_continent=rng.choice(("EU", "NA", "AS", "SA")),
                server_region=rng.choice(("eu-west-1", "us-east-1", "ap-south-1")),
                transport=rng.choice(transports),
                port=rng.choice((443, 8883, 5683, 61616, 1)),
                bytes_down=bytes_down,
                bytes_up=rng.random() * 1e9,
            )
        )
    return records


class TestRoundTrip:
    def test_empty_table(self):
        table = FlowTable()
        restored = loads_table(dumps_table(table))
        assert len(restored) == 0
        assert restored.to_records() == []

    def test_stream_and_bytes_apis_agree(self):
        rng = random.Random(5)
        table = FlowTable.from_records(random_records(rng, 50))
        buffer = io.BytesIO()
        dump_table(table, buffer)
        assert buffer.getvalue() == dumps_table(table)
        assert load_table(io.BytesIO(buffer.getvalue())).to_records() == table.to_records()

    def test_filtered_table_with_shared_pools(self):
        """A filtered table's pool holds values its codes never reference."""
        rng = random.Random(7)
        table = FlowTable.from_records(random_records(rng, 300))
        filtered = table.where_ip_version(4)
        restored = loads_table(dumps_table(filtered))
        assert restored.to_records() == filtered.to_records()

    def test_float_bit_patterns_survive(self):
        rng = random.Random(9)
        table = FlowTable.from_records(random_records(rng, 100))
        restored = loads_table(dumps_table(table))
        assert list(restored.numeric("bytes_down")) == list(table.numeric("bytes_down"))
        assert list(restored.numeric("bytes_up")) == list(table.numeric("bytes_up"))

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_random_tables(self, seed):
        """Random tables -> serialize -> deserialize -> exact record equality."""
        rng = random.Random(1000 + seed)
        records = random_records(rng, rng.randrange(1, 400))
        table = FlowTable.from_records(records)
        restored = loads_table(dumps_table(table))
        assert restored.to_records() == records
        # The restored table is a first-class FlowTable: filters/groups still work.
        assert restored.group_sum(("provider_key",), "bytes_down") == table.group_sum(
            ("provider_key",), "bytes_down"
        )

    def test_fuzz_reserialization_is_stable(self):
        rng = random.Random(77)
        table = FlowTable.from_records(random_records(rng, 200))
        blob = dumps_table(table)
        assert dumps_table(loads_table(blob)) == blob


class TestCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(StoreFormatError, match="magic"):
            loads_table(b"NOPE" + b"\x00" * 64)

    def test_truncated_stream_rejected(self):
        rng = random.Random(3)
        blob = dumps_table(FlowTable.from_records(random_records(rng, 60)))
        for cut in (5, len(blob) // 2, len(blob) - 3):
            with pytest.raises(StoreFormatError):
                loads_table(blob[:cut])

    def test_future_codec_version_rejected(self):
        blob = bytearray(dumps_table(FlowTable()))
        blob[4] = CODEC_VERSION + 1
        with pytest.raises(StoreFormatError, match="version"):
            loads_table(bytes(blob))

    def test_empty_input_rejected(self):
        with pytest.raises(StoreFormatError):
            loads_table(b"")

    def test_garbage_tail_is_ignored(self):
        """Loading consumes exactly one table; trailing bytes are left alone."""
        rng = random.Random(4)
        table = FlowTable.from_records(random_records(rng, 30))
        stream = io.BytesIO(dumps_table(table) + b"trailing")
        restored = load_table(stream)
        assert restored.to_records() == table.to_records()
        assert stream.read() == b"trailing"


def test_duplicate_pool_values_rejected():
    """Re-interning dedups the pool; a corrupt duplicate must fail loudly at load."""
    base = datetime(2022, 3, 1)
    records = [
        make_flow(
            timestamp=base,
            subscriber_id=1,
            subscriber_prefix="p",
            ip_version=4,
            provider_key="amazon",
            server_ip="10.0.0.1",
            server_continent="EU",
            server_region="eu-west-1",
            transport=transport,
            port=443,
            bytes_down=10.0,
            bytes_up=1.0,
        )
        for transport in ("tcp", "udp")
    ]
    blob = dumps_table(FlowTable.from_records(records))
    corrupted = blob.replace(b"udp", b"tcp")
    assert corrupted != blob
    with pytest.raises(StoreFormatError, match="duplicate"):
        loads_table(corrupted)


# ---------------------------------------------------------------------------
# Zero-copy (lazy / mmap) read path
# ---------------------------------------------------------------------------


def _touch_all(table):
    """Force every lazy column through full decode + deferred validation."""
    for name in CATEGORICAL_COLUMNS:
        column = table.codes(name)
        if isinstance(column, LazyColumn):
            column.materialize()
    for name, _typecode in NUMERIC_COLUMNS:
        column = table.numeric(name)
        if isinstance(column, LazyColumn):
            column.materialize()
    return table


def _eager_outcome(blob):
    """('ok', redump bytes) or ('error', None) of an eager load."""
    try:
        return ("ok", dumps_table(loads_table(blob)))
    except StoreFormatError:
        return ("error", None)


def _lazy_outcome(blob):
    """Same as :func:`_eager_outcome` for a fully-touched lazy load."""
    try:
        return ("ok", dumps_table(_touch_all(load_table_lazy(blob))))
    except StoreFormatError:
        return ("error", None)


class TestLazyRoundTrip:
    def test_lazy_load_is_lossless_and_redumps_byte_identically(self):
        rng = random.Random(19)
        table = FlowTable.from_records(random_records(rng, 150))
        blob = dumps_table(table)
        lazy = load_table_lazy(blob)
        for name in CATEGORICAL_COLUMNS:
            assert isinstance(lazy.codes(name), LazyColumn)
        for name, _typecode in NUMERIC_COLUMNS:
            assert isinstance(lazy.numeric(name), LazyColumn)
        assert dumps_table(lazy) == blob, "re-dump before any touch"
        assert lazy.to_records() == table.to_records()
        assert dumps_table(lazy) == blob, "re-dump after materialization"

    def test_mmap_load_round_trips(self, tmp_path):
        rng = random.Random(20)
        table = FlowTable.from_records(random_records(rng, 90))
        blob = dumps_table(table)
        path = tmp_path / "table.rft"
        path.write_bytes(blob)
        mapped = load_table_mmap(path)
        assert dumps_table(mapped) == blob
        assert mapped.to_records() == table.to_records()

    def test_empty_table_lazy(self):
        blob = dumps_table(FlowTable())
        lazy = load_table_lazy(blob)
        assert len(lazy) == 0
        assert dumps_table(lazy) == blob

    def test_lazy_columns_alias_the_source_buffer(self):
        """No column bytes are copied at load time (the zero-copy contract)."""
        blob = dumps_table(FlowTable.from_records(random_records(random.Random(22), 40)))
        lazy = load_table_lazy(blob)
        for name in CATEGORICAL_COLUMNS:
            assert lazy.codes(name).buffer.obj is blob
        for name, _typecode in NUMERIC_COLUMNS:
            assert lazy.numeric(name).buffer.obj is blob

    def test_garbage_tail_is_ignored_like_eager(self):
        table = FlowTable.from_records(random_records(random.Random(23), 25))
        blob = dumps_table(table)
        lazy = load_table_lazy(blob + b"trailing-junk")
        assert lazy.to_records() == table.to_records()

    def test_foreign_byte_order_artifact_falls_back_to_eager(self, monkeypatch):
        """A faithful big-endian artifact loads correctly via the eager decoder."""
        from repro.store import codec as codec_module

        table = FlowTable.from_records(random_records(random.Random(24), 60))
        swapped = loads_table(dumps_table(table))
        for name in CATEGORICAL_COLUMNS:
            swapped._codes[name].byteswap()
        for name, _typecode in NUMERIC_COLUMNS:
            swapped._numeric[name].byteswap()
        foreign_order = (
            codec_module._BIG
            if codec_module._LOCAL_ORDER == codec_module._LITTLE
            else codec_module._LITTLE
        )
        with monkeypatch.context() as patched:
            patched.setattr(codec_module, "_LOCAL_ORDER", foreign_order)
            foreign = dumps_table(swapped)
        assert foreign != dumps_table(table)
        restored = load_table_lazy(foreign)
        assert not isinstance(restored.codes("provider_key"), LazyColumn)
        assert restored.to_records() == table.to_records()
        assert dumps_table(restored) == dumps_table(table)


class TestLazyCorruptionParity:
    """Eager and lazy loaders must fail identically on every corrupt artifact."""

    @pytest.fixture(scope="class")
    def blob(self):
        return dumps_table(FlowTable.from_records(random_records(random.Random(37), 8)))

    def test_truncation_at_every_offset(self, blob, tmp_path):
        for cut in range(len(blob)):
            assert _eager_outcome(blob[:cut]) == ("error", None), f"eager accepted cut {cut}"
            assert _lazy_outcome(blob[:cut]) == ("error", None), f"lazy accepted cut {cut}"
        # The mmap entry point agrees (spot-checked: per-cut temp files are slow).
        for cut in range(0, len(blob), max(1, len(blob) // 23)):
            path = tmp_path / "truncated.rft"
            path.write_bytes(blob[:cut])
            with pytest.raises(StoreFormatError):
                _touch_all(load_table_mmap(path))

    def test_empty_buffer_and_empty_file_rejected(self, tmp_path):
        with pytest.raises(StoreFormatError):
            load_table_lazy(b"")
        empty = tmp_path / "empty.rft"
        empty.write_bytes(b"")
        with pytest.raises(StoreFormatError):
            load_table_mmap(empty)

    def test_bit_flip_outcome_parity(self, blob):
        """Any single bit flip: both loaders raise, or both load byte-identically."""
        rng = random.Random(41)
        for _ in range(150):
            corrupted = bytearray(blob)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            corrupted = bytes(corrupted)
            eager = _eager_outcome(corrupted)
            lazy = _lazy_outcome(corrupted)
            assert eager == lazy, f"divergence at byte {position}"

    def test_flipped_length_field_rejected_on_both_paths(self, blob):
        """A corrupted header row count makes every column ragged at load time."""
        (length,) = struct.unpack_from("<Q", blob, 6)
        for bad_length in (length + 1, length - 1, length + 10**6):
            corrupted = bytearray(blob)
            struct.pack_into("<Q", corrupted, 6, bad_length)
            with pytest.raises(StoreFormatError, match="rows"):
                loads_table(bytes(corrupted))
            with pytest.raises(StoreFormatError, match="rows"):
                load_table_lazy(bytes(corrupted))

    def test_giant_nbytes_field_fails_fast_without_allocation(self, blob):
        """Satellite bugfix: a corrupt 64-bit nbytes must not drive a huge read."""
        marker = b"bytes_down"
        header_at = blob.index(marker) + len(marker)
        corrupted = bytearray(blob)
        # <cBQ after the column name: keep typecode/itemsize, explode nbytes.
        struct.pack_into("<Q", corrupted, header_at + 2, 2**60)
        corrupted = bytes(corrupted)
        try:
            with pytest.raises(StoreFormatError, match="truncated table"):
                loads_table(corrupted)
            with pytest.raises(StoreFormatError, match="truncated table"):
                load_table_lazy(corrupted)
        except MemoryError:
            pytest.fail("corrupt length field caused an allocation blow-up")

    def test_corrupt_typecode_byte_rejected_on_both_paths(self, blob):
        marker = b"bytes_down"
        header_at = blob.index(marker) + len(marker)
        corrupted = bytearray(blob)
        corrupted[header_at] = 0xFF  # not ASCII: decode itself must not escape
        with pytest.raises(StoreFormatError, match="typecode"):
            loads_table(bytes(corrupted))
        with pytest.raises(StoreFormatError, match="typecode"):
            load_table_lazy(bytes(corrupted))

    def test_code_out_of_pool_range_raises_on_first_touch(self, blob):
        """The lazy path defers the per-code range check to first touch."""
        (length,) = struct.unpack_from("<Q", blob, 6)
        # The first categorical array block (timestamp codes): its <cBQ header
        # is the first occurrence of this exact byte pattern.
        header = struct.pack("<cBQ", b"i", 4, length * 4)
        codes_at = blob.index(header) + len(header)
        corrupted = bytearray(blob)
        struct.pack_into("<i", corrupted, codes_at, 2**20)
        corrupted = bytes(corrupted)
        with pytest.raises(StoreFormatError, match="pool range"):
            loads_table(corrupted)
        lazy = load_table_lazy(corrupted)  # structural parse still passes
        with pytest.raises(StoreFormatError, match="pool range"):
            lazy.codes("timestamp").materialize()
        try:
            import numpy  # noqa: F401
        except ImportError:
            return  # the numpy-view touch path is covered on the numpy CI leg
        fresh = load_table_lazy(corrupted)
        with pytest.raises(StoreFormatError, match="pool range"):
            fresh.codes("timestamp").as_numpy()

    def test_duplicate_pool_values_rejected_lazily_too(self):
        base = datetime(2022, 3, 1)
        records = [
            make_flow(
                timestamp=base,
                subscriber_id=1,
                subscriber_prefix="p",
                ip_version=4,
                provider_key="amazon",
                server_ip="10.0.0.1",
                server_continent="EU",
                server_region="eu-west-1",
                transport=transport,
                port=443,
                bytes_down=10.0,
                bytes_up=1.0,
            )
            for transport in ("tcp", "udp")
        ]
        blob = dumps_table(FlowTable.from_records(records))
        corrupted = blob.replace(b"udp", b"tcp")
        with pytest.raises(StoreFormatError, match="duplicate"):
            load_table_lazy(corrupted)


def random_discovery(rng, count):
    """A randomized discovery result stressing families, sources, and unicode."""
    from repro.core.discovery import ALL_SOURCES, DiscoveredIP, DiscoveryResult
    from datetime import date

    result = DiscoveryResult(day=date(2022, 3, 1) if rng.random() < 0.7 else None)
    providers = ("amazon", "google", "müller-iot", "端末-backend")
    for _ in range(count):
        ip = (
            f"fd00::{rng.randrange(1, 300):x}"
            if rng.random() < 0.3
            else f"10.{rng.randrange(4)}.{rng.randrange(8)}.{rng.randrange(1, 200)}"
        )
        result.add(
            DiscoveredIP(
                ip=ip,
                provider_key=rng.choice(providers),
                sources={s for s in ALL_SOURCES if rng.random() < 0.5} or {ALL_SOURCES[0]},
                domains={f"dev-{rng.randrange(50)}.iot.example" for _ in range(rng.randrange(1, 4))},
            )
        )
    return result


class TestDiscoveryCodec:
    def test_empty_result_round_trips(self):
        from repro.core.discovery import DiscoveryResult
        from repro.store.codec import dumps_discovery, loads_discovery

        result = DiscoveryResult()
        assert loads_discovery(dumps_discovery(result)) == result

    def test_fuzz_random_results(self):
        from repro.store.codec import dumps_discovery, loads_discovery

        for seed in (1, 7, 23):
            rng = random.Random(seed)
            result = random_discovery(rng, 150)
            restored = loads_discovery(dumps_discovery(result))
            assert restored == result
            assert restored.day == result.day

    def test_reserialization_is_stable(self):
        from repro.store.codec import dumps_discovery, loads_discovery

        blob = dumps_discovery(random_discovery(random.Random(5), 80))
        assert dumps_discovery(loads_discovery(blob)) == blob

    def test_truncation_and_bad_magic_rejected(self):
        from repro.store.codec import dumps_discovery, loads_discovery

        blob = dumps_discovery(random_discovery(random.Random(9), 40))
        with pytest.raises(StoreFormatError, match="magic"):
            loads_discovery(b"NOPE" + blob[4:])
        for cut in (2, len(blob) // 3, len(blob) - 2):
            with pytest.raises(StoreFormatError):
                loads_discovery(blob[:cut])

    def test_corrupt_date_field_raises_store_format_error(self):
        # A flipped byte inside an ISO date must surface as StoreFormatError
        # (the store's miss-and-rebuild contract), never a bare ValueError.
        from repro.store.codec import dumps_discovery, loads_discovery

        blob = dumps_discovery(random_discovery(random.Random(11), 10))
        corrupted = blob.replace(b"2022-03-01", b"2022X03-01", 1)
        assert corrupted != blob
        with pytest.raises(StoreFormatError, match="corrupt date"):
            loads_discovery(corrupted)

    def test_corrupt_timestamp_in_flow_table_is_store_format_error(self):
        # The flow-table pool stores datetimes too; ArtifactStore.get_table
        # only treats StoreFormatError as a miss, so corruption there must
        # not escape as ValueError either.
        blob = dumps_table(FlowTable.from_records(random_records(random.Random(12), 20)))
        corrupted = blob.replace(b"2022-03", b"2022X03", 1)
        assert corrupted != blob
        with pytest.raises(StoreFormatError, match="corrupt datetime"):
            loads_table(corrupted)


class TestPipelineResultCodec:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.core.pipeline import DiscoveryPipeline
        from repro.simulation.config import ScenarioConfig
        from repro.simulation.world import build_world

        world = build_world(ScenarioConfig.small(seed=7))
        return DiscoveryPipeline(world).run()

    def test_full_pipeline_result_round_trips(self, result):
        from repro.store.codec import dumps_pipeline_result, loads_pipeline_result

        restored = loads_pipeline_result(dumps_pipeline_result(result))
        assert restored == result
        assert restored.period == result.period
        assert restored.table1_rows() == result.table1_rows()
        assert restored.pattern_set.fingerprint() == result.pattern_set.fingerprint()

    def test_reserialization_is_stable(self, result):
        from repro.store.codec import dumps_pipeline_result, loads_pipeline_result

        blob = dumps_pipeline_result(result)
        assert dumps_pipeline_result(loads_pipeline_result(blob)) == blob

    def test_truncation_rejected_everywhere(self, result):
        from repro.store.codec import dumps_pipeline_result, loads_pipeline_result

        blob = dumps_pipeline_result(result)
        step = max(1, len(blob) // 97)
        for cut in range(0, len(blob) - 1, step):
            with pytest.raises(StoreFormatError):
                loads_pipeline_result(blob[:cut])

    def test_bit_flips_never_execute_or_hang(self, result):
        """Corruption either round-trips to an unequal value or raises cleanly."""
        from repro.store.codec import dumps_pipeline_result, loads_pipeline_result

        blob = dumps_pipeline_result(result)
        rng = random.Random(13)
        for _ in range(40):
            corrupted = bytearray(blob)
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
            try:
                loads_pipeline_result(bytes(corrupted))
            except StoreFormatError:
                pass
            except MemoryError:
                pytest.fail("corrupt length field caused an allocation blow-up")
