"""Round-trip, fuzz, and corruption tests for the columnar store codec."""

import io
import random
from datetime import datetime, timedelta

import pytest

from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow
from repro.store.codec import (
    CODEC_VERSION,
    StoreFormatError,
    dump_table,
    dumps_table,
    load_table,
    loads_table,
)


def random_records(rng, count):
    """A randomized corpus stressing value types, unicode, and extreme numbers."""
    providers = ("amazon", "google", "müller-iot", "端末-backend", "")
    transports = ("tcp", "udp")
    records = []
    base = datetime(2022, 3, 1)
    for _ in range(count):
        ip_version = 6 if rng.random() < 0.3 else 4
        server = (
            f"fd00::{rng.randrange(1, 500):x}"
            if ip_version == 6
            else f"10.{rng.randrange(4)}.{rng.randrange(8)}.{rng.randrange(1, 200)}"
        )
        bytes_down = rng.choice(
            (0.0, 1e-12, 1e15, 0.1 + rng.random() * 1e6, float(rng.randrange(10**9)))
        )
        records.append(
            make_flow(
                timestamp=base + timedelta(hours=rng.randrange(96)),
                subscriber_id=rng.randrange(10**6),
                subscriber_prefix=f"prefix-{rng.randrange(64)}",
                ip_version=ip_version,
                provider_key=rng.choice(providers),
                server_ip=server,
                server_continent=rng.choice(("EU", "NA", "AS", "SA")),
                server_region=rng.choice(("eu-west-1", "us-east-1", "ap-south-1")),
                transport=rng.choice(transports),
                port=rng.choice((443, 8883, 5683, 61616, 1)),
                bytes_down=bytes_down,
                bytes_up=rng.random() * 1e9,
            )
        )
    return records


class TestRoundTrip:
    def test_empty_table(self):
        table = FlowTable()
        restored = loads_table(dumps_table(table))
        assert len(restored) == 0
        assert restored.to_records() == []

    def test_stream_and_bytes_apis_agree(self):
        rng = random.Random(5)
        table = FlowTable.from_records(random_records(rng, 50))
        buffer = io.BytesIO()
        dump_table(table, buffer)
        assert buffer.getvalue() == dumps_table(table)
        assert load_table(io.BytesIO(buffer.getvalue())).to_records() == table.to_records()

    def test_filtered_table_with_shared_pools(self):
        """A filtered table's pool holds values its codes never reference."""
        rng = random.Random(7)
        table = FlowTable.from_records(random_records(rng, 300))
        filtered = table.where_ip_version(4)
        restored = loads_table(dumps_table(filtered))
        assert restored.to_records() == filtered.to_records()

    def test_float_bit_patterns_survive(self):
        rng = random.Random(9)
        table = FlowTable.from_records(random_records(rng, 100))
        restored = loads_table(dumps_table(table))
        assert list(restored.numeric("bytes_down")) == list(table.numeric("bytes_down"))
        assert list(restored.numeric("bytes_up")) == list(table.numeric("bytes_up"))

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_random_tables(self, seed):
        """Random tables -> serialize -> deserialize -> exact record equality."""
        rng = random.Random(1000 + seed)
        records = random_records(rng, rng.randrange(1, 400))
        table = FlowTable.from_records(records)
        restored = loads_table(dumps_table(table))
        assert restored.to_records() == records
        # The restored table is a first-class FlowTable: filters/groups still work.
        assert restored.group_sum(("provider_key",), "bytes_down") == table.group_sum(
            ("provider_key",), "bytes_down"
        )

    def test_fuzz_reserialization_is_stable(self):
        rng = random.Random(77)
        table = FlowTable.from_records(random_records(rng, 200))
        blob = dumps_table(table)
        assert dumps_table(loads_table(blob)) == blob


class TestCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(StoreFormatError, match="magic"):
            loads_table(b"NOPE" + b"\x00" * 64)

    def test_truncated_stream_rejected(self):
        rng = random.Random(3)
        blob = dumps_table(FlowTable.from_records(random_records(rng, 60)))
        for cut in (5, len(blob) // 2, len(blob) - 3):
            with pytest.raises(StoreFormatError):
                loads_table(blob[:cut])

    def test_future_codec_version_rejected(self):
        blob = bytearray(dumps_table(FlowTable()))
        blob[4] = CODEC_VERSION + 1
        with pytest.raises(StoreFormatError, match="version"):
            loads_table(bytes(blob))

    def test_empty_input_rejected(self):
        with pytest.raises(StoreFormatError):
            loads_table(b"")

    def test_garbage_tail_is_ignored(self):
        """Loading consumes exactly one table; trailing bytes are left alone."""
        rng = random.Random(4)
        table = FlowTable.from_records(random_records(rng, 30))
        stream = io.BytesIO(dumps_table(table) + b"trailing")
        restored = load_table(stream)
        assert restored.to_records() == table.to_records()
        assert stream.read() == b"trailing"


def test_duplicate_pool_values_rejected():
    """Re-interning dedups the pool; a corrupt duplicate must fail loudly at load."""
    base = datetime(2022, 3, 1)
    records = [
        make_flow(
            timestamp=base,
            subscriber_id=1,
            subscriber_prefix="p",
            ip_version=4,
            provider_key="amazon",
            server_ip="10.0.0.1",
            server_continent="EU",
            server_region="eu-west-1",
            transport=transport,
            port=443,
            bytes_down=10.0,
            bytes_up=1.0,
        )
        for transport in ("tcp", "udp")
    ]
    blob = dumps_table(FlowTable.from_records(records))
    corrupted = blob.replace(b"udp", b"tcp")
    assert corrupted != blob
    with pytest.raises(StoreFormatError, match="duplicate"):
        loads_table(corrupted)
