"""Tests for provider anonymization."""

import pytest

from repro.core.providers import PROVIDERS, get_provider
from repro.flows.anonymize import AnonymizationMap


def test_every_provider_gets_exactly_one_label():
    mapping = AnonymizationMap.build()
    assert len(mapping) == len(PROVIDERS)
    labels = mapping.labels()
    assert len(set(labels)) == len(PROVIDERS)


def test_top4_get_t_labels_in_revenue_order():
    mapping = AnonymizationMap.build()
    assert mapping.label("amazon") == "T1"
    assert mapping.label("microsoft") == "T2"
    assert mapping.label("google") == "T3"
    assert mapping.label("alibaba") == "T4"


def test_group_labels_match_provider_groups():
    mapping = AnonymizationMap.build()
    for label in mapping.group_labels("cloud"):
        assert label.startswith("D")
        assert get_provider(mapping.provider(label)).group == "cloud"
    for label in mapping.group_labels("other"):
        assert get_provider(mapping.provider(label)).group == "other"


def test_roundtrip_label_provider():
    mapping = AnonymizationMap.build()
    for spec in PROVIDERS:
        assert mapping.provider(mapping.label(spec.key)) == spec.key


def test_unknown_lookups_raise():
    mapping = AnonymizationMap.build()
    with pytest.raises(KeyError):
        mapping.label("unknown-provider")
    with pytest.raises(KeyError):
        mapping.provider("Z9")


def test_labels_ordering():
    mapping = AnonymizationMap.build()
    labels = mapping.labels()
    assert labels[:4] == ["T1", "T2", "T3", "T4"]
    assert labels[4].startswith("D")
    assert labels[-1].startswith("O")
