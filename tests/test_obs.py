"""Tests for ``repro.obs``: metrics registry, span tracing, logging — and the
read-only contract (observability must never disturb results, store addresses,
or ledger identity)."""

import json
import logging
import os

import pytest

from repro.obs import bench as obs_bench
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Every test starts with metrics off, a fresh registry, and tracing reset."""
    previous = obs_metrics.set_registry(MetricsRegistry())
    obs_metrics.disable()
    obs_trace.disable()
    yield
    obs_metrics.set_registry(previous)
    obs_metrics.disable()
    obs_trace.reset()


# -- metrics registry -----------------------------------------------------------------


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("a")
    registry.inc("a", 2.5)
    registry.set_gauge("g", 1.0)
    registry.set_gauge("g", 7.0)
    registry.observe("h", 0.02)
    registry.observe("h", 0.3)
    assert registry.counter("a") == 3.5
    assert registry.counter("missing") == 0.0
    assert registry.gauge("g") == 7.0
    assert registry.gauge("missing") is None
    histogram = registry.histogram("h")
    assert histogram.count == 2
    assert histogram.min == 0.02
    assert histogram.max == 0.3
    assert histogram.sum == pytest.approx(0.32)


def test_histogram_quantile_is_bucket_upper_boundary():
    histogram = Histogram(buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.05, 0.5, 5.0):
        histogram.observe(value)
    assert histogram.quantile(0.5) == 0.1
    assert histogram.quantile(0.99) == 10.0
    # Overflow bucket reports the exact observed max.
    histogram.observe(99.0)
    assert histogram.quantile(1.0) == 99.0
    assert Histogram().quantile(0.5) is None


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0, 0.5))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_snapshot_roundtrip_and_merge_semantics():
    a = MetricsRegistry()
    a.inc("jobs", 2)
    a.set_gauge("depth", 3.0)
    a.observe("lat", 0.004)
    b = MetricsRegistry()
    b.inc("jobs", 5)
    b.inc("only_b")
    b.set_gauge("depth", 9.0)
    b.observe("lat", 0.2)

    merged = MetricsRegistry.from_snapshot(a.snapshot())
    merged.merge(b.snapshot())
    assert merged.counter("jobs") == 7.0  # counters add
    assert merged.counter("only_b") == 1.0
    assert merged.gauge("depth") == 9.0  # gauges are last-write-wins
    histogram = merged.histogram("lat")
    assert histogram.count == 2  # histogram buckets add
    assert histogram.min == 0.004
    assert histogram.max == 0.2
    # Snapshots are plain JSON.
    json.dumps(merged.snapshot())


def test_merge_rejects_mismatched_histogram_buckets():
    a = MetricsRegistry()
    a.observe("lat", 0.1, buckets=(0.5, 1.0))
    b = MetricsRegistry()
    b.observe("lat", 0.1, buckets=(0.25, 1.0))
    with pytest.raises(ValueError):
        a.merge(b.snapshot())


def test_module_helpers_are_noops_while_disabled():
    obs_metrics.inc("x")
    obs_metrics.observe("y", 1.0)
    obs_metrics.set_gauge("z", 1.0)
    assert obs_metrics.registry().counter("x") == 0.0
    assert not obs_metrics.enabled()
    obs_metrics.enable()
    try:
        obs_metrics.inc("x")
        assert obs_metrics.registry().counter("x") == 1.0
    finally:
        obs_metrics.disable()


# -- tracing --------------------------------------------------------------------------


def test_span_disabled_emits_nothing(tmp_path):
    with obs_trace.span("quiet"):
        pass
    assert not obs_trace.enabled()


def test_span_nesting_records_parent_ids(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs_trace.enable(path)
    with obs_trace.span("outer", kind="test"):
        with obs_trace.span("inner"):
            pass
        with obs_trace.span("inner"):
            pass
    obs_trace.disable()
    events = obs_trace.read_trace(path)
    assert [e["name"] for e in events] == ["inner", "inner", "outer"]
    outer = events[-1]
    assert outer["parent_id"] is None
    assert outer["attrs"] == {"kind": "test"}
    for inner in events[:2]:
        assert inner["parent_id"] == outer["span_id"]
        assert inner["pid"] == os.getpid()
        assert inner["dur"] >= 0.0


def test_env_variable_enables_tracing_lazily(tmp_path, monkeypatch):
    path = tmp_path / "env-trace.jsonl"
    monkeypatch.setenv(obs_trace.TRACE_ENV_VAR, str(path))
    obs_trace.reset()  # back to the lazy state so the env var is consulted
    try:
        with obs_trace.span("from-env"):
            pass
        assert obs_trace.trace_path() == str(path)
        assert [e["name"] for e in obs_trace.read_trace(path)] == ["from-env"]
    finally:
        obs_trace.disable()


def test_read_trace_tolerates_torn_and_garbage_lines(tmp_path):
    path = tmp_path / "torn.jsonl"
    good = {"name": "ok", "dur": 0.1, "pid": 1, "start": 5.0, "parent_id": None}
    path.write_text(
        json.dumps(good)
        + "\n"
        + "not json at all\n"
        + '{"name": "no-dur-key"}\n'
        + '[1, 2, 3]\n'
        + json.dumps({**good, "name": "ok2"})
        + '\n{"name": "torn tail", "du'  # crash mid-append
    )
    events = obs_trace.read_trace(path)
    assert [e["name"] for e in events] == ["ok", "ok2"]


def test_summarize_trace_coverage_counts_root_spans_only():
    events = [
        {"name": "root", "dur": 10.0, "start": 100.0, "pid": 1, "parent_id": None},
        {"name": "child", "dur": 9.0, "start": 100.5, "pid": 1, "parent_id": "1-1"},
        {"name": "root", "dur": 4.0, "start": 200.0, "pid": 2, "parent_id": None},
    ]
    summary = obs_trace.summarize_trace(events)
    assert summary.processes == 2
    assert summary.events == 3
    # Per-pid wall: pid 1 spans 100..110, pid 2 spans 200..204.
    assert summary.wall_seconds == pytest.approx(14.0)
    # Nested spans never double-count: only the roots are accounted.
    assert summary.accounted_seconds == pytest.approx(14.0)
    assert summary.coverage == pytest.approx(1.0)
    stage = summary.stages["root"]
    assert stage.count == 2
    assert stage.percentile(0.5) == 4.0
    rows = summary.rows()
    assert rows[0][0] == "root"  # sorted by total time, descending


# -- logging --------------------------------------------------------------------------


def test_format_event_quotes_whitespace_values():
    line = obs_log.format_event("sweep.retry", scenario_id="a=1", error="boom went bang")
    assert line == 'sweep.retry scenario_id=a=1 error="boom went bang"'


def test_configure_replaces_handler_instead_of_stacking():
    logger = obs_log.configure(verbosity=1)
    first = [h for h in logger.handlers]
    logger = obs_log.configure(verbosity=2)
    assert len(logger.handlers) == len(first)
    assert logger.level == logging.DEBUG
    assert obs_log.level_for_verbosity(-1) == logging.ERROR
    assert obs_log.level_for_verbosity(0) == logging.WARNING
    assert obs_log.get_logger("sweeps").name == "repro.sweeps"
    assert obs_log.get_logger("repro.sweeps").name == "repro.sweeps"


# -- bench env ------------------------------------------------------------------------


def test_bench_env_fields():
    env = obs_bench.bench_env()
    assert set(env) == set(obs_bench.BENCH_ENV_FIELDS)
    assert env["env_cpu_count"] >= 1
    assert env["env_python"] and isinstance(env["env_python"], str)
    assert env["env_platform"] and isinstance(env["env_platform"], str)


# -- the read-only contract -----------------------------------------------------------


def _store_digests(root):
    """Sorted (relative path, SHA-256) of every payload file in a store."""
    import hashlib
    from pathlib import Path

    digests = []
    for path in sorted(Path(root).rglob("*.rft")):
        digests.append(
            (str(path.relative_to(root)), hashlib.sha256(path.read_bytes()).hexdigest())
        )
    return digests


def _run_campaign(tmp_path, label, instrumented):
    """One small sweep campaign; returns (ledger identities, store digests)."""
    from repro.simulation.config import ScenarioConfig
    from repro.sweeps.grid import ScenarioGrid
    from repro.sweeps.runner import SweepResult, SweepRunner

    store = tmp_path / f"store-{label}"
    ledger = tmp_path / f"ledger-{label}.jsonl"
    if instrumented:
        obs_trace.enable(tmp_path / f"trace-{label}.jsonl")
        obs_metrics.set_registry(MetricsRegistry())
        obs_metrics.enable()
    try:
        base = ScenarioConfig.small(seed=11).with_overrides(n_subscriber_lines=40)
        grid = ScenarioGrid.from_strings(base, ["sampling_ratio=1,4"])
        runner = SweepRunner(
            metrics=("traffic",), workers=1, store=store, ledger_path=ledger
        )
        result = runner.run(grid)
    finally:
        if instrumented:
            obs_metrics.disable()
            obs_trace.disable()
    assert all(outcome.ok for outcome in result.outcomes)
    identities = [o.identity() for o in SweepResult.read_ledger(ledger).outcomes]
    return identities, _store_digests(store)


def test_observability_is_byte_identical(tmp_path):
    """The hard contract: tracing+metrics change neither store bytes nor
    ledger identities — observability only observes."""
    plain_identities, plain_digests = _run_campaign(tmp_path, "plain", instrumented=False)
    obs_identities, obs_digests = _run_campaign(tmp_path, "obs", instrumented=True)
    assert obs_identities == plain_identities
    assert [d for _p, d in obs_digests] == [d for _p, d in plain_digests]
    assert [p for p, _d in obs_digests] == [p for p, _d in plain_digests]
    # And the instrumented run actually recorded something.
    trace = obs_trace.read_trace(tmp_path / "trace-obs.jsonl")
    assert any(e["name"] == "sweep.scenario" for e in trace)
    assert obs_metrics.registry().counter("sweep.scenarios_ok") == 2.0


def test_outcome_obs_snapshot_is_not_ledgered(tmp_path):
    """Worker metrics ride ScenarioOutcome.obs but stay out of the ledger row
    and out of identity(), so resumes and retries remain bit-stable."""
    from repro.sweeps.runner import ScenarioOutcome, _ledger_row

    outcome = ScenarioOutcome(
        scenario_id="s",
        axes={},
        config_digest="d",
        metrics={},
        elapsed_seconds=0.1,
        obs={"counters": {"x": 1.0}},
    )
    assert "obs" not in _ledger_row(outcome)
    assert "obs" not in outcome.identity()


def test_sweep_workers_ship_metrics_to_driver(tmp_path):
    """A parallel sweep merges every worker's registry snapshot into the
    driver's registry (counters add across scenarios)."""
    from repro.simulation.config import ScenarioConfig
    from repro.sweeps.grid import ScenarioGrid
    from repro.sweeps.runner import SweepRunner

    obs_metrics.set_registry(MetricsRegistry())
    obs_metrics.enable()
    try:
        base = ScenarioConfig.small(seed=11).with_overrides(n_subscriber_lines=40)
        grid = ScenarioGrid.from_strings(base, ["sampling_ratio=1,4"])
        result = SweepRunner(metrics=("traffic",), workers=2).run(grid)
        assert all(outcome.ok for outcome in result.outcomes)
        registry = obs_metrics.registry()
        # Each worker built its own world and shipped the counter home.
        assert registry.counter("context.cold_builds") == 2.0
        assert registry.counter("sweep.scenarios_ok") == 2.0
        for outcome in result.outcomes:
            assert outcome.obs is not None
            assert outcome.obs["counters"]["context.cold_builds"] == 1.0
        summary = result.latency_summary()
        assert summary is not None and summary["p50"] <= summary["p95"] <= summary["max"]
        assert "Scenario latency:" in result.render_latency_summary()
    finally:
        obs_metrics.disable()


def test_traced_parallel_generation_is_byte_identical(tmp_path):
    """Hour-level fan-out with tracing on still produces identical tables,
    and worker spans land in the shared trace file."""
    from repro.experiments import build_context
    from repro.simulation.config import ScenarioConfig

    config = ScenarioConfig.small(seed=5).with_overrides(n_subscriber_lines=30)
    plain = build_context(config, use_cache=False).raw_table(config.study_period)
    trace_file = tmp_path / "gen-trace.jsonl"
    obs_trace.enable(trace_file)
    try:
        traced = build_context(config, use_cache=False, gen_workers=2).raw_table(
            config.study_period
        )
    finally:
        obs_trace.disable()
    assert traced.to_records() == plain.to_records()
    names = {e["name"] for e in obs_trace.read_trace(trace_file)}
    assert "gen.hour" in names and "gen.period" in names
