"""Incremental discovery: host-classification cache and persisted footprints.

Covers the invalidation edges of the per-host certificate-classification
cache (changed certificate on the same address, changed pattern set,
overlapping-but-shifted study periods) and the artifact-store fallback when a
persisted discovery result is corrupt.
"""

from datetime import date, timedelta

import pytest

from repro.core.discovery import SOURCE_TLS, BackendDiscovery, HostClassificationCache
from repro.core.patterns import DomainPattern, PatternSet
from repro.core.pipeline import DiscoveryPipeline
from repro.experiments.context import build_context
from repro.scan.censys import CensysHostRecord, CensysSnapshot
from repro.scan.certificates import make_certificate
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import build_world
from repro.store.artifacts import ArtifactStore, discovery_stage
from repro.store.codec import StoreFormatError, loads_pipeline_result

DAY1 = date(2022, 3, 1)
DAY2 = date(2022, 3, 2)


def two_provider_patterns() -> PatternSet:
    pattern_set = PatternSet()
    pattern_set.patterns["alpha"] = [
        DomainPattern(
            "alpha", r"^[a-z0-9-]+\.alpha\.example\.?$", suffix_hint="alpha.example"
        )
    ]
    pattern_set.patterns["beta"] = [
        DomainPattern(
            "beta", r"^[a-z0-9-]+\.beta\.example\.?$", suffix_hint="beta.example"
        )
    ]
    return pattern_set


def snapshot_of(day, hosts):
    """Build a snapshot from ``[(ip, certificate), ...]``."""
    snapshot = CensysSnapshot(snapshot_date=day)
    for ip, certificate in hosts:
        snapshot.add(
            CensysHostRecord(
                ip=ip,
                snapshot_date=day,
                open_ports=(("tcp", 443),),
                certificates=(certificate,) if certificate is not None else (),
                location=None,
            )
        )
    return snapshot


def canonical(result):
    return sorted(
        (r.provider_key, r.ip, tuple(sorted(r.sources)), tuple(sorted(r.domains)))
        for r in result.records()
    )


class TestHostClassificationCache:
    def test_unchanged_certificate_replays_without_reclassification(self):
        certificate = make_certificate(["device.alpha.example"])
        discovery = BackendDiscovery(two_provider_patterns())
        first = discovery.discover_from_censys(snapshot_of(DAY1, [("10.0.0.1", certificate)]))
        second = discovery.discover_from_censys(snapshot_of(DAY2, [("10.0.0.1", certificate)]))
        assert canonical(first) == canonical(second)
        assert first.ips("alpha") == {"10.0.0.1"}
        assert discovery.host_cache.hits == 1
        assert discovery.host_cache.misses == 1

    def test_value_equal_certificate_copy_still_hits(self):
        # The identity check is value equality (with an object-identity fast
        # path): a distinct but value-equal certificate object must replay the
        # memoized verdicts, not re-classify.
        import dataclasses

        cert_a = make_certificate(["device.alpha.example"])
        cert_b = dataclasses.replace(cert_a)
        assert cert_b is not cert_a and cert_b == cert_a
        discovery = BackendDiscovery(two_provider_patterns())
        discovery.discover_from_censys(snapshot_of(DAY1, [("10.0.0.1", cert_a)]))
        result = discovery.discover_from_censys(snapshot_of(DAY2, [("10.0.0.1", cert_b)]))
        assert result.ips("alpha") == {"10.0.0.1"}
        assert discovery.host_cache.hits == 1

    def test_changed_certificate_on_same_ip_is_reclassified(self):
        cert_alpha = make_certificate(["device.alpha.example"])
        cert_beta = make_certificate(["device.beta.example"])
        discovery = BackendDiscovery(two_provider_patterns())
        first = discovery.discover_from_censys(snapshot_of(DAY1, [("10.0.0.1", cert_alpha)]))
        second = discovery.discover_from_censys(snapshot_of(DAY2, [("10.0.0.1", cert_beta)]))
        assert first.ips("alpha") == {"10.0.0.1"}
        assert first.ips("beta") == set()
        assert second.ips("beta") == {"10.0.0.1"}
        assert second.ips("alpha") == set()
        # Both days were classifications, not replays.
        assert discovery.host_cache.hits == 0
        assert discovery.host_cache.misses == 2

    def test_host_losing_its_certificate_is_reclassified_to_nothing(self):
        cert_alpha = make_certificate(["device.alpha.example"])
        discovery = BackendDiscovery(two_provider_patterns())
        discovery.discover_from_censys(snapshot_of(DAY1, [("10.0.0.1", cert_alpha)]))
        second = discovery.discover_from_censys(snapshot_of(DAY2, [("10.0.0.1", None)]))
        assert second.total_count() == 0

    def test_changed_pattern_set_invalidates_every_verdict(self):
        pattern_set = two_provider_patterns()
        certificate = make_certificate(["device.alpha.example"])
        discovery = BackendDiscovery(pattern_set)
        first = discovery.discover_from_censys(snapshot_of(DAY1, [("10.0.0.1", certificate)]))
        assert first.ips("alpha") == {"10.0.0.1"}
        assert len(discovery.host_cache) == 1
        # Retire the alpha patterns; PatternSet.engine() rebuilds, and the
        # engine-identity guard must drop the memoized alpha verdict.
        del pattern_set.patterns["alpha"]
        second = discovery.discover_from_censys(snapshot_of(DAY2, [("10.0.0.1", certificate)]))
        assert second.total_count() == 0
        assert discovery.host_cache.hits == 0

    def test_cache_guard_is_engine_identity(self):
        cache = HostClassificationCache()
        token_a, token_b = object(), object()
        cache.validate(token_a)
        cache.put(("10.0.0.1", ()), (("alpha", ("device.alpha.example",)),))
        cache.validate(token_a)
        assert len(cache) == 1
        cache.validate(token_b)
        assert len(cache) == 0

    def test_cached_path_matches_uncached_path_on_world(self):
        config = ScenarioConfig.small(seed=7)
        world = build_world(config)
        incremental = BackendDiscovery()
        for day in config.study_period.days():
            snapshot = world.censys.snapshot(day)
            cold = BackendDiscovery().discover_from_censys(snapshot, use_cache=False)
            warm = incremental.discover_from_censys(snapshot)
            assert canonical(cold) == canonical(warm)
        assert incremental.host_cache.hits > 0


class TestShiftedPeriods:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(ScenarioConfig.small(seed=7))

    def test_overlapping_shifted_periods_share_cache_without_contamination(self, world):
        # Certificate discovery over a shifted-but-overlapping window must be
        # unaffected by the verdicts carried over from the earlier window.
        # (Only the TLS stage is compared: active DNS intentionally rotates
        # round-robin answer windows with world-level query counters, so two
        # consecutive full runs never see identical active-DNS answers.)
        period = world.config.study_period
        first = StudyPeriod(period.start, period.start + timedelta(days=4), name="first")
        shifted = StudyPeriod(period.start + timedelta(days=2), period.end, name="shifted")
        carried = DiscoveryPipeline(world)
        for day in first.days():
            carried.discover_tls(day)
        carried_hits = carried.host_cache.hits
        for day in shifted.days():
            fresh_daily = DiscoveryPipeline(world).discover_tls(day)
            assert canonical(carried.discover_tls(day)) == canonical(fresh_daily)
        # The overlapping days replayed carried verdicts rather than starting over.
        assert carried.host_cache.hits > carried_hits

    def test_store_artifacts_key_on_period_dates(self, world, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        pipeline = DiscoveryPipeline(world)
        period = world.config.study_period
        first = StudyPeriod(period.start, period.start + timedelta(days=3), name="first")
        shifted = StudyPeriod(period.start + timedelta(days=1), period.start + timedelta(days=4))
        stage = discovery_stage(pipeline.pattern_set)
        config = world.config
        store.put_pipeline_result(config, first, stage, pipeline.run(first))
        assert store.get_pipeline_result(config, shifted, stage) is None
        loaded = store.get_pipeline_result(config, first, stage)
        assert loaded is not None
        assert sorted(loaded.daily_results) == first.days()


class TestCorruptArtifactFallback:
    def test_corrupt_discovery_artifact_falls_back_to_cold_run(self, tmp_path):
        config = ScenarioConfig.small(seed=7)
        store = ArtifactStore(tmp_path / "store")
        context = build_context(config, use_cache=False, store=store)
        reference = context.result

        stage = discovery_stage(context.pipeline.pattern_set)
        digest = None
        for entry in store.entries():
            if entry.stage == stage:
                digest = entry.digest
        assert digest is not None
        payload = store._payload_path(digest)
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))

        # The corrupt payload must raise StoreFormatError (never execute), and
        # the store must treat it as a miss, remove it, and rebuild cold.
        with pytest.raises(StoreFormatError):
            loads_pipeline_result(bytes(blob))
        assert store.get_pipeline_result(config, config.study_period, stage) is None
        assert not payload.exists()

        rebuilt = build_context(config, use_cache=False, store=store)
        assert rebuilt.result == reference
        assert store.get_pipeline_result(config, config.study_period, stage) == reference

    def test_truncated_discovery_artifact_is_a_miss(self, tmp_path):
        config = ScenarioConfig.small(seed=7)
        store = ArtifactStore(tmp_path / "store")
        world = build_world(config)
        pipeline = DiscoveryPipeline(world)
        stage = discovery_stage(pipeline.pattern_set)
        result = pipeline.run()
        path = store.put_pipeline_result(config, config.study_period, stage, result)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        assert store.get_pipeline_result(config, config.study_period, stage) is None

    def test_pattern_fingerprint_addresses_distinct_slots(self, tmp_path):
        config = ScenarioConfig.small(seed=7)
        store = ArtifactStore(tmp_path / "store")
        world = build_world(config)
        pipeline = DiscoveryPipeline(world)
        result = pipeline.run()
        store.put_pipeline_result(
            config, config.study_period, discovery_stage(pipeline.pattern_set), result
        )
        other_stage = discovery_stage(two_provider_patterns())
        assert other_stage != discovery_stage(pipeline.pattern_set)
        assert store.get_pipeline_result(config, config.study_period, other_stage) is None
