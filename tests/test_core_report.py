"""Tests for the table/figure rendering helpers."""

from repro.core.report import (
    format_bytes,
    format_count,
    format_percent,
    render_distribution_summary,
    render_series,
    render_table,
)
from repro.core.traffic import EmpiricalDistribution


def test_format_count():
    assert format_count(950) == "950"
    assert format_count(8620) == "8.62K"
    assert format_count(3_030_000) == "3.03M"


def test_format_bytes():
    assert format_bytes(512) == "512.0B"
    assert format_bytes(10 * 1024 * 1024).endswith("MB")


def test_format_percent():
    assert format_percent(0.285) == "28.5%"
    assert format_percent(0.5, digits=0) == "50%"


def test_render_table_alignment_and_title():
    text = render_table(["name", "value"], [["a", 1], ["long-name", 22]], title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # All data lines have the same separator structure.
    assert lines[2].count("-+-") == 1


def test_render_series_summarises():
    series = {"T1": {1: 10.0, 2: 30.0}, "T2": {}}
    text = render_series(series, title="Series")
    assert "T1" in text and "T2" in text
    assert "(empty)" in text
    assert "min=" in text and "max=" in text


def test_render_distribution_summary():
    dists = {"a": EmpiricalDistribution([1000.0, 2000.0]), "b": EmpiricalDistribution([])}
    text = render_distribution_summary(dists)
    assert "p50" in text and "p99" in text
    assert "a" in text and "b" in text
