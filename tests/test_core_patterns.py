"""Tests for domain-pattern generation (Section 3.2 / Appendix A)."""

from hypothesis import given, strategies as st

from repro.core.patterns import (
    PatternSet,
    appendix_table,
    build_patterns,
    censys_string_queries,
    dnsdb_basic_queries,
    dnsdb_flex_query,
)
from repro.core.providers import PROVIDERS, get_provider
from repro.dns.names import SUBDOMAIN_FIXED, build_fqdn, region_label
from repro.netmodel.geo import world_locations


def test_every_provider_has_patterns():
    for spec in PROVIDERS:
        patterns = build_patterns(spec)
        assert patterns
        for pattern in patterns:
            pattern.compiled()  # must compile


def test_patterns_match_generated_domains():
    pattern_set = PatternSet.for_providers()
    location = world_locations()[0]
    for spec in PROVIDERS:
        scheme = spec.naming
        region = region_label(scheme, location.region_code, location.airport_code)
        if scheme.subdomain_kind == SUBDOMAIN_FIXED:
            domain = scheme.fixed_fqdns[0]
        else:
            domain = build_fqdn(scheme, customer_id="tenant-001", region=region)
        assert pattern_set.match(domain) == spec.key, domain


def test_patterns_reject_unrelated_domains():
    pattern_set = PatternSet.for_providers()
    for domain in (
        "www.example.com",
        "s3.amazonaws.com",
        "maps.googleapis.com",
        "portal.azure.com",
        "shop.aliyuncs.example.org",
    ):
        assert pattern_set.match(domain) is None, domain


def test_amazon_pattern_requires_iot_label():
    pattern_set = PatternSet.for_providers()
    assert pattern_set.matches_provider("tenant.iot.eu-west-1.amazonaws.com", "amazon")
    assert not pattern_set.matches_provider("tenant.s3.eu-west-1.amazonaws.com", "amazon")


def test_google_pattern_is_exact_fqdn():
    pattern_set = PatternSet.for_providers()
    assert pattern_set.matches_provider("mqtt.googleapis.com", "google")
    assert not pattern_set.matches_provider("evil-mqtt.googleapis.com.attacker.example", "google")


def test_patterns_accept_trailing_dot():
    pattern_set = PatternSet.for_providers()
    assert pattern_set.matches_provider("mqtt.googleapis.com.", "google")


def test_dnsdb_flex_queries_end_with_rrtype():
    for spec in PROVIDERS:
        query = dnsdb_flex_query(spec)
        assert query.endswith("/A")
        assert "\\." in query


def test_dnsdb_basic_queries_format():
    google = dnsdb_basic_queries(get_provider("google"))
    assert google[0].startswith("rrset/name/mqtt.googleapis.com")
    tencent = dnsdb_basic_queries(get_provider("tencent"))
    assert tencent == ["rrset/name/*.tencentdevices.com./A"]


def test_censys_string_queries():
    amazon = censys_string_queries(get_provider("amazon"), region_codes=["us-east-1", "us-west-2"])
    assert "*.iot.us-east-1.amazonaws.com" in amazon
    google = censys_string_queries(get_provider("google"))
    assert "mqtt.googleapis.com" in google


def test_appendix_table_covers_all_providers_and_sources():
    rows = appendix_table()
    providers = {row["provider"] for row in rows}
    assert providers == set(p.name for p in PROVIDERS)
    sources = {row["data_source"] for row in rows}
    assert sources == {"DNSDB", "Censys"}


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20))
def test_customer_wildcard_matches_any_tenant_id(tenant):
    if tenant.startswith("-"):
        tenant = "a" + tenant
    pattern_set = PatternSet.for_providers()
    domain = f"{tenant}.azure-devices.net"
    assert pattern_set.match(domain) == "microsoft"
