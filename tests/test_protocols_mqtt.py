"""Tests for the MQTT protocol model (wire format and broker behaviour)."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols.mqtt import (
    ConnackPacket,
    ConnectPacket,
    ConnectReturnCode,
    MqttBrokerBehaviour,
    decode_remaining_length,
    encode_remaining_length,
    probe_broker,
)


def test_connect_roundtrip():
    packet = ConnectPacket(client_id="probe", username="user", password="secret", keep_alive=30)
    decoded = ConnectPacket.decode(packet.encode())
    assert decoded == packet


def test_connect_without_credentials_roundtrip():
    packet = ConnectPacket(client_id="probe")
    decoded = ConnectPacket.decode(packet.encode())
    assert decoded.username is None and decoded.password is None


def test_password_without_username_rejected():
    with pytest.raises(ValueError):
        ConnectPacket(client_id="x", password="oops").encode()


def test_connack_roundtrip_and_accepted_flag():
    packet = ConnackPacket(ConnectReturnCode.ACCEPTED, session_present=True)
    decoded = ConnackPacket.decode(packet.encode())
    assert decoded == packet
    assert decoded.accepted
    assert not ConnackPacket(ConnectReturnCode.NOT_AUTHORIZED).accepted


def test_decode_wrong_packet_type_rejected():
    connack = ConnackPacket(ConnectReturnCode.ACCEPTED).encode()
    with pytest.raises(ValueError):
        ConnectPacket.decode(connack)


def test_broker_requires_authentication():
    behaviour = MqttBrokerBehaviour(requires_authentication=True)
    reply = behaviour.handle_connect(ConnectPacket(client_id="probe"))
    assert reply.return_code == ConnectReturnCode.NOT_AUTHORIZED
    reply = behaviour.handle_connect(ConnectPacket(client_id="probe", username="u", password="p"))
    assert reply.return_code == ConnectReturnCode.BAD_USERNAME_OR_PASSWORD


def test_broker_open_accepts():
    behaviour = MqttBrokerBehaviour(requires_authentication=False)
    assert behaviour.handle_connect(ConnectPacket(client_id="probe")).accepted


def test_broker_rejects_empty_client_id_and_bad_protocol():
    behaviour = MqttBrokerBehaviour(requires_authentication=False)
    assert (
        behaviour.handle_connect(ConnectPacket(client_id="")).return_code
        == ConnectReturnCode.IDENTIFIER_REJECTED
    )
    old = ConnectPacket(client_id="probe", protocol_level=3)
    assert (
        behaviour.handle_connect(old).return_code
        == ConnectReturnCode.UNACCEPTABLE_PROTOCOL_VERSION
    )


def test_probe_broker_records_connack():
    result = probe_broker(MqttBrokerBehaviour(requires_authentication=True))
    assert result.spoke_mqtt
    assert not result.connected
    open_result = probe_broker(MqttBrokerBehaviour(requires_authentication=False))
    assert open_result.connected


@given(st.integers(min_value=0, max_value=268_435_455))
def test_remaining_length_roundtrip(value):
    encoded = encode_remaining_length(value)
    decoded, consumed = decode_remaining_length(encoded)
    assert decoded == value
    assert consumed == len(encoded)


@given(
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=23),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_connect_roundtrip_property(client_id, keep_alive):
    packet = ConnectPacket(client_id=client_id, keep_alive=keep_alive)
    assert ConnectPacket.decode(packet.encode()) == packet
