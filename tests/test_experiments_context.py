"""Regression tests for the shared experiment-context cache.

The ``build_context`` cache used to key on a hand-picked subset of the
scenario fields; scenarios differing only in the outage period or the
workload parameters silently aliased each other.  The key is now the full
frozen :class:`ScenarioConfig`.
"""

from datetime import date

from repro.experiments.context import build_context
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig


def _tiny(seed: int = 11, **overrides) -> ScenarioConfig:
    """A deliberately minimal scenario so each context builds in well under a second."""
    return ScenarioConfig.small(seed=seed).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1, **overrides
    )


def test_build_context_cache_distinguishes_outage_period():
    base = _tiny()
    shifted = base.with_overrides(
        outage_period=StudyPeriod(date(2021, 11, 1), date(2021, 11, 8), name="outage-alt")
    )
    context_base = build_context(base)
    context_shifted = build_context(shifted)
    assert context_base is not context_shifted
    assert context_shifted.config.outage_period.start == date(2021, 11, 1)
    # Equal configurations still share one cached context.
    assert build_context(_tiny()) is context_base


def test_build_context_cache_distinguishes_workload_parameters():
    base = _tiny(seed=12)
    context_base = build_context(base)
    context_servers = build_context(base.with_overrides(servers_per_device=4))
    context_sigma = build_context(base.with_overrides(volume_sigma=0.3))
    assert context_servers is not context_base
    assert context_sigma is not context_base
    assert context_servers is not context_sigma


def test_context_flow_caches_distinguish_same_name_periods():
    """Two periods sharing a name but not dates must not alias in the caches."""
    context = build_context(_tiny(seed=14))
    first = StudyPeriod(date(2022, 2, 28), date(2022, 3, 2))
    second = StudyPeriod(date(2022, 3, 10), date(2022, 3, 12))
    table_first = context.raw_table(first)
    table_second = context.raw_table(second)
    assert table_first is not table_second
    days_second = {record.timestamp.date() for record in context.raw_flows(second)}
    assert days_second == {date(2022, 3, 10), date(2022, 3, 11)}


def test_workload_parameters_reach_generator():
    config = _tiny(seed=13, servers_per_device=5, volume_sigma=0.4)
    context = build_context(config)
    generator = context.world.workload_generator()
    assert generator.servers_per_device == 5
    assert generator.volume_sigma == 0.4


def test_context_cache_is_a_bounded_lru():
    from repro.experiments import context as context_module

    limit = context_module.CONTEXT_CACHE_MAX_ENTRIES
    configs = [_tiny(seed=800 + index) for index in range(limit + 1)]
    contexts = [build_context(config) for config in configs]
    assert len(context_module._CONTEXT_CACHE) == limit
    # The oldest entry was evicted; a rebuild yields a fresh context.
    assert build_context(configs[0]) is not contexts[0]
    # The newest entries are still shared.
    assert build_context(configs[-1]) is contexts[-1]


def test_context_cache_lru_refreshes_on_hit():
    from repro.experiments import context as context_module

    limit = context_module.CONTEXT_CACHE_MAX_ENTRIES
    first = _tiny(seed=830)
    kept = build_context(first)
    fillers = [_tiny(seed=840 + index) for index in range(limit - 1)]
    filler_contexts = [build_context(config) for config in fillers]
    # The cache is now full with [first, *fillers]; touching the oldest entry
    # makes it most-recent, so the next insert evicts fillers[0] instead.
    assert build_context(first) is kept
    build_context(_tiny(seed=860))
    assert build_context(first) is kept
    assert build_context(fillers[0]) is not filler_contexts[0]


def test_use_cache_false_bypasses_the_lru():
    config = _tiny(seed=870)
    first = build_context(config, use_cache=False)
    second = build_context(config, use_cache=False)
    assert first is not second
    # Bypassing builds are not inserted either.
    assert build_context(config) is not first


def test_discovery_pipeline_is_lazy():
    context = build_context(_tiny(seed=880), use_cache=False)
    assert context._result is None
    assert context._pipeline is None
    # Generating flows does not require a discovery run...
    context.raw_table()
    assert context._result is None
    # ...but the scanner exclusion does, and it runs exactly once on demand.
    context.clean_table()
    assert context._result is not None
    assert context.result is context.result


def test_context_cache_keys_on_the_store_identity(tmp_path):
    """A storeless cache hit must not shadow a store-backed request."""
    from repro.store.artifacts import ArtifactStore

    config = _tiny(seed=890)
    storeless = build_context(config)
    store = ArtifactStore(tmp_path / "store")
    backed = build_context(config, store=store)
    assert backed is not storeless
    assert backed.store is store
    assert storeless.store is None
    # Each flavour still caches against its own key.
    assert build_context(config) is storeless
    assert build_context(config, store=ArtifactStore(tmp_path / "store")) is backed
