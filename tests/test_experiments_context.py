"""Regression tests for the shared experiment-context cache.

The ``build_context`` cache used to key on a hand-picked subset of the
scenario fields; scenarios differing only in the outage period or the
workload parameters silently aliased each other.  The key is now the full
frozen :class:`ScenarioConfig`.
"""

from datetime import date

from repro.experiments.context import build_context
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig


def _tiny(seed: int = 11, **overrides) -> ScenarioConfig:
    """A deliberately minimal scenario so each context builds in well under a second."""
    return ScenarioConfig.small(seed=seed).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1, **overrides
    )


def test_build_context_cache_distinguishes_outage_period():
    base = _tiny()
    shifted = base.with_overrides(
        outage_period=StudyPeriod(date(2021, 11, 1), date(2021, 11, 8), name="outage-alt")
    )
    context_base = build_context(base)
    context_shifted = build_context(shifted)
    assert context_base is not context_shifted
    assert context_shifted.config.outage_period.start == date(2021, 11, 1)
    # Equal configurations still share one cached context.
    assert build_context(_tiny()) is context_base


def test_build_context_cache_distinguishes_workload_parameters():
    base = _tiny(seed=12)
    context_base = build_context(base)
    context_servers = build_context(base.with_overrides(servers_per_device=4))
    context_sigma = build_context(base.with_overrides(volume_sigma=0.3))
    assert context_servers is not context_base
    assert context_sigma is not context_base
    assert context_servers is not context_sigma


def test_context_flow_caches_distinguish_same_name_periods():
    """Two periods sharing a name but not dates must not alias in the caches."""
    context = build_context(_tiny(seed=14))
    first = StudyPeriod(date(2022, 2, 28), date(2022, 3, 2))
    second = StudyPeriod(date(2022, 3, 10), date(2022, 3, 12))
    table_first = context.raw_table(first)
    table_second = context.raw_table(second)
    assert table_first is not table_second
    days_second = {record.timestamp.date() for record in context.raw_flows(second)}
    assert days_second == {date(2022, 3, 10), date(2022, 3, 11)}


def test_workload_parameters_reach_generator():
    config = _tiny(seed=13, servers_per_device=5, volume_sigma=0.4)
    context = build_context(config)
    generator = context.world.workload_generator()
    assert generator.servers_per_device == 5
    assert generator.volume_sigma == 0.4
