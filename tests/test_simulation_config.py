"""Tests for the scenario configuration."""

import pytest

from repro.simulation.config import ScenarioConfig


def test_default_configuration_is_valid():
    config = ScenarioConfig()
    assert config.scale > 0
    assert config.n_subscriber_lines > 0
    assert config.sampling_ratio >= 1


def test_small_preset_is_smaller():
    small = ScenarioConfig.small()
    default = ScenarioConfig.default()
    assert small.n_subscriber_lines < default.n_subscriber_lines
    assert small.scale <= default.scale


def test_with_overrides_returns_new_object():
    config = ScenarioConfig()
    other = config.with_overrides(n_subscriber_lines=123)
    assert other.n_subscriber_lines == 123
    assert config.n_subscriber_lines != 123
    assert other is not config


@pytest.mark.parametrize(
    "kwargs",
    [
        {"scale": 0.0},
        {"scale": -1.0},
        {"n_subscriber_lines": 0},
        {"sampling_ratio": 0},
        {"ipv6_line_fraction": 1.5},
        {"iot_household_fraction": -0.1},
    ],
)
def test_invalid_configurations_rejected(kwargs):
    with pytest.raises(ValueError):
        ScenarioConfig(**kwargs)


def test_config_is_frozen():
    config = ScenarioConfig()
    with pytest.raises(Exception):
        config.seed = 99  # type: ignore[misc]
