"""Docs-drift guard: the CLI surface must stay documented.

Every subcommand registered on the ``iot-backend-repro`` parser must appear
both in the top-level ``README.md`` and in ``repro.cli``'s module docstring,
so a new command cannot ship undocumented.  The architecture guide is checked
for existence and for naming the load-bearing concepts it exists to explain.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro import cli

REPO_ROOT = Path(__file__).resolve().parents[1]
README = REPO_ROOT / "README.md"
ARCHITECTURE = REPO_ROOT / "docs" / "ARCHITECTURE.md"


def subcommand_names():
    parser = cli.build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("CLI parser has no subcommands")


def test_cli_has_the_expected_command_families():
    names = subcommand_names()
    assert "sweep" in names and "cache" in names
    assert len(names) >= 12


@pytest.mark.parametrize("name", subcommand_names())
def test_every_subcommand_is_in_the_readme(name):
    assert README.is_file(), "README.md is missing"
    text = README.read_text(encoding="utf-8")
    assert re.search(rf"`{re.escape(name)}", text), (
        f"CLI subcommand {name!r} is not documented in README.md"
    )


@pytest.mark.parametrize("name", subcommand_names())
def test_every_subcommand_is_in_the_cli_docstring(name):
    assert cli.__doc__, "repro.cli has no module docstring"
    assert re.search(rf"iot-backend-repro {re.escape(name)}\b", cli.__doc__), (
        f"CLI subcommand {name!r} is not listed in the repro.cli module docstring"
    )


def test_architecture_guide_exists_and_names_the_contracts():
    assert ARCHITECTURE.is_file(), "docs/ARCHITECTURE.md is missing"
    text = ARCHITECTURE.read_text(encoding="utf-8")
    for concept in (
        "ScenarioConfig",
        "ExperimentContext",
        "FlowTable",
        "ArtifactStore",
        "RngRegistry",
        "mutate",  # the don't-attach-a-store-to-a-mutated-world caveat
        "discovery:",  # the persisted-discovery stage tag
        "gen_workers",  # within-period parallelism knob
        "extend_table",  # the pool-remapping merge primitive behind it
        "byte-identical",  # the contract that makes the knob an execution knob
    ):
        assert concept in text, f"ARCHITECTURE.md does not mention {concept!r}"


def test_gen_workers_flag_is_documented_everywhere():
    """The parallelism flag must stay documented alongside its contract.

    It must be exposed by the parser on the experiment commands *and* sweep,
    and described in the README, the CLI module docstring, and the
    architecture guide — drift in any of them fails here.
    """
    parser = cli.build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name in ("traffic", "sweep"):
                sub = action.choices[name]
                flags = [flag for a in sub._actions for flag in a.option_strings]
                assert "--gen-workers" in flags, f"{name} lost the --gen-workers option"
    assert "--gen-workers" in README.read_text(encoding="utf-8")
    assert "--gen-workers" in cli.__doc__
    assert "--gen-workers" in ARCHITECTURE.read_text(encoding="utf-8")


def test_fault_tolerance_flags_are_documented_everywhere():
    """The sweep fault-tolerance surface must stay documented as one unit.

    ``--resume``, ``--retries``, and ``--timeout`` must be exposed by the
    sweep parser and described in the README, the CLI module docstring, and
    the architecture guide's fault-tolerance section.
    """
    parser = cli.build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            sub = action.choices["sweep"]
            flags = [flag for a in sub._actions for flag in a.option_strings]
            for flag in ("--resume", "--retries", "--timeout", "--backoff", "--max-failures"):
                assert flag in flags, f"sweep lost the {flag} option"
    readme = README.read_text(encoding="utf-8")
    architecture = ARCHITECTURE.read_text(encoding="utf-8")
    for flag in ("--resume", "--retries", "--timeout"):
        assert flag in readme, f"{flag} is not documented in README.md"
        assert flag in cli.__doc__, f"{flag} is not in the repro.cli docstring"
    assert "Fault tolerance" in architecture
    for concept in ("ledger", "circuit breaker", "resume", "sharded"):
        assert concept in architecture, f"ARCHITECTURE.md does not mention {concept!r}"


def test_observability_surface_is_documented_everywhere():
    """The observability surface must stay documented as one unit.

    ``--trace``, ``--metrics-out``, and the verbosity flags must be exposed
    on the experiment commands and sweep; the flags, the ``stats``
    subcommand, and the read-only contract must be described in the README,
    the CLI module docstring, and the architecture guide.
    """
    parser = cli.build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name in ("traffic", "sweep"):
                sub = action.choices[name]
                flags = [flag for a in sub._actions for flag in a.option_strings]
                for flag in ("--trace", "--metrics-out", "--verbose", "--quiet"):
                    assert flag in flags, f"{name} lost the {flag} option"
            stats = action.choices["stats"]
            stats_flags = [flag for a in stats._actions for flag in a.option_strings]
            assert "--trace" in stats_flags and "--metrics" in stats_flags
    readme = README.read_text(encoding="utf-8")
    architecture = ARCHITECTURE.read_text(encoding="utf-8")
    for flag in ("--trace", "--metrics-out"):
        assert flag in readme, f"{flag} is not documented in README.md"
        assert flag in cli.__doc__, f"{flag} is not in the repro.cli docstring"
    assert "Observability" in architecture
    for concept in (
        "IOT_REPRO_TRACE",  # the env var spawned workers re-open the sink from
        "MetricsRegistry",
        "read-only",  # the hard contract
        "span",
        "coverage",  # root-span wall-clock accounting
    ):
        assert concept in architecture, f"ARCHITECTURE.md does not mention {concept!r}"


def test_kernel_surface_is_documented_everywhere():
    """The aggregation-kernel surface must stay documented as one unit.

    The ``IOT_REPRO_KERNELS`` env var must match the constant the kernels
    actually read, the README must document the env var and the parity
    guarantee, and the architecture guide must explain backend selection,
    the GroupIndex lifecycle, and the parity contract.
    """
    from repro.flows import kernels

    assert kernels.KERNELS_ENV_VAR == "IOT_REPRO_KERNELS"
    readme = README.read_text(encoding="utf-8")
    assert "IOT_REPRO_KERNELS" in readme, "kernel env var is not in README.md"
    assert "bit-identical" in readme, "README.md lost the kernel parity guarantee"
    assert "test_kernel_parity" in readme, "README.md does not name the parity harness"
    architecture = ARCHITECTURE.read_text(encoding="utf-8")
    assert "Aggregation kernels" in architecture
    for concept in (
        "IOT_REPRO_KERNELS",
        "GroupIndex",
        "kernels_np",
        "kernel_backend",  # the BENCH_flowtable.json stamp
        "NotImplemented",  # the per-input numpy->python fallback contract
        "first-appearance",  # the dict-order part of the parity contract
        "test_kernel_parity",
    ):
        assert concept in architecture, f"ARCHITECTURE.md does not mention {concept!r}"


def test_store_read_path_is_documented_everywhere():
    """The zero-copy store read path must stay documented as one unit.

    The ``IOT_REPRO_STORE_MMAP`` env var must match the constant the store
    actually reads, the README must document the env var and the mmap
    loader, and the architecture guide must explain the lazy-column
    mechanics, the copy-on-write rule, and the fallback matrix.
    """
    from repro.store.artifacts import STORE_MMAP_ENV_VAR

    assert STORE_MMAP_ENV_VAR == "IOT_REPRO_STORE_MMAP"
    readme = README.read_text(encoding="utf-8")
    assert "IOT_REPRO_STORE_MMAP" in readme, "store mmap env var is not in README.md"
    assert "load_table_mmap" in readme, "README.md does not name the mmap loader"
    architecture = ARCHITECTURE.read_text(encoding="utf-8")
    assert "Zero-copy reads" in architecture
    for concept in (
        "IOT_REPRO_STORE_MMAP",
        "load_table_mmap",
        "LazyColumn",
        "Copy-on-write",  # the mutation barrier rule
        "first touch",  # deferred column decode
        "frombuffer",  # numpy kernels read straight off the map
        "Fallback matrix",  # foreign order / non-'i' typecode / corruption
        "corrupt-fallback",  # empty or truncated files stay a store miss
        "test_store_mmap",
    ):
        assert concept in architecture, f"ARCHITECTURE.md does not mention {concept!r}"


def test_readme_documents_install_and_benchmarks():
    text = README.read_text(encoding="utf-8")
    assert "PYTHONPATH=src" in text
    for artifact in sorted(REPO_ROOT.glob("BENCH_*.json")):
        assert artifact.name in text, (
            f"benchmark artifact {artifact.name} is not referenced in README.md"
        )
