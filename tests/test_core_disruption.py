"""Tests for the disruption analyses (outage impact, BGP and blocklist exposure)."""

from datetime import date, datetime

import pytest

from repro.core.discovery import DiscoveredIP, DiscoveryResult
from repro.core.disruption import (
    GROUP_ALL,
    GROUP_EU,
    GROUP_US_EAST,
    bgp_exposure,
    blocklist_exposure,
    outage_impact,
)
from repro.flows.netflow import make_flow
from repro.routing.bgp import Announcement, RoutingTable
from repro.routing.events import BgpEvent, BgpEventFeed, EventKind
from repro.security.blocklists import Blocklist, BlocklistAggregate, CATEGORY_MALWARE
from repro.simulation.clock import StudyPeriod


def _flow(hour, day=7, region="us-east-1", continent="NA", down=1000.0, subscriber=1):
    return make_flow(
        timestamp=datetime(2021, 12, day, hour),
        subscriber_id=subscriber,
        subscriber_prefix="p",
        ip_version=4,
        provider_key="amazon",
        server_ip="10.0.0.1" if region == "us-east-1" else "10.0.1.1",
        server_continent=continent,
        server_region=region,
        transport="tcp",
        port=8883,
        bytes_down=down,
        bytes_up=down / 5,
    )


def test_outage_impact_detects_traffic_drop():
    flows = []
    # Baseline days: steady 1000 bytes per hour from us-east-1 and 3000 from EU.
    for day in range(3, 7):
        for hour in (16, 17, 18):
            flows.append(_flow(hour, day=day, down=1000.0, subscriber=day))
            flows.append(_flow(hour, day=day, region="eu-west-1", continent="EU", down=3000.0, subscriber=day))
    # Outage day: us-east traffic halves.
    for hour in (16, 17, 18):
        flows.append(_flow(hour, day=7, down=450.0, subscriber=99))
        flows.append(_flow(hour, day=7, region="eu-west-1", continent="EU", down=3000.0, subscriber=99))
    window = (datetime(2021, 12, 7, 16), datetime(2021, 12, 7, 19))
    baseline = (datetime(2021, 12, 3), datetime(2021, 12, 7))
    report = outage_impact(flows, "amazon", window, baseline)
    assert report.drop_vs_previous_week(GROUP_US_EAST) == pytest.approx(0.55, abs=0.01)
    assert report.drop_vs_previous_week(GROUP_EU) == pytest.approx(0.0)
    assert report.min_traffic_during_outage(GROUP_US_EAST) == pytest.approx(450.0)
    assert report.traffic_series[GROUP_ALL]
    assert report.line_series[GROUP_US_EAST]


def test_outage_impact_ignores_other_providers():
    flows = [_flow(16)]
    report = outage_impact(flows, "google", (datetime(2021, 12, 7, 16), datetime(2021, 12, 7, 19)))
    assert not report.traffic_series[GROUP_ALL]


def test_bgp_exposure_counts_and_matching():
    table = RoutingTable()
    table.announce(Announcement("10.0.0.0/24", 65001, "Amazon"))
    result = DiscoveryResult()
    result.add(DiscoveredIP("10.0.0.1", "amazon"))
    period = StudyPeriod(date(2022, 2, 28), date(2022, 3, 7))
    feed = BgpEventFeed(
        [
            BgpEvent(EventKind.BGP_LEAK, date(2022, 3, 1), asn=64999, prefix="172.16.0.0/24"),
            BgpEvent(EventKind.AS_OUTAGE, date(2022, 3, 2), asn=64998),
        ]
    )
    report = bgp_exposure(feed, result, table, period)
    assert report.counts_by_kind[EventKind.BGP_LEAK] == 1
    assert not report.any_backend_affected
    # An event touching the backend prefix is detected.
    feed.add(BgpEvent(EventKind.POSSIBLE_HIJACK, date(2022, 3, 3), asn=64000, prefix="10.0.0.0/25"))
    affected_report = bgp_exposure(feed, result, table, period)
    assert affected_report.any_backend_affected


def test_blocklist_exposure_groups_by_provider():
    result = DiscoveryResult()
    result.add(DiscoveredIP("10.0.0.1", "baidu"))
    result.add(DiscoveredIP("10.0.0.2", "microsoft"))
    result.add(DiscoveredIP("10.0.0.3", "google"))
    aggregate = BlocklistAggregate(
        [Blocklist("malware", CATEGORY_MALWARE, {"10.0.0.1", "10.0.0.2"})]
    )
    report = blocklist_exposure(aggregate, result)
    assert report.total_listed_ips == 2
    assert report.providers_affected() == ["baidu", "microsoft"]
    assert report.category_counts() == {CATEGORY_MALWARE: 2}
