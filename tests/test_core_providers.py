"""Tests for the provider catalog."""

import pytest

from repro.core.providers import (
    GROUP_CLOUD,
    GROUP_OTHER,
    GROUP_TOP4,
    PROVIDERS,
    STRATEGY_DI,
    STRATEGY_DI_PR,
    STRATEGY_PR,
    cloud_dependent_providers,
    get_provider,
    other_providers,
    provider_keys,
    provider_names,
    top4_providers,
)


def test_sixteen_providers_in_catalog():
    assert len(PROVIDERS) == 16
    assert len(set(provider_keys())) == 16
    assert len(set(provider_names())) == 16


def test_lookup_by_key_and_name():
    assert get_provider("amazon").name == "Amazon IoT"
    assert get_provider("Amazon IoT").key == "amazon"
    with pytest.raises(KeyError):
        get_provider("nonexistent")


def test_table1_strategies_match_paper():
    expected = {
        "alibaba": STRATEGY_DI,
        "amazon": STRATEGY_DI,
        "baidu": STRATEGY_DI,
        "bosch": STRATEGY_PR,
        "cisco": STRATEGY_PR,
        "fujitsu": STRATEGY_DI,
        "google": STRATEGY_DI,
        "huawei": STRATEGY_DI,
        "ibm": STRATEGY_DI,
        "microsoft": STRATEGY_DI,
        "oracle": STRATEGY_DI_PR,
        "ptc": STRATEGY_PR,
        "sap": STRATEGY_PR,
        "siemens": STRATEGY_PR,
        "sierra": STRATEGY_PR,
        "tencent": STRATEGY_DI,
    }
    for key, strategy in expected.items():
        assert get_provider(key).strategy == strategy


def test_nine_di_and_six_pr_providers():
    di = [s for s in PROVIDERS if s.strategy == STRATEGY_DI]
    pr = [s for s in PROVIDERS if s.strategy == STRATEGY_PR]
    assert len(di) == 9
    assert len(pr) == 6


def test_groups_partition_catalog():
    groups = {GROUP_TOP4: top4_providers(), GROUP_CLOUD: cloud_dependent_providers(), GROUP_OTHER: other_providers()}
    total = sum(len(v) for v in groups.values())
    assert total == len(PROVIDERS)
    assert len(groups[GROUP_TOP4]) == 4
    assert len(groups[GROUP_CLOUD]) == 6
    assert len(groups[GROUP_OTHER]) == 6


def test_every_provider_supports_mqtt_or_agnostic():
    for spec in PROVIDERS:
        protocols = set(spec.documented_protocol_names())
        assert protocols & {"MQTT", "MQTTS", "Agnostic"}, spec.name


def test_pr_providers_name_cloud_hosts():
    for spec in PROVIDERS:
        if spec.strategy in (STRATEGY_PR, STRATEGY_DI_PR):
            assert spec.cloud_hosts


def test_paper_specific_behaviours():
    assert get_provider("google").uses_sni
    assert 8883 in get_provider("amazon").client_cert_ports
    assert get_provider("amazon").uses_anycast and get_provider("siemens").uses_anycast
    for key in ("cisco", "siemens", "microsoft"):
        assert get_provider(key).publishes_ip_ranges
    for key in ("baidu", "huawei"):
        assert get_provider(key).restrict_countries == ("CN",)
    assert not get_provider("microsoft").ipv6_supported


def test_documented_ports_nonempty_and_sorted():
    for spec in PROVIDERS:
        ports = spec.documented_ports()
        assert ports == sorted(ports)
        assert ports
