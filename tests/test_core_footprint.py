"""Tests for footprint characterization (geolocation, strategy inference, Table 1)."""

from repro.core.discovery import DiscoveredIP, DiscoveryResult
from repro.core.footprint import (
    characterize_all,
    characterize_provider,
    continent_distribution,
    geolocate_ip,
    infer_strategy,
    location_hint_from_domain,
)
from repro.core.providers import STRATEGY_DI, STRATEGY_DI_PR, STRATEGY_PR, get_provider
from repro.netmodel.asn import AsKind, AsRegistry
from repro.netmodel.geo import GeoDatabase, world_locations
from repro.routing.bgp import Announcement, RoutingTable


def _geo_db():
    db = GeoDatabase()
    for location in world_locations():
        db.register_location(location)
    return db


def test_location_hint_from_region_code_and_airport():
    db = _geo_db()
    assert location_hint_from_domain("tenant.iot.eu-central-1.amazonaws.com", db).city == "Frankfurt"
    assert location_hint_from_domain("edge.fra.example.net", db).city == "Frankfurt"
    assert location_hint_from_domain("tenant.azure-devices.net", db) is None


def test_geolocate_ip_majority_vote():
    db = _geo_db()
    frankfurt = db.lookup_region_code("eu-central-1")
    db.register_prefix("10.0.0.0/24", frankfurt)
    located = geolocate_ip("10.0.0.1", ["x.iot.eu-central-1.amazonaws.com"], db)
    assert located.location == frankfurt
    assert not located.disagreement
    # Conflicting domain hint vs prefix location is flagged as a disagreement.
    conflicting = geolocate_ip("10.0.0.1", ["x.iot.us-east-1.amazonaws.com"], db)
    assert conflicting.disagreement


def test_infer_strategy():
    registry = AsRegistry()
    own = registry.create("own", "Acme", AsKind.IOT_BACKEND)
    cloud = registry.create("cloud", "Big Cloud", AsKind.CLOUD)
    assert infer_strategy({}, "Acme", registry, [own.asn]) == STRATEGY_DI
    assert infer_strategy({}, "Acme", registry, [cloud.asn]) == STRATEGY_PR
    assert infer_strategy({}, "Acme", registry, [own.asn, cloud.asn]) == STRATEGY_DI_PR


def test_characterize_provider_counts():
    db = _geo_db()
    frankfurt = db.lookup_region_code("eu-central-1")
    ashburn = db.lookup_region_code("us-east-1")
    db.register_prefix("10.0.0.0/24", frankfurt)
    db.register_prefix("10.0.1.0/24", ashburn)
    registry = AsRegistry()
    own = registry.create("amazon-iot", "Amazon", AsKind.IOT_BACKEND)
    table = RoutingTable()
    table.announce(Announcement("10.0.0.0/24", own.asn, "Amazon"))
    table.announce(Announcement("10.0.1.0/24", own.asn, "Amazon"))
    result = DiscoveryResult()
    result.add(DiscoveredIP("10.0.0.1", "amazon", {"tls-certificates"}, {"a.iot.eu-central-1.amazonaws.com"}))
    result.add(DiscoveredIP("10.0.1.1", "amazon", {"tls-certificates"}, {"b.iot.us-east-1.amazonaws.com"}))
    result.add(DiscoveredIP("fd00::1", "amazon", {"ipv6-scan"}, {"c.iot.eu-central-1.amazonaws.com"}))
    report = characterize_provider("amazon", result, table, registry, db)
    assert report.ipv4_count == 2 and report.ipv6_count == 1
    assert report.slash24_count == 2
    assert report.as_count == 1
    assert report.prefix_count == 2
    assert report.location_count == 2
    assert report.country_count == 2
    assert report.strategy == STRATEGY_DI
    assert report.multi_country
    assert set(report.servers_per_continent()) <= {"EU", "NA"}


def test_characterize_all_and_continent_distribution(small_world, small_pipeline_result):
    from repro.core.providers import PROVIDERS

    reports = small_pipeline_result.footprints
    assert set(reports).issubset({spec.key for spec in PROVIDERS})
    distribution = continent_distribution(reports)
    assert abs(sum(distribution.values()) - 1.0) < 1e-6
    # Most backend servers are outside Europe (the paper's 65% US observation).
    assert distribution.get("NA", 0.0) > distribution.get("AS", 0.0)


def test_strategy_inference_matches_catalog(small_pipeline_result):
    footprints = small_pipeline_result.footprints
    assert footprints["amazon"].strategy == STRATEGY_DI
    assert footprints["microsoft"].strategy == STRATEGY_DI
    assert footprints["sap"].strategy == STRATEGY_PR
    assert footprints["ptc"].strategy == STRATEGY_PR
    assert footprints["bosch"].strategy == STRATEGY_PR
    # Oracle mixes dedicated infrastructure with a CDN; depending on which addresses
    # were discovered the inference yields DI or DI+PR, never pure PR.
    assert footprints["oracle"].strategy in (STRATEGY_DI, STRATEGY_DI_PR)
