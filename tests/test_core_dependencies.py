"""Tests for inter-provider hosting dependencies and cascade exposure."""

from repro.core.dependencies import (
    cascade_exposure,
    hosting_dependencies,
    most_critical_organization,
    shared_hosting_organizations,
)
from repro.core.discovery import DiscoveredIP, DiscoveryResult
from repro.core.providers import CLOUD_AWS, get_provider
from repro.netmodel.asn import AsKind, AsRegistry
from repro.routing.bgp import Announcement, RoutingTable


def _toy_setup():
    registry = AsRegistry()
    aws = registry.create("aws", CLOUD_AWS, AsKind.CLOUD)
    azure = registry.create("azure", "Microsoft Azure", AsKind.CLOUD)
    siemens_own = registry.create("siemens", "Siemens", AsKind.IOT_BACKEND)
    table = RoutingTable()
    table.announce(Announcement("10.1.0.0/24", aws.asn, CLOUD_AWS))
    table.announce(Announcement("10.2.0.0/24", azure.asn, "Microsoft Azure"))
    table.announce(Announcement("10.3.0.0/24", siemens_own.asn, "Siemens"))
    result = DiscoveryResult()
    result.add(DiscoveredIP("10.1.0.1", "bosch"))
    result.add(DiscoveredIP("10.1.0.2", "bosch"))
    result.add(DiscoveredIP("10.1.0.3", "siemens"))
    result.add(DiscoveredIP("10.2.0.1", "siemens"))
    result.add(DiscoveredIP("10.3.0.1", "siemens"))
    return result, table, registry


def test_hosting_dependencies_split_by_organization():
    result, table, registry = _toy_setup()
    dependencies = hosting_dependencies(result, table, registry)
    bosch = dependencies["bosch"]
    assert bosch.addresses_by_organization == {CLOUD_AWS: 2}
    assert bosch.relies_on_third_party
    siemens = dependencies["siemens"]
    assert siemens.total_addresses == 3
    assert siemens.share(CLOUD_AWS) == 1 / 3
    assert siemens.organizations()[0] in (CLOUD_AWS, "Microsoft Azure", "Siemens")


def test_shared_hosting_and_cascade_exposure():
    result, table, registry = _toy_setup()
    dependencies = hosting_dependencies(result, table, registry)
    shared = shared_hosting_organizations(dependencies)
    assert shared == {CLOUD_AWS: ["bosch", "siemens"]}
    impacts = cascade_exposure(dependencies, CLOUD_AWS)
    by_provider = {impact.provider_key: impact for impact in impacts}
    assert by_provider["bosch"].affected_fraction == 1.0
    assert 0.0 < by_provider["siemens"].affected_fraction < 1.0
    assert most_critical_organization(dependencies) == CLOUD_AWS


def test_cascade_exposure_minimum_fraction_filter():
    result, table, registry = _toy_setup()
    dependencies = hosting_dependencies(result, table, registry)
    impacts = cascade_exposure(dependencies, CLOUD_AWS, minimum_fraction=0.5)
    assert [impact.provider_key for impact in impacts] == ["bosch"]


def test_dependencies_on_synthetic_world(small_world, small_pipeline_result):
    dependencies = hosting_dependencies(
        small_pipeline_result.combined,
        small_world.routing_table,
        small_world.as_registry,
    )
    # The six PR providers rely on third-party clouds; the DI providers do not.
    for key in ("bosch", "cisco", "ptc", "sap", "siemens", "sierra"):
        assert dependencies[key].relies_on_third_party, key
    for key in ("amazon", "microsoft", "google", "tencent"):
        assert not dependencies[key].relies_on_third_party, key
    # AWS hosts several IoT backends, so its outage would cascade (Section 7).
    shared = shared_hosting_organizations(dependencies)
    assert CLOUD_AWS in shared
    assert len(shared[CLOUD_AWS]) >= 2
    impacts = cascade_exposure(dependencies, CLOUD_AWS, minimum_fraction=0.0)
    assert any(impact.affected_fraction == 1.0 for impact in impacts)


def test_empty_result_has_no_dependencies():
    dependencies = hosting_dependencies(DiscoveryResult(), RoutingTable(), AsRegistry())
    assert dependencies == {}
    assert most_critical_organization(dependencies) is None
    assert shared_hosting_organizations(dependencies) == {}
