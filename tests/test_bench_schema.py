"""Tier-1 guard: all BENCH_*.json artifacts conform to the shared schema."""

import importlib.util
import json
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_schema", ROOT / "benchmarks" / "check_bench_schema.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repository_bench_artifacts_conform():
    problems = _checker().check_bench_files(ROOT)
    assert problems == []


def test_checker_flags_stale_and_malformed_artifacts(tmp_path):
    checker = _checker()
    # Valid schema but no regenerating benchmark module -> stale.
    (tmp_path / "BENCH_ghost.json").write_text(
        json.dumps({"benchmark": "ghost", "run_seconds": 1.0, "speedup": 2.0})
    )
    problems = checker.check_bench_files(tmp_path)
    assert any("test_perf_ghost.py" in problem for problem in problems)
    # Missing name, timing, and speedup fields are each reported.
    (tmp_path / "BENCH_empty.json").write_text("{}")
    problems = checker.check_bench_files(tmp_path)
    assert any("'benchmark'" in problem for problem in problems)
    assert any("_seconds" in problem for problem in problems)
    assert any("speedup" in problem for problem in problems)


def test_checker_requires_kernel_backend_stamp(tmp_path):
    """BENCH_flowtable.json without a kernel_backend string must fail."""
    checker = _checker()
    (tmp_path / "benchmarks").mkdir()
    (tmp_path / "benchmarks" / "test_perf_flowtable.py").write_text("# regenerator\n")
    payload = json.loads((ROOT / "BENCH_flowtable.json").read_text())
    assert payload["kernel_backend"] in ("python", "numpy")
    del payload["kernel_backend"]
    (tmp_path / "BENCH_flowtable.json").write_text(json.dumps(payload))
    problems = checker.check_bench_files(tmp_path)
    assert any("kernel_backend" in problem for problem in problems)
    # An empty stamp is as bad as a missing one.
    payload["kernel_backend"] = ""
    (tmp_path / "BENCH_flowtable.json").write_text(json.dumps(payload))
    problems = checker.check_bench_files(tmp_path)
    assert any("kernel_backend" in problem for problem in problems)
    # Restoring the stamp clears the artifact.
    payload["kernel_backend"] = "python"
    (tmp_path / "BENCH_flowtable.json").write_text(json.dumps(payload))
    assert checker.check_bench_files(tmp_path) == []


def test_checker_main_exit_codes(tmp_path):
    checker = _checker()
    assert checker.main([str(ROOT)]) == 0
    assert checker.main([str(tmp_path)]) == 1
