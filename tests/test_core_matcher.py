"""Parity and behaviour tests for the suffix-indexed matching engine.

The engine must be indistinguishable from the legacy per-pattern scan: a
generated corpus of matching, near-miss, and random FQDNs for all 16 providers
goes through both paths and every assignment must agree.
"""

import random
import re

import pytest

from repro.core.matcher import CompiledPatternSet, _parse_literal_suffix
from repro.core.patterns import DomainPattern, PatternSet, build_patterns
from repro.core.providers import PROVIDERS
from repro.dns.names import SUBDOMAIN_FIXED, build_fqdn, region_label
from repro.netmodel.geo import world_locations


def legacy_match(patterns, fqdn):
    """The seed implementation: sorted provider scan, one regex at a time.

    Kept verbatim (modulo the per-call recompilation) as the behavioural
    reference for the compiled engine.
    """
    name = fqdn.rstrip(".").lower()
    for provider_key in sorted(patterns):
        for spec in patterns[provider_key]:
            compiled = re.compile(spec.regex, re.IGNORECASE)
            if compiled.search(name) or compiled.search(name + "."):
                return provider_key
    return None


def build_corpus(seed=20220301, per_provider=40):
    """Matching + near-miss + random FQDNs covering all 16 providers."""
    rng = random.Random(seed)
    locations = world_locations()
    corpus = []
    for spec in PROVIDERS:
        scheme = spec.naming
        for i in range(per_provider):
            location = locations[(i * 7) % len(locations)]
            region = region_label(scheme, location.region_code, location.airport_code, i)
            if scheme.subdomain_kind == SUBDOMAIN_FIXED:
                name = scheme.fixed_fqdns[i % len(scheme.fixed_fqdns)]
            else:
                label = (
                    scheme.service_labels[i % len(scheme.service_labels)]
                    if scheme.service_labels
                    else None
                )
                name = build_fqdn(
                    scheme,
                    customer_id=f"tenant-{rng.randrange(10 ** 6):06d}",
                    service_label=label,
                    region=region if i % 3 else None,
                )
            corpus.append(name)
            # Near misses: wrong service label, extra suffix, truncated sld.
            corpus.append(f"tenant-{i}.unrelated-label.{scheme.second_level_domain}")
            corpus.append(name + ".attacker.example")
            corpus.append(name.replace(".com", ".org") if name.endswith(".com") else "x" + name)
    for i in range(500):
        labels = rng.randrange(2, 5)
        corpus.append(".".join(f"l{rng.randrange(1000)}" for _ in range(labels)) + ".example")
    rng.shuffle(corpus)
    return corpus


@pytest.fixture(scope="module")
def pattern_set():
    return PatternSet.for_providers()


def test_engine_parity_on_generated_corpus(pattern_set):
    corpus = build_corpus()
    engine = pattern_set.engine()
    matched = 0
    for name in corpus:
        expected = legacy_match(pattern_set.patterns, name)
        assert engine.match(name) == expected, name
        if expected is not None:
            matched += 1
    # The corpus must exercise both outcomes to be meaningful.
    assert matched >= 16
    assert matched < len(corpus)


def test_match_many_agrees_with_single_lookups(pattern_set):
    corpus = build_corpus(seed=7, per_provider=10)
    engine = pattern_set.engine()
    bulk = engine.match_many(corpus)
    assert set(bulk) == set(corpus)
    for name in set(corpus):
        assert bulk[name] == engine.match(name)


def test_pattern_set_delegation_consistency(pattern_set):
    for name in ("tenant.iot.eu-west-1.amazonaws.com", "mqtt.googleapis.com.", "x.example"):
        assert pattern_set.match(name) == pattern_set.engine().match(name)
        assert pattern_set.matches_any(name) == (pattern_set.match(name) is not None)


def test_engine_normalization(pattern_set):
    engine = pattern_set.engine()
    assert engine.match("Tenant-X.IoT.EU-West-1.AMAZONAWS.COM") == "amazon"
    assert engine.match("mqtt.googleapis.com.") == "google"
    assert engine.matches_provider("mqtt.googleapis.com.", "google")
    assert not engine.matches_provider("mqtt.googleapis.com", "amazon")


def test_match_all_returns_every_matching_provider():
    patterns = {
        "alpha": [DomainPattern("alpha", r"^[a-z0-9-]+\.shared\.example\.?$")],
        "beta": [DomainPattern("beta", r"^[a-z0-9-]+\.shared\.example\.?$")],
    }
    engine = CompiledPatternSet.from_patterns(patterns)
    assert engine.match_all("x.shared.example") == ("alpha", "beta")
    # match keeps the legacy alphabetical-first semantics on overlap.
    assert engine.match("x.shared.example") == "alpha"


def test_fallback_for_unindexable_regex():
    patterns = {
        "odd": [DomainPattern("odd", r"device-[0-9]+\.example\.(com|net)$")],
    }
    engine = CompiledPatternSet.from_patterns(patterns)
    assert engine.indexed_suffixes() == []
    assert engine.match("device-42.example.com") == "odd"
    assert engine.match("device-42.example.net") == "odd"
    assert engine.match("device-x.example.com") is None


def test_single_label_suffix_falls_back_to_linear_scan():
    # The two-label tail probe can never reach a one-label index key, so such
    # patterns must take the fallback path and still match.
    patterns = {"q": [DomainPattern("q", r"example\.com$")]}
    engine = CompiledPatternSet.from_patterns(patterns)
    assert engine.match("foo.example.com") == "q"
    assert engine.match("fooexample.com") == "q"
    assert engine.match("example.org") is None


def test_dotted_dnsdb_style_pattern_matches_stripped_names():
    # DNSDB flex-search regexes anchor on the dotted spelling; both the legacy
    # DomainPattern.matches path and the engine must retry with the dot.
    pattern = DomainPattern("p", r"device\.example\.com\.$")
    assert pattern.matches("device.example.com")
    assert pattern.matches("device.example.com.")
    assert not pattern.matches("other.example.com")
    engine = CompiledPatternSet.from_patterns({"p": [pattern]})
    assert engine.match("device.example.com") == "p"
    assert engine.match("device.example.com.") == "p"
    assert engine.match("other.example.com") is None


def test_top_level_alternation_falls_back_to_linear_scan():
    # Only the last branch's suffix would be indexable; all branches must match.
    patterns = {"r": [DomainPattern("r", r"^a\.x\.com\.?$|^b\.y\.com\.?$")]}
    engine = CompiledPatternSet.from_patterns(patterns)
    assert engine.match("a.x.com") == "r"
    assert engine.match("b.y.com") == "r"
    assert engine.match("c.z.com") is None
    # Alternation inside a group stays indexable.
    grouped = CompiledPatternSet.from_patterns(
        {"g": [DomainPattern("g", r"^(?:a|b)\.shared\.example\.?$")]}
    )
    assert grouped.indexed_suffixes() == ["shared.example"]
    assert grouped.match("a.shared.example") == "g"


def test_dotted_retry_covers_any_trailing_dot_spelling():
    # The legacy dual search must survive for every hand-built spelling of a
    # mandatory trailing dot, not just the literal r"\.$".
    for regex in (r"dev\.example\.com[.]$", r"dev\.example\.com(\.)$"):
        pattern = DomainPattern("p", regex)
        assert pattern.matches("dev.example.com"), regex
        engine = CompiledPatternSet.from_patterns({"p": [pattern]})
        assert engine.match("dev.example.com") == "p", regex


def test_hand_built_pattern_is_indexed_via_regex_parse():
    patterns = {"p": [DomainPattern("p", r"^[a-z]+\.things\.example\.com\.?$")]}
    engine = CompiledPatternSet.from_patterns(patterns)
    assert engine.indexed_suffixes() == ["things.example.com"]
    assert engine.match("hub.things.example.com") == "p"
    assert engine.match("hub.things.example.com.") == "p"
    assert engine.match("hub.xthings.example.com") is None
    assert engine.match("things.example.com") is None


def test_engine_rebuilds_after_pattern_mutation(pattern_set):
    mutable = PatternSet.for_providers()
    assert mutable.match("gw.new-provider.example") is None
    mutable.patterns["newprov"] = [
        DomainPattern("newprov", r"^[a-z0-9-]+\.new-provider\.example\.?$")
    ]
    assert mutable.match("gw.new-provider.example") == "newprov"
    del mutable.patterns["newprov"]
    assert mutable.match("gw.new-provider.example") is None


def test_generated_patterns_carry_suffix_hints():
    for spec in PROVIDERS:
        for pattern in build_patterns(spec):
            assert pattern.suffix_hint
            if spec.naming.subdomain_kind != SUBDOMAIN_FIXED:
                assert pattern.suffix_hint == spec.naming.second_level_domain.lower()


def test_all_provider_patterns_are_suffix_indexed(pattern_set):
    engine = pattern_set.engine()
    # No pattern of the 16-provider catalog should fall back to a linear scan.
    assert engine.pattern_count() == sum(len(v) for v in pattern_set.patterns.values())
    assert len(engine._fallback) == 0


def test_parse_literal_suffix():
    assert _parse_literal_suffix(r"^mqtt\.googleapis\.com\.?$") == ("mqtt.googleapis.com", True)
    assert _parse_literal_suffix(r"^[a-z0-9]+\.azure\-devices\.net\.?$") == (
        "azure-devices.net",
        False,
    )
    assert _parse_literal_suffix(r"^[a-z]+x\.example\.com$") == ("example.com", False)
    assert _parse_literal_suffix(r"device\.(com|net)$") == (None, False)
    assert _parse_literal_suffix(r"^[a-z]+\.example\.com") == (None, False)  # unanchored
    assert _parse_literal_suffix(r"^[a-z]+\.iot\.sap\.$") == ("iot.sap", False)


def test_compiled_pattern_cached_on_instance():
    pattern = DomainPattern("p", r"^a\.example\.?$")
    first = pattern.compiled()
    assert pattern.compiled() is first
    assert pattern.matches("a.example")
    assert pattern.matches("A.EXAMPLE.")
    assert not pattern.matches("b.example")


def test_lru_cache_hits_on_repeats(pattern_set):
    engine = CompiledPatternSet.from_pattern_set(pattern_set)
    for _ in range(5):
        engine.match("tenant.iot.eu-west-1.amazonaws.com")
    info = engine.cache_info()
    assert info.hits >= 4
    assert info.misses >= 1
