"""Tests for flow records and NetFlow sampling."""

from datetime import datetime

import pytest
from hypothesis import given, strategies as st

from repro.flows.netflow import FlowRecord, NetFlowCollector, make_flow
from repro.simulation.rng import RngRegistry


def _flow(bytes_down=9000.0, bytes_up=1800.0) -> FlowRecord:
    return make_flow(
        timestamp=datetime(2022, 2, 28, 12),
        subscriber_id=1,
        subscriber_prefix="isp-prefix-4-001",
        ip_version=4,
        provider_key="amazon",
        server_ip="10.0.0.1",
        server_continent="EU",
        server_region="eu-west-1",
        transport="tcp",
        port=8883,
        bytes_down=bytes_down,
        bytes_up=bytes_up,
    )


def test_make_flow_derives_packets():
    flow = _flow()
    assert flow.packets_down >= 1
    assert flow.packets_up >= 1
    assert flow.total_bytes == pytest.approx(10800.0)
    zero = _flow(bytes_down=0.0, bytes_up=0.0)
    assert zero.packets_down == 0 and zero.packets_up == 0


def test_collector_without_sampling_keeps_everything():
    collector = NetFlowCollector(sampling_ratio=1)
    flows = [_flow() for _ in range(10)]
    exported = collector.export(flows, RngRegistry(1))
    assert len(exported) == 10
    assert all(f.sampled for f in exported)
    assert exported[0].bytes_down == flows[0].bytes_down


def test_collector_sampling_reduces_volume_but_estimates_back():
    collector = NetFlowCollector(sampling_ratio=10)
    flows = [_flow(bytes_down=90000.0, bytes_up=90000.0) for _ in range(200)]
    exported = collector.export(flows, RngRegistry(2))
    assert 0 < len(exported) <= 200
    sampled_down = sum(f.bytes_down for f in exported)
    true_down = sum(f.bytes_down for f in flows)
    estimate = collector.estimate_bytes(sampled_down)
    assert 0.5 * true_down < estimate < 1.5 * true_down


def test_sampling_drops_tiny_flows_sometimes():
    collector = NetFlowCollector(sampling_ratio=100)
    flows = [_flow(bytes_down=500.0, bytes_up=100.0) for _ in range(300)]
    exported = collector.export(flows, RngRegistry(3))
    assert len(exported) < 300


def test_invalid_sampling_ratio():
    with pytest.raises(ValueError):
        NetFlowCollector(sampling_ratio=0)


@given(st.integers(min_value=2, max_value=64))
def test_sampled_counts_never_exceed_originals(ratio):
    collector = NetFlowCollector(sampling_ratio=ratio)
    flows = [_flow(bytes_down=50_000.0, bytes_up=20_000.0) for _ in range(20)]
    exported = collector.export(flows, RngRegistry(ratio))
    for flow in exported:
        assert flow.packets_down <= flows[0].packets_down
        assert flow.packets_up <= flows[0].packets_up
        assert flow.bytes_down <= flows[0].bytes_down + 1e-9
