"""Tests for flow records and NetFlow sampling."""

from datetime import datetime

import pytest
from hypothesis import given, strategies as st

from repro.flows.flowtable import FlowTable
from repro.flows.netflow import (
    FlowRecord,
    NetFlowCollector,
    _binomial,
    _binomial_many,
    make_flow,
)
from repro.simulation.rng import RngRegistry


def _flow(bytes_down=9000.0, bytes_up=1800.0) -> FlowRecord:
    return make_flow(
        timestamp=datetime(2022, 2, 28, 12),
        subscriber_id=1,
        subscriber_prefix="isp-prefix-4-001",
        ip_version=4,
        provider_key="amazon",
        server_ip="10.0.0.1",
        server_continent="EU",
        server_region="eu-west-1",
        transport="tcp",
        port=8883,
        bytes_down=bytes_down,
        bytes_up=bytes_up,
    )


def test_make_flow_derives_packets():
    flow = _flow()
    assert flow.packets_down >= 1
    assert flow.packets_up >= 1
    assert flow.total_bytes == pytest.approx(10800.0)
    zero = _flow(bytes_down=0.0, bytes_up=0.0)
    assert zero.packets_down == 0 and zero.packets_up == 0


def test_collector_without_sampling_keeps_everything():
    collector = NetFlowCollector(sampling_ratio=1)
    flows = [_flow() for _ in range(10)]
    exported = collector.export(flows, RngRegistry(1))
    assert len(exported) == 10
    assert all(f.sampled for f in exported)
    assert exported[0].bytes_down == flows[0].bytes_down


def test_collector_sampling_reduces_volume_but_estimates_back():
    collector = NetFlowCollector(sampling_ratio=10)
    flows = [_flow(bytes_down=90000.0, bytes_up=90000.0) for _ in range(200)]
    exported = collector.export(flows, RngRegistry(2))
    assert 0 < len(exported) <= 200
    sampled_down = sum(f.bytes_down for f in exported)
    true_down = sum(f.bytes_down for f in flows)
    estimate = collector.estimate_bytes(sampled_down)
    assert 0.5 * true_down < estimate < 1.5 * true_down


def test_sampling_drops_tiny_flows_sometimes():
    collector = NetFlowCollector(sampling_ratio=100)
    flows = [_flow(bytes_down=500.0, bytes_up=100.0) for _ in range(300)]
    exported = collector.export(flows, RngRegistry(3))
    assert len(exported) < 300


def test_invalid_sampling_ratio():
    with pytest.raises(ValueError):
        NetFlowCollector(sampling_ratio=0)


def test_unsampled_export_applies_visibility_rule():
    """A flow with no packets in either direction was never seen by a router."""
    collector = NetFlowCollector(sampling_ratio=1)
    flows = [_flow(), _flow(bytes_down=0.0, bytes_up=0.0), _flow()]
    exported = collector.export(flows, RngRegistry(4))
    assert len(exported) == 2
    assert all(f.packets_down or f.packets_up for f in exported)
    table = collector.export_table(FlowTable.from_records(flows), RngRegistry(4))
    assert table.to_records() == exported


def _varied_flows(count: int) -> list:
    """Flows mixing small (exact binomial) and large (gaussian) packet counts."""
    flows = []
    for index in range(count):
        if index % 7 == 0:
            down, up = 0.0, 150.0  # zero-packet downstream direction
        elif index % 3 == 0:
            down, up = 90_000.0, 70_000.0  # > 64 packets per direction
        else:
            down, up = 5_000.0 + 13.0 * index, 900.0 + 7.0 * index
        flows.append(_flow(bytes_down=down, bytes_up=up))
    return flows


def test_export_table_matches_export():
    """Columnar sampling is bit-identical to the per-record path."""
    flows = _varied_flows(240)
    collector = NetFlowCollector(sampling_ratio=7)
    exported = collector.export(flows, RngRegistry(9))
    table = collector.export_table(FlowTable.from_records(flows), RngRegistry(9))
    assert table.to_records() == exported


def test_batched_binomial_preserves_moments():
    """Batched draws keep the mean and variance of the per-flow _binomial."""
    for n, p in ((40, 0.1), (500, 0.02)):
        draws = 4000
        batched = _binomial_many(RngRegistry(21).stream("bin"), [n] * draws, p)
        stream = RngRegistry(22).stream("bin")
        scalar = [_binomial(stream, n, p) for _ in range(draws)]
        mean = n * p
        variance = n * p * (1.0 - p)
        tolerance = 4 * (variance / draws) ** 0.5
        for values in (batched, scalar):
            sample_mean = sum(values) / draws
            assert abs(sample_mean - mean) < tolerance
            sample_var = sum((v - sample_mean) ** 2 for v in values) / (draws - 1)
            assert 0.7 * variance < sample_var < 1.3 * variance


def test_batched_binomial_is_stream_identical():
    """On the same stream, the batch consumes draws exactly like scalar calls."""
    counts = [0, 1, 5, 64, 65, 200, 3, 0, 80]
    batched = _binomial_many(RngRegistry(33).stream("bin"), counts, 0.2)
    stream = RngRegistry(33).stream("bin")
    scalar = [_binomial(stream, n, 0.2) for n in counts]
    assert batched == scalar


@given(st.integers(min_value=2, max_value=64))
def test_sampled_counts_never_exceed_originals(ratio):
    collector = NetFlowCollector(sampling_ratio=ratio)
    flows = [_flow(bytes_down=50_000.0, bytes_up=20_000.0) for _ in range(20)]
    exported = collector.export(flows, RngRegistry(ratio))
    for flow in exported:
        assert flow.packets_down <= flows[0].packets_down
        assert flow.packets_up <= flows[0].packets_up
        assert flow.bytes_down <= flows[0].bytes_down + 1e-9
